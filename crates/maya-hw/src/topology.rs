//! Per-link network topology and heterogeneous rank pools.
//!
//! [`TopologySpec`] names the *shared* links of a cluster so the
//! simulator's flow model (`maya-net`) can make concurrent collectives
//! compete for capacity: each node owns an intra-node fabric link and
//! an inter-node uplink, and a collective's route is the set of links
//! its participant nodes touch. [`HeteroPool`] describes mixed-GPU
//! deployments — ranks are assigned to [`RankClass`]es in declaration
//! order, and per-rank kernel durations scale by the class GPU's
//! throughput relative to the cluster's base GPU.
//!
//! Both types are opt-in `Option` fields on
//! [`ClusterSpec`](crate::ClusterSpec): a `None` spec takes exactly the
//! pre-existing happy-path code, byte for byte.

use crate::specs::GpuSpec;

/// One shared network link: a capacity every crossing flow competes
/// for, plus a propagation latency.
///
/// Equality and hashing compare float bit patterns (see
/// [`GpuSpec`]).
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct NetLink {
    /// Shared capacity in GB/s (decimal; 1 GB/s = 1e9 bytes/s). All
    /// flows crossing the link split this by max-min fairness.
    pub bw_gbps: f64,
    /// Propagation latency in microseconds, paid once per traversal.
    pub latency_us: f64,
}

impl NetLink {
    /// Capacity in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        (self.bw_gbps * 1e9).max(1.0)
    }

    fn key(&self) -> [u64; 2] {
        let Self {
            bw_gbps,
            latency_us,
        } = self;
        [bw_gbps.to_bits(), latency_us.to_bits()]
    }
}

impl PartialEq for NetLink {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for NetLink {}

impl std::hash::Hash for NetLink {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

/// Shared-bandwidth link topology of a cluster.
///
/// Links live in a flat vector with a fixed layout: link `2*n` is the
/// intra-node fabric of node `n` (NVLink switch plane), link `2*n + 1`
/// is node `n`'s inter-node uplink (NIC). A collective spanning nodes
/// `{a, b, ...}` crosses the intra link of every participant node,
/// plus every participant's uplink when more than one node is
/// involved. The flat indexing keeps the flow model allocation-free.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub struct TopologySpec {
    /// The links, two per node (see the type docs for the layout).
    pub links: Vec<NetLink>,
}

impl TopologySpec {
    /// A symmetric topology: every node gets the same intra-node fabric
    /// link and the same uplink.
    pub fn symmetric(num_nodes: u32, intra: NetLink, inter: NetLink) -> Self {
        let mut links = Vec::with_capacity(2 * num_nodes as usize);
        for _ in 0..num_nodes {
            links.push(intra);
            links.push(inter);
        }
        TopologySpec { links }
    }

    /// Number of nodes this topology describes.
    pub fn num_nodes(&self) -> u32 {
        (self.links.len() / 2) as u32
    }

    /// Flat index of node `n`'s intra-node fabric link.
    pub const fn intra_index(node: u32) -> u32 {
        2 * node
    }

    /// Flat index of node `n`'s inter-node uplink.
    pub const fn uplink_index(node: u32) -> u32 {
        2 * node + 1
    }

    /// The links a collective over `nodes` crosses. `nodes` must be
    /// sorted and deduplicated (the caller derives it from participant
    /// ranks); the returned route is then deterministic: intra links in
    /// node order, followed by every uplink when the set spans nodes.
    pub fn collective_route(&self, nodes: &[u32]) -> Vec<u32> {
        let mut route = Vec::with_capacity(2 * nodes.len());
        for &n in nodes {
            route.push(Self::intra_index(n));
        }
        if nodes.len() > 1 {
            for &n in nodes {
                route.push(Self::uplink_index(n));
            }
        }
        route
    }

    /// Summed propagation latency (µs) along a route of link indices.
    pub fn route_latency_us(&self, route: &[u32]) -> f64 {
        route
            .iter()
            .filter_map(|&l| self.links.get(l as usize))
            .map(|l| l.latency_us)
            .sum()
    }
}

/// One class of a heterogeneous pool: `count` consecutive ranks of one
/// GPU generation.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub struct RankClass {
    /// The GPU these ranks run on.
    pub gpu: GpuSpec,
    /// How many consecutive global ranks belong to this class.
    pub count: u32,
}

/// A mixed-generation GPU pool: global ranks are assigned to classes
/// in declaration order (class 0 gets ranks `0..count0`, class 1 the
/// next `count1`, ...). Ranks beyond the pool's total fall back to the
/// cluster's base GPU.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub struct HeteroPool {
    /// The classes, in rank-assignment order.
    pub classes: Vec<RankClass>,
}

impl HeteroPool {
    /// Builds a pool from classes in rank-assignment order.
    pub fn new(classes: Vec<RankClass>) -> Self {
        HeteroPool { classes }
    }

    /// Total ranks covered by the pool's classes.
    pub fn total_ranks(&self) -> u32 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Index of the class holding `rank`, if the pool covers it.
    pub fn class_of(&self, rank: u32) -> Option<usize> {
        let mut base = 0u32;
        for (i, c) in self.classes.iter().enumerate() {
            if rank < base + c.count {
                return Some(i);
            }
            base += c.count;
        }
        None
    }

    /// The GPU `rank` runs on, if the pool covers it.
    pub fn gpu_of(&self, rank: u32) -> Option<&GpuSpec> {
        self.class_of(rank).map(|i| &self.classes[i].gpu)
    }

    /// Duration multiplier for kernels on `rank` relative to the
    /// cluster's base GPU: the ratio of tensor-core throughputs (most
    /// training kernels are tensor-bound). A slower generation yields a
    /// factor > 1; a rank outside the pool scales by 1.
    pub fn kernel_scale(&self, base: &GpuSpec, rank: u32) -> f64 {
        match self.gpu_of(rank) {
            Some(g) if g.tensor_tflops > 0.0 => base.tensor_tflops / g.tensor_tflops,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(bw: f64) -> NetLink {
        NetLink {
            bw_gbps: bw,
            latency_us: 2.0,
        }
    }

    #[test]
    fn symmetric_layout_and_indices() {
        let t = TopologySpec::symmetric(3, link(450.0), link(50.0));
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.links.len(), 6);
        assert_eq!(t.links[TopologySpec::intra_index(1) as usize], link(450.0));
        assert_eq!(t.links[TopologySpec::uplink_index(1) as usize], link(50.0));
    }

    #[test]
    fn single_node_route_is_intra_only() {
        let t = TopologySpec::symmetric(2, link(450.0), link(50.0));
        assert_eq!(t.collective_route(&[0]), vec![0]);
        assert_eq!(t.collective_route(&[1]), vec![2]);
    }

    #[test]
    fn multi_node_route_adds_uplinks() {
        let t = TopologySpec::symmetric(2, link(450.0), link(50.0));
        assert_eq!(t.collective_route(&[0, 1]), vec![0, 2, 1, 3]);
        assert!((t.route_latency_us(&[0, 2, 1, 3]) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn hetero_rank_assignment() {
        let pool = HeteroPool::new(vec![
            RankClass {
                gpu: GpuSpec::h100(),
                count: 2,
            },
            RankClass {
                gpu: GpuSpec::a100(),
                count: 2,
            },
        ]);
        assert_eq!(pool.total_ranks(), 4);
        assert_eq!(pool.class_of(0), Some(0));
        assert_eq!(pool.class_of(1), Some(0));
        assert_eq!(pool.class_of(2), Some(1));
        assert_eq!(pool.class_of(4), None);
        assert_eq!(pool.gpu_of(3).unwrap().name, "A100");
    }

    #[test]
    fn kernel_scale_slows_older_generations() {
        let pool = HeteroPool::new(vec![
            RankClass {
                gpu: GpuSpec::h100(),
                count: 1,
            },
            RankClass {
                gpu: GpuSpec::v100(),
                count: 1,
            },
        ]);
        let base = GpuSpec::h100();
        assert!((pool.kernel_scale(&base, 0) - 1.0).abs() < 1e-12);
        let v100 = pool.kernel_scale(&base, 1);
        assert!(v100 > 5.0, "V100 under an H100 base must be much slower");
        assert!((pool.kernel_scale(&base, 9) - 1.0).abs() < 1e-12);
    }
}
