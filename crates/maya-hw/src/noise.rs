//! Deterministic hash-based noise used by the ground-truth models.
//!
//! The "real hardware" must behave like hardware: the same kernel always
//! takes (almost) the same time, but the mapping from operand shapes to
//! runtime has microarchitectural texture a smooth analytical model does
//! not capture. We generate that texture with splitmix64-seeded
//! perturbations, so the whole testbed is reproducible from a seed.

/// One round of the splitmix64 mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines hash state with another word.
pub fn mix(seed: u64, v: u64) -> u64 {
    splitmix64(seed ^ v.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Uniform value in `[0, 1)` derived from a hash.
pub fn unit(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Centered perturbation factor in `[1 - amplitude, 1 + amplitude]`.
///
/// Deterministic in `hash`; used for per-shape microarchitectural texture
/// and per-instance jitter.
pub fn centered_factor(hash: u64, amplitude: f64) -> f64 {
    1.0 + amplitude * (2.0 * unit(hash) - 1.0)
}

/// Approximately-Gaussian factor `1 + sigma * z` built from 4 uniform
/// draws (Irwin-Hall), clamped to stay positive.
pub fn gaussian_factor(hash: u64, sigma: f64) -> f64 {
    let mut acc = 0.0;
    let mut h = hash;
    for _ in 0..4 {
        h = splitmix64(h);
        acc += unit(h);
    }
    // Irwin-Hall(4): mean 2.0, variance 4/12; normalize to ~N(0,1).
    let z = (acc - 2.0) / (4.0f64 / 12.0).sqrt();
    (1.0 + sigma * z).max(0.05)
}

/// A tiny accumulating hasher for building perturbation keys.
#[derive(Clone, Copy, Debug)]
pub struct Key(pub u64);

impl Key {
    /// Starts a key chain from a seed.
    pub fn new(seed: u64) -> Self {
        Key(splitmix64(seed))
    }

    /// Folds a word into the key.
    pub fn with(self, v: u64) -> Self {
        Key(mix(self.0, v))
    }

    /// Folds a float (by bit pattern) into the key.
    pub fn with_f64(self, v: f64) -> Self {
        self.with(v.to_bits())
    }

    /// Final hash value.
    pub fn finish(self) -> u64 {
        splitmix64(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_eq!(
            Key::new(1).with(2).with(3).finish(),
            Key::new(1).with(2).with(3).finish()
        );
        assert_ne!(Key::new(1).with(2).finish(), Key::new(1).with(3).finish());
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000u64 {
            let u = unit(splitmix64(i));
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn centered_factor_bounds() {
        for i in 0..1000u64 {
            let f = centered_factor(splitmix64(i), 0.08);
            assert!((0.92..=1.08).contains(&f), "{f}");
        }
    }

    #[test]
    fn gaussian_factor_statistics() {
        let n = 20_000u64;
        let sigma = 0.01;
        let mean: f64 = (0..n)
            .map(|i| gaussian_factor(splitmix64(i), sigma))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 1e-3, "mean {mean}");
        let var: f64 = (0..n)
            .map(|i| {
                let f = gaussian_factor(splitmix64(i), sigma);
                (f - mean) * (f - mean)
            })
            .sum::<f64>()
            / n as f64;
        // Variance should be close to sigma^2.
        assert!(
            (var.sqrt() - sigma).abs() < sigma * 0.2,
            "std {}",
            var.sqrt()
        );
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 10_000u64;
        let mut buckets = [0u32; 10];
        for i in 0..n {
            let u = unit(splitmix64(i.wrapping_mul(0x9E37)));
            buckets[(u * 10.0) as usize % 10] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket {b}");
        }
    }
}
