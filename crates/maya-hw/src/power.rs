//! Per-generation power model for cost-weighted objectives.
//!
//! Turns a simulated iteration into an energy bill: each GPU draws
//! between its generation's idle and busy wattage depending on how much
//! of the iteration it spent working, and the datacenter multiplies the
//! draw by its PUE and electricity price. `maya-search` combines this
//! with the existing gpu-hour rental cost to form the
//! `CostWeighted` objective.

use crate::specs::{ClusterSpec, GpuArch};

/// Electricity pricing for a deployment.
///
/// Equality and hashing compare float bit patterns (see
/// [`crate::GpuSpec`]).
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct PowerModel {
    /// Electricity price in dollars per kWh.
    pub dollars_per_kwh: f64,
    /// Power usage effectiveness: total facility draw over IT draw
    /// (cooling, conversion losses). 1.0 means a perfect facility.
    pub pue: f64,
}

impl PowerModel {
    /// A typical hyperscale datacenter: $0.12/kWh at PUE 1.25.
    pub fn datacenter() -> Self {
        PowerModel {
            dollars_per_kwh: 0.12,
            pue: 1.25,
        }
    }

    /// Board power (watts) of a generation under sustained load (TDP).
    pub fn busy_watts(arch: GpuArch) -> f64 {
        match arch {
            GpuArch::Volta => 300.0,
            GpuArch::Ampere => 400.0,
            GpuArch::Hopper => 700.0,
        }
    }

    /// Board power (watts) of an idle generation.
    pub fn idle_watts(arch: GpuArch) -> f64 {
        match arch {
            GpuArch::Volta => 50.0,
            GpuArch::Ampere => 60.0,
            GpuArch::Hopper => 80.0,
        }
    }

    /// Energy cost in dollars for `world` ranks of `cluster` running
    /// one iteration of `iteration_secs`, each busy for
    /// `busy_fraction` of it (clamped to `[0, 1]`). Heterogeneous
    /// pools bill each rank at its own generation's wattage.
    pub fn energy_dollars(
        &self,
        cluster: &ClusterSpec,
        world: u32,
        iteration_secs: f64,
        busy_fraction: f64,
    ) -> f64 {
        let busy = busy_fraction.clamp(0.0, 1.0);
        let mut watts = 0.0;
        for rank in 0..world {
            let arch = cluster.gpu_at(rank).arch;
            let idle = Self::idle_watts(arch);
            watts += idle + (Self::busy_watts(arch) - idle) * busy;
        }
        let kwh = watts * iteration_secs / 3600.0 / 1000.0;
        kwh * self.pue * self.dollars_per_kwh
    }

    fn key(&self) -> [u64; 2] {
        let Self {
            dollars_per_kwh,
            pue,
        } = self;
        [dollars_per_kwh.to_bits(), pue.to_bits()]
    }
}

impl PartialEq for PowerModel {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for PowerModel {}

impl std::hash::Hash for PowerModel {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::GpuSpec;
    use crate::topology::{HeteroPool, RankClass};

    #[test]
    fn busier_iterations_cost_more() {
        let cluster = ClusterSpec::h100(1, 8);
        let power = PowerModel::datacenter();
        let lo = power.energy_dollars(&cluster, 8, 1.0, 0.2);
        let hi = power.energy_dollars(&cluster, 8, 1.0, 0.9);
        assert!(hi > lo);
        assert!(lo > 0.0);
    }

    #[test]
    fn hetero_ranks_bill_their_own_generation() {
        let hetero = HeteroPool::new(vec![RankClass {
            gpu: GpuSpec::v100(),
            count: 8,
        }]);
        let h100 = ClusterSpec::h100(1, 8);
        let mixed = ClusterSpec::h100(1, 8).with_hetero(hetero);
        let power = PowerModel::datacenter();
        let full = power.energy_dollars(&h100, 8, 1.0, 1.0);
        let volta = power.energy_dollars(&mixed, 8, 1.0, 1.0);
        assert!(volta < full, "V100 ranks draw less than H100 ranks");
    }
}
