//! Property-based tests for the ground-truth hardware models.

use maya_hw::{ClusterSpec, GpuSpec, GroundTruthKernelModel, GroundTruthNetModel};
use maya_trace::{CollectiveKind, Dtype, KernelKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Kernel times are deterministic, positive, and at least the launch
    /// floor; doubling the work never makes a kernel faster by more than
    /// the perturbation texture.
    #[test]
    fn kernel_time_sane(m in 1u64..16384, n in 1u64..16384, k in 1u64..8192) {
        let model = GroundTruthKernelModel::default();
        let gpu = GpuSpec::h100();
        let kern = KernelKind::Gemm { m, n, k, dtype: Dtype::Bf16 };
        let t = model.kernel_time(&kern, &gpu);
        prop_assert_eq!(t, model.kernel_time(&kern, &gpu));
        prop_assert!(t.as_us() >= gpu.kernel_floor_us * (1.0 - model.texture_amplitude) - 1e-6);
        let bigger = KernelKind::Gemm { m: 2 * m, n, k, dtype: Dtype::Bf16 };
        let tb = model.kernel_time(&bigger, &gpu);
        // Allow the texture band plus quantization wiggle.
        prop_assert!(
            tb.as_secs_f64() >= t.as_secs_f64() * 0.75,
            "2x work got >25% faster: {} -> {}", t, tb
        );
    }

    /// Collective times are deterministic, positive, and monotone in
    /// payload beyond the texture band.
    #[test]
    fn collective_time_monotone(bytes_exp in 12u32..33, n_exp in 1u32..6) {
        let net = GroundTruthNetModel::default();
        let cluster = ClusterSpec::h100(8, 8);
        let n = 1u32 << n_exp;
        let ranks: Vec<u32> = (0..n).collect();
        let b = 1u64 << bytes_exp;
        let t1 = net.collective_time(CollectiveKind::AllReduce, b, &ranks, &cluster);
        let t2 = net.collective_time(CollectiveKind::AllReduce, 4 * b, &ranks, &cluster);
        prop_assert_eq!(t1, net.collective_time(CollectiveKind::AllReduce, b, &ranks, &cluster));
        prop_assert!(t1.as_ns() > 0);
        prop_assert!(t2.as_secs_f64() > t1.as_secs_f64() * 0.9, "4x bytes got faster");
    }

    /// Noise helpers stay within their contracted ranges.
    #[test]
    fn noise_bounds(seed in any::<u64>(), amp in 0.0f64..0.5) {
        let h = maya_hw::noise::splitmix64(seed);
        let u = maya_hw::noise::unit(h);
        prop_assert!((0.0..1.0).contains(&u));
        let f = maya_hw::noise::centered_factor(h, amp);
        prop_assert!(f >= 1.0 - amp - 1e-12 && f <= 1.0 + amp + 1e-12);
        prop_assert!(maya_hw::noise::gaussian_factor(h, 0.05) > 0.0);
    }

    /// Memcpy time grows with size and larger transfers approach (but
    /// never exceed) the link's peak bandwidth.
    #[test]
    fn memcpy_bandwidth_bounded(bytes_exp in 10u32..34) {
        let model = GroundTruthKernelModel::default();
        let gpu = GpuSpec::a40();
        let b = 1u64 << bytes_exp;
        let t = model.memcpy_time(b, maya_trace::MemcpyKind::HostToDevice, &gpu);
        let implied_bw = b as f64 / t.as_secs_f64();
        prop_assert!(implied_bw <= gpu.pcie_bw_gbps * 1e9 * 1.05, "bw {implied_bw}");
        let t2 = model.memcpy_time(2 * b, maya_trace::MemcpyKind::HostToDevice, &gpu);
        prop_assert!(t2 >= t.scale(0.9));
    }
}
