//! cuBLAS surface: stateful handles and GEMM entry points.
//!
//! cuBLAS operations "gain meaning only when considered within the
//! context of a broader sequence of API calls" (§4.1): a handle is
//! created, bound to a stream, configured, and only then used for math.
//! The emulator tracks that state to assemble complete GEMM metadata.

use maya_trace::{DeviceOp, Dtype, KernelKind, MemcpyKind};

use crate::clock::HostOpClass;
use crate::context::{CudaContext, CudaStream};
use crate::error::{CudaError, CudaResult};

/// Opaque cuBLAS handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CublasHandle(pub(crate) u64);

/// Emulator-side state for one cuBLAS handle.
#[derive(Clone, Copy, Debug)]
pub struct CublasState {
    /// Stream math calls are issued on (`cublasSetStream`).
    pub stream: CudaStream,
    /// Whether TF32 math mode is enabled (`cublasSetMathMode`).
    pub tf32: bool,
}

impl CudaContext {
    /// `cublasCreate`.
    pub fn cublas_create(&mut self) -> CublasHandle {
        let h = self.fresh_handle();
        self.cublas.insert(
            h,
            CublasState {
                stream: CudaStream::DEFAULT,
                tf32: false,
            },
        );
        CublasHandle(h)
    }

    /// `cublasDestroy`.
    pub fn cublas_destroy(&mut self, handle: CublasHandle) -> CudaResult<()> {
        self.cublas
            .remove(&handle.0)
            .map(|_| ())
            .ok_or(CudaError::NotInitialized)
    }

    /// `cublasSetStream`.
    pub fn cublas_set_stream(
        &mut self,
        handle: CublasHandle,
        stream: CudaStream,
    ) -> CudaResult<()> {
        self.check_stream(stream)?;
        let st = self
            .cublas
            .get_mut(&handle.0)
            .ok_or(CudaError::NotInitialized)?;
        st.stream = stream;
        Ok(())
    }

    /// `cublasSetMathMode(CUBLAS_TF32_TENSOR_OP_MATH)`.
    pub fn cublas_set_math_mode(&mut self, handle: CublasHandle, tf32: bool) -> CudaResult<()> {
        let st = self
            .cublas
            .get_mut(&handle.0)
            .ok_or(CudaError::NotInitialized)?;
        st.tf32 = tf32;
        Ok(())
    }

    /// `cublasSetMatrix`: stages a host matrix onto the device (a
    /// synchronous HtoD copy in disguise).
    pub fn cublas_set_matrix(
        &mut self,
        rows: u64,
        cols: u64,
        elem_size: u64,
        handle: CublasHandle,
    ) -> CudaResult<()> {
        let state = *self
            .cublas
            .get(&handle.0)
            .ok_or(CudaError::NotInitialized)?;
        let s = self.check_stream(state.stream)?;
        self.record(
            s,
            DeviceOp::MemcpyAsync {
                bytes: rows * cols * elem_size,
                kind: MemcpyKind::HostToDevice,
                sync: true,
            },
            HostOpClass::Library,
        );
        Ok(())
    }

    /// Shared GEMM recording path.
    fn gemm_common(&mut self, handle: CublasHandle, kernel: KernelKind) -> CudaResult<()> {
        let state = *self
            .cublas
            .get(&handle.0)
            .ok_or(CudaError::NotInitialized)?;
        let s = self.check_stream(state.stream)?;
        self.record(s, DeviceOp::KernelLaunch { kernel }, HostOpClass::Library);
        Ok(())
    }

    /// `cublasSgemm_v2`: fp32 GEMM (TF32 if the handle's math mode says so).
    pub fn cublas_sgemm(&mut self, handle: CublasHandle, m: u64, n: u64, k: u64) -> CudaResult<()> {
        if m == 0 || n == 0 || k == 0 {
            return Err(CudaError::InvalidValue);
        }
        let tf32 = self
            .cublas
            .get(&handle.0)
            .ok_or(CudaError::NotInitialized)?
            .tf32;
        let dtype = if tf32 { Dtype::Tf32 } else { Dtype::Fp32 };
        self.gemm_common(handle, KernelKind::Gemm { m, n, k, dtype })
    }

    /// `cublasGemmEx`: mixed-precision GEMM.
    pub fn cublas_gemm_ex(
        &mut self,
        handle: CublasHandle,
        m: u64,
        n: u64,
        k: u64,
        dtype: Dtype,
    ) -> CudaResult<()> {
        if m == 0 || n == 0 || k == 0 {
            return Err(CudaError::InvalidValue);
        }
        self.gemm_common(handle, KernelKind::Gemm { m, n, k, dtype })
    }

    /// `cublasSgemmStridedBatched` / `cublasGemmStridedBatchedEx`.
    pub fn cublas_gemm_strided_batched(
        &mut self,
        handle: CublasHandle,
        m: u64,
        n: u64,
        k: u64,
        batch: u64,
        dtype: Dtype,
    ) -> CudaResult<()> {
        if m == 0 || n == 0 || k == 0 || batch == 0 {
            return Err(CudaError::InvalidValue);
        }
        self.gemm_common(
            handle,
            KernelKind::GemmStridedBatched {
                m,
                n,
                k,
                batch,
                dtype,
            },
        )
    }

    /// `cublasLtMatmul`: epilogue-fused matmul.
    pub fn cublas_lt_matmul(
        &mut self,
        handle: CublasHandle,
        m: u64,
        n: u64,
        k: u64,
        dtype: Dtype,
    ) -> CudaResult<()> {
        if m == 0 || n == 0 || k == 0 {
            return Err(CudaError::InvalidValue);
        }
        self.gemm_common(handle, KernelKind::LtMatmul { m, n, k, dtype })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_hw::GpuSpec;
    use maya_trace::StreamId;

    #[test]
    fn gemm_uses_handle_stream() {
        let mut c = CudaContext::new(0, GpuSpec::h100());
        let h = c.cublas_create();
        let s = c.stream_create();
        c.cublas_set_stream(h, s).unwrap();
        c.cublas_gemm_ex(h, 64, 64, 64, Dtype::Bf16).unwrap();
        let trace = c.into_trace();
        assert_eq!(
            trace.events.last().unwrap().stream,
            StreamId(s.raw() as u32)
        );
    }

    #[test]
    fn uninitialized_handle_rejected() {
        let mut c = CudaContext::new(0, GpuSpec::h100());
        let bogus = CublasHandle(424242);
        assert_eq!(
            c.cublas_sgemm(bogus, 4, 4, 4),
            Err(CudaError::NotInitialized)
        );
    }

    #[test]
    fn destroyed_handle_rejected() {
        let mut c = CudaContext::new(0, GpuSpec::h100());
        let h = c.cublas_create();
        c.cublas_destroy(h).unwrap();
        assert_eq!(
            c.cublas_gemm_ex(h, 4, 4, 4, Dtype::Fp16),
            Err(CudaError::NotInitialized)
        );
    }

    #[test]
    fn math_mode_changes_dtype() {
        let mut c = CudaContext::new(0, GpuSpec::a40());
        let h = c.cublas_create();
        c.cublas_sgemm(h, 8, 8, 8).unwrap();
        c.cublas_set_math_mode(h, true).unwrap();
        c.cublas_sgemm(h, 8, 8, 8).unwrap();
        let t = c.into_trace();
        let dtypes: Vec<Dtype> = t
            .events
            .iter()
            .filter_map(|e| e.op.as_kernel().and_then(|k| k.dtype()))
            .collect();
        assert_eq!(dtypes, vec![Dtype::Fp32, Dtype::Tf32]);
    }

    #[test]
    fn zero_dim_gemm_invalid() {
        let mut c = CudaContext::new(0, GpuSpec::h100());
        let h = c.cublas_create();
        assert_eq!(
            c.cublas_gemm_ex(h, 0, 4, 4, Dtype::Bf16),
            Err(CudaError::InvalidValue)
        );
    }

    #[test]
    fn set_matrix_records_htod() {
        let mut c = CudaContext::new(0, GpuSpec::v100());
        let h = c.cublas_create();
        c.cublas_set_matrix(64, 64, 4, h).unwrap();
        let t = c.into_trace();
        match t.events.last().unwrap().op {
            DeviceOp::MemcpyAsync { bytes, kind, sync } => {
                assert_eq!(bytes, 64 * 64 * 4);
                assert_eq!(kind, MemcpyKind::HostToDevice);
                assert!(sync);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }
}
