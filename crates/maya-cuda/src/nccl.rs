//! NCCL surface: communicators and collective operations.
//!
//! Each worker initializes communicators with `ncclCommInitRank`, which
//! assigns ranks and defines the communication topology (§4.1
//! "Inter-Device Dependencies"). The emulator gives every communicator a
//! per-rank sequence counter; the `(comm_id, seq)` pair is what the trace
//! collator later uses to match the same logical collective across
//! workers. No data moves and no IPC happens — exactly as in the paper.

use maya_trace::{CollectiveDesc, CollectiveKind, DeviceOp};

use crate::clock::HostOpClass;
use crate::context::{CudaContext, CudaStream};
use crate::error::{CudaError, CudaResult};

/// The out-of-band unique id rank 0 would broadcast before communicator
/// setup. In this harness the launcher derives it deterministically from
/// the logical group (e.g. a hash of the member list).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NcclUniqueId(pub u64);

impl NcclUniqueId {
    /// Derives a unique id from a logical group's member ranks.
    pub fn from_members(members: &[u32]) -> Self {
        Self::from_members_tagged(members, 0)
    }

    /// Derives a unique id from members plus a tag, for jobs that build
    /// several communicators over the same rank set (e.g. separate
    /// forward- and backward-direction pipeline links).
    pub fn from_members_tagged(members: &[u32], tag: u64) -> Self {
        let mut h = maya_hw::noise::Key::new(0x4E43_434C_5549_4421).with(tag);
        h = h.with(members.len() as u64);
        for &m in members {
            h = h.with(m as u64);
        }
        NcclUniqueId(h.finish())
    }
}

/// Opaque communicator handle (per rank).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NcclComm(pub(crate) u64);

/// Emulator-side communicator state.
#[derive(Clone, Copy, Debug)]
pub struct CommState {
    /// Global communicator identity (shared by all members).
    pub comm_id: u64,
    /// Communicator size.
    pub nranks: u32,
    /// This rank's position in the communicator.
    pub rank: u32,
    /// Next collective sequence number on this communicator.
    pub seq: u32,
}

impl CudaContext {
    /// `ncclCommInitRank`.
    pub fn nccl_comm_init_rank(
        &mut self,
        unique_id: NcclUniqueId,
        nranks: u32,
        rank: u32,
    ) -> CudaResult<NcclComm> {
        if nranks == 0 || rank >= nranks {
            return Err(CudaError::NcclInvalidUsage);
        }
        let handle = self.fresh_handle();
        self.comms.insert(
            handle,
            CommState {
                comm_id: unique_id.0,
                nranks,
                rank,
                seq: 0,
            },
        );
        let _ = self.comms.len();
        Ok(NcclComm(handle))
    }

    /// `ncclCommDestroy`.
    pub fn nccl_comm_destroy(&mut self, comm: NcclComm) -> CudaResult<()> {
        self.comms
            .remove(&comm.0)
            .map(|_| ())
            .ok_or(CudaError::NcclInvalidUsage)
    }

    /// Size of a communicator.
    pub fn nccl_comm_count(&self, comm: NcclComm) -> CudaResult<u32> {
        self.comms
            .get(&comm.0)
            .map(|c| c.nranks)
            .ok_or(CudaError::NcclInvalidUsage)
    }

    /// This rank's position within the communicator.
    pub fn nccl_comm_user_rank(&self, comm: NcclComm) -> CudaResult<u32> {
        self.comms
            .get(&comm.0)
            .map(|c| c.rank)
            .ok_or(CudaError::NcclInvalidUsage)
    }

    /// `ncclGroupStart` (host bookkeeping only in the emulator).
    pub fn nccl_group_start(&mut self) {
        self.host_work(maya_trace::SimTime::from_us(1.0));
    }

    /// `ncclGroupEnd`.
    pub fn nccl_group_end(&mut self) {
        self.host_work(maya_trace::SimTime::from_us(1.5));
    }

    fn collective_common(
        &mut self,
        comm: NcclComm,
        kind: CollectiveKind,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        let s = self.check_stream(stream)?;
        let state = self
            .comms
            .get_mut(&comm.0)
            .ok_or(CudaError::NcclInvalidUsage)?;
        if let CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } = kind {
            if peer >= state.nranks {
                return Err(CudaError::NcclInvalidUsage);
            }
        }
        let desc = CollectiveDesc {
            kind,
            comm_id: state.comm_id,
            seq: state.seq,
            bytes,
            nranks: state.nranks,
            rank_in_comm: state.rank,
        };
        state.seq += 1;
        self.record(s, DeviceOp::Collective { desc }, HostOpClass::Nccl);
        Ok(())
    }

    /// `ncclAllReduce`.
    pub fn nccl_all_reduce(
        &mut self,
        comm: NcclComm,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        self.collective_common(comm, CollectiveKind::AllReduce, bytes, stream)
    }

    /// `ncclAllGather`.
    pub fn nccl_all_gather(
        &mut self,
        comm: NcclComm,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        self.collective_common(comm, CollectiveKind::AllGather, bytes, stream)
    }

    /// `ncclReduceScatter`.
    pub fn nccl_reduce_scatter(
        &mut self,
        comm: NcclComm,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        self.collective_common(comm, CollectiveKind::ReduceScatter, bytes, stream)
    }

    /// `ncclBroadcast`.
    pub fn nccl_broadcast(
        &mut self,
        comm: NcclComm,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        self.collective_common(comm, CollectiveKind::Broadcast, bytes, stream)
    }

    /// `ncclReduce`.
    pub fn nccl_reduce(
        &mut self,
        comm: NcclComm,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        self.collective_common(comm, CollectiveKind::Reduce, bytes, stream)
    }

    /// `ncclAllToAll` (expert parallelism).
    pub fn nccl_all_to_all(
        &mut self,
        comm: NcclComm,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        self.collective_common(comm, CollectiveKind::AllToAll, bytes, stream)
    }

    /// `ncclSend` to `peer` (a rank within the communicator).
    pub fn nccl_send(
        &mut self,
        comm: NcclComm,
        peer: u32,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        self.collective_common(comm, CollectiveKind::Send { peer }, bytes, stream)
    }

    /// `ncclRecv` from `peer`.
    pub fn nccl_recv(
        &mut self,
        comm: NcclComm,
        peer: u32,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        self.collective_common(comm, CollectiveKind::Recv { peer }, bytes, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_hw::GpuSpec;

    #[test]
    fn unique_id_deterministic_and_order_sensitive() {
        assert_eq!(
            NcclUniqueId::from_members(&[0, 1, 2]),
            NcclUniqueId::from_members(&[0, 1, 2])
        );
        assert_ne!(
            NcclUniqueId::from_members(&[0, 1, 2]),
            NcclUniqueId::from_members(&[0, 2, 1])
        );
    }

    #[test]
    fn sequence_numbers_increment_per_comm() {
        let mut c = CudaContext::new(0, GpuSpec::h100());
        let uid_a = NcclUniqueId::from_members(&[0, 1]);
        let uid_b = NcclUniqueId::from_members(&[0, 1, 2, 3]);
        let a = c.nccl_comm_init_rank(uid_a, 2, 0).unwrap();
        let b = c.nccl_comm_init_rank(uid_b, 4, 0).unwrap();
        c.nccl_all_reduce(a, 100, CudaStream::DEFAULT).unwrap();
        c.nccl_all_reduce(b, 100, CudaStream::DEFAULT).unwrap();
        c.nccl_all_reduce(a, 100, CudaStream::DEFAULT).unwrap();
        let t = c.into_trace();
        let descs: Vec<CollectiveDesc> = t
            .events
            .iter()
            .filter_map(|e| e.op.as_collective().copied())
            .collect();
        assert_eq!(descs.len(), 3);
        assert_eq!(descs[0].seq, 0);
        assert_eq!(descs[1].seq, 0, "independent comm counts separately");
        assert_eq!(descs[2].seq, 1);
        assert_eq!(descs[0].comm_id, descs[2].comm_id);
        assert_ne!(descs[0].comm_id, descs[1].comm_id);
    }

    #[test]
    fn invalid_rank_rejected() {
        let mut c = CudaContext::new(0, GpuSpec::h100());
        let uid = NcclUniqueId::from_members(&[0, 1]);
        assert_eq!(
            c.nccl_comm_init_rank(uid, 2, 2),
            Err(CudaError::NcclInvalidUsage)
        );
        assert_eq!(
            c.nccl_comm_init_rank(uid, 0, 0),
            Err(CudaError::NcclInvalidUsage)
        );
    }

    #[test]
    fn send_to_out_of_range_peer_rejected() {
        let mut c = CudaContext::new(0, GpuSpec::h100());
        let uid = NcclUniqueId::from_members(&[0, 1]);
        let comm = c.nccl_comm_init_rank(uid, 2, 0).unwrap();
        assert_eq!(
            c.nccl_send(comm, 5, 128, CudaStream::DEFAULT),
            Err(CudaError::NcclInvalidUsage)
        );
    }

    #[test]
    fn comm_queries() {
        let mut c = CudaContext::new(0, GpuSpec::h100());
        let uid = NcclUniqueId::from_members(&[0, 1, 2, 3]);
        let comm = c.nccl_comm_init_rank(uid, 4, 2).unwrap();
        assert_eq!(c.nccl_comm_count(comm).unwrap(), 4);
        assert_eq!(c.nccl_comm_user_rank(comm).unwrap(), 2);
        c.nccl_comm_destroy(comm).unwrap();
        assert_eq!(c.nccl_comm_count(comm), Err(CudaError::NcclInvalidUsage));
    }

    #[test]
    fn collective_counts_in_summary() {
        let mut c = CudaContext::new(0, GpuSpec::h100());
        let uid = NcclUniqueId::from_members(&[0]);
        let comm = c.nccl_comm_init_rank(uid, 1, 0).unwrap();
        c.nccl_all_gather(comm, 64, CudaStream::DEFAULT).unwrap();
        c.nccl_reduce_scatter(comm, 64, CudaStream::DEFAULT)
            .unwrap();
        let t = c.into_trace();
        assert_eq!(t.summary.num_collectives, 2);
    }
}
