//! The per-rank virtual device: CUDA runtime API + emulator state.

use std::collections::{HashMap, HashSet};

use maya_hw::GpuSpec;
use maya_trace::{DeviceOp, KernelKind, MemcpyKind, SimTime, StreamId, TraceEvent, WorkerTrace};

use crate::clock::{HostClock, HostOpClass, ModelClock};
use crate::cublas::CublasState;
use crate::cudnn::{ConvDescState, CudnnState};
use crate::error::{CudaError, CudaResult};
use crate::nccl::CommState;

/// An opaque CUDA stream handle. Stream 0 is the default stream.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CudaStream(pub(crate) u64);

impl CudaStream {
    /// The default (legacy) stream, always valid.
    pub const DEFAULT: CudaStream = CudaStream(0);

    /// Raw handle value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An opaque CUDA event handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CudaEvent(pub(crate) u64);

/// A virtual device pointer returned by the emulator's allocator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DevicePtr(pub(crate) u64);

impl DevicePtr {
    /// Raw pointer value (non-zero for valid allocations).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Bytes the emulator reserves for the CUDA context itself, mirroring the
/// context/cuBLAS workspace overhead a real process pays before the first
/// user allocation.
const CONTEXT_RESERVED_BYTES: u64 = 700 * 1024 * 1024;

/// The per-rank virtual device.
///
/// One `CudaContext` emulates one GPU for one worker process. All API
/// calls validate handles and resource state the way a real driver would,
/// record trace events, and return immediately — compute is a no-op.
pub struct CudaContext {
    /// Global rank of the worker owning this device.
    pub rank: u32,
    gpu: GpuSpec,
    clock: Box<dyn HostClock>,

    // Memory allocator state.
    capacity: u64,
    used: u64,
    peak: u64,
    allocations: HashMap<u64, u64>,
    next_ptr: u64,
    num_allocs: u64,
    oom: bool,

    // Stream / event registries.
    streams: HashSet<u64>,
    next_stream: u64,
    events: HashMap<u64, u32>,
    next_event: u64,

    // Library handle registries (populated by the cublas/cudnn/nccl
    // modules in this crate).
    pub(crate) cublas: HashMap<u64, CublasState>,
    pub(crate) cudnn: HashMap<u64, CudnnState>,
    pub(crate) conv_descs: HashMap<u64, ConvDescState>,
    pub(crate) comms: HashMap<u64, CommState>,
    pub(crate) next_handle: u64,

    // Trace.
    log: Vec<TraceEvent>,
    num_kernels: u64,
    num_collectives: u64,
    pending_host: SimTime,
}

impl CudaContext {
    /// Creates a virtual device of the given spec for `rank`, with the
    /// default deterministic host clock (seeded by rank).
    pub fn new(rank: u32, gpu: GpuSpec) -> Self {
        Self::with_clock(
            rank,
            gpu,
            Box::new(ModelClock::new(0x636C_6F63 ^ rank as u64)),
        )
    }

    /// Creates a virtual device with a custom host clock.
    pub fn with_clock(rank: u32, gpu: GpuSpec, clock: Box<dyn HostClock>) -> Self {
        CudaContext {
            rank,
            gpu,
            clock,
            capacity: gpu.mem_bytes().saturating_sub(CONTEXT_RESERVED_BYTES),
            used: 0,
            peak: 0,
            allocations: HashMap::new(),
            next_ptr: 0x7f00_0000_0000,
            num_allocs: 0,
            oom: false,
            streams: HashSet::new(),
            next_stream: 1,
            events: HashMap::new(),
            next_event: 1,
            cublas: HashMap::new(),
            cudnn: HashMap::new(),
            conv_descs: HashMap::new(),
            comms: HashMap::new(),
            next_handle: 1,
            log: Vec::new(),
            num_kernels: 0,
            num_collectives: 0,
            pending_host: SimTime::ZERO,
        }
    }

    /// The GPU this context emulates.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Whether the allocator has hit an out-of-memory condition.
    pub fn oom(&self) -> bool {
        self.oom
    }

    /// Current / peak allocated bytes.
    pub fn mem_used(&self) -> u64 {
        self.used
    }

    /// Peak allocated bytes over the context lifetime.
    pub fn mem_peak(&self) -> u64 {
        self.peak
    }

    /// Injects framework-level host work (Python dispatch, optimizer
    /// bookkeeping) that will be attached to the next recorded API call.
    pub fn host_work(&mut self, t: SimTime) {
        self.pending_host += t;
    }

    /// Records one trace event, charging host time for it.
    pub(crate) fn record(&mut self, stream: StreamId, op: DeviceOp, class: HostOpClass) {
        let host = self.clock.charge(class) + std::mem::take(&mut self.pending_host);
        match op {
            DeviceOp::KernelLaunch { .. } | DeviceOp::MemcpyAsync { .. } => self.num_kernels += 1,
            DeviceOp::Collective { .. } => self.num_collectives += 1,
            _ => {}
        }
        self.log.push(TraceEvent {
            stream,
            op,
            host_delay: host,
        });
    }

    /// Validates a stream handle.
    pub(crate) fn check_stream(&self, stream: CudaStream) -> CudaResult<StreamId> {
        if stream.0 == 0 || self.streams.contains(&stream.0) {
            Ok(StreamId(stream.0 as u32))
        } else {
            Err(CudaError::InvalidResourceHandle)
        }
    }

    /// Allocates a fresh opaque handle id (shared across libraries).
    pub(crate) fn fresh_handle(&mut self) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        h
    }

    // ----- CUDA runtime: memory -----

    /// `cudaMemGetInfo`: (free, total) bytes, mimicking device behavior
    /// so frameworks can make allocator decisions (§4.1).
    pub fn mem_get_info(&mut self) -> (u64, u64) {
        let _ = self.clock.charge(HostOpClass::Memory);
        (self.capacity - self.used, self.gpu.mem_bytes())
    }

    /// `cudaMalloc`.
    pub fn malloc(&mut self, bytes: u64) -> CudaResult<DevicePtr> {
        if bytes == 0 {
            return Err(CudaError::InvalidValue);
        }
        // Real allocators round to 512-byte granules.
        let rounded = bytes.div_ceil(512) * 512;
        if self.used + rounded > self.capacity {
            self.oom = true;
            return Err(CudaError::MemoryAllocation {
                requested: rounded,
                free: self.capacity - self.used,
            });
        }
        let ptr = self.next_ptr;
        self.next_ptr += rounded;
        self.used += rounded;
        self.peak = self.peak.max(self.used);
        self.num_allocs += 1;
        self.allocations.insert(ptr, rounded);
        self.record(
            StreamId::DEFAULT,
            DeviceOp::Malloc {
                bytes: rounded,
                ptr,
            },
            HostOpClass::Memory,
        );
        Ok(DevicePtr(ptr))
    }

    /// `cudaFree`. Double frees and unknown pointers are flagged.
    pub fn free(&mut self, ptr: DevicePtr) -> CudaResult<()> {
        match self.allocations.remove(&ptr.0) {
            Some(bytes) => {
                self.used -= bytes;
                self.record(
                    StreamId::DEFAULT,
                    DeviceOp::Free { ptr: ptr.0 },
                    HostOpClass::Memory,
                );
                Ok(())
            }
            None => Err(CudaError::InvalidDevicePointer),
        }
    }

    /// `cudaMemsetAsync`.
    pub fn memset_async(
        &mut self,
        ptr: DevicePtr,
        bytes: u64,
        stream: CudaStream,
    ) -> CudaResult<()> {
        if !self.allocations.contains_key(&ptr.0) {
            return Err(CudaError::InvalidDevicePointer);
        }
        let s = self.check_stream(stream)?;
        self.record(
            s,
            DeviceOp::KernelLaunch {
                kernel: KernelKind::Memset { bytes },
            },
            HostOpClass::KernelLaunch,
        );
        Ok(())
    }

    /// `cudaMemcpyAsync`.
    pub fn memcpy_async(
        &mut self,
        bytes: u64,
        kind: MemcpyKind,
        stream: CudaStream,
    ) -> CudaResult<()> {
        let s = self.check_stream(stream)?;
        self.record(
            s,
            DeviceOp::MemcpyAsync {
                bytes,
                kind,
                sync: false,
            },
            HostOpClass::KernelLaunch,
        );
        Ok(())
    }

    /// Synchronous `cudaMemcpy` (blocks the host).
    pub fn memcpy(&mut self, bytes: u64, kind: MemcpyKind) -> CudaResult<()> {
        self.record(
            StreamId::DEFAULT,
            DeviceOp::MemcpyAsync {
                bytes,
                kind,
                sync: true,
            },
            HostOpClass::KernelLaunch,
        );
        Ok(())
    }

    // ----- CUDA runtime: streams & events -----

    /// `cudaStreamCreate`.
    pub fn stream_create(&mut self) -> CudaStream {
        let s = self.next_stream;
        self.next_stream += 1;
        self.streams.insert(s);
        let _ = self.clock.charge(HostOpClass::Sync);
        CudaStream(s)
    }

    /// `cudaStreamDestroy`.
    pub fn stream_destroy(&mut self, stream: CudaStream) -> CudaResult<()> {
        if self.streams.remove(&stream.0) {
            Ok(())
        } else {
            Err(CudaError::InvalidResourceHandle)
        }
    }

    /// `cudaEventCreate`.
    pub fn event_create(&mut self) -> CudaEvent {
        let e = self.next_event;
        self.next_event += 1;
        self.events.insert(e, 0);
        let _ = self.clock.charge(HostOpClass::Sync);
        CudaEvent(e)
    }

    /// `cudaEventDestroy`.
    pub fn event_destroy(&mut self, event: CudaEvent) -> CudaResult<()> {
        if self.events.remove(&event.0).is_some() {
            Ok(())
        } else {
            Err(CudaError::InvalidResourceHandle)
        }
    }

    /// `cudaEventRecord`: bumps the event's re-use version and records it
    /// on `stream`.
    pub fn event_record(&mut self, event: CudaEvent, stream: CudaStream) -> CudaResult<()> {
        let s = self.check_stream(stream)?;
        let v = self
            .events
            .get_mut(&event.0)
            .ok_or(CudaError::InvalidResourceHandle)?;
        *v += 1;
        let version = *v;
        self.record(
            s,
            DeviceOp::EventRecord {
                event: event.0,
                version,
            },
            HostOpClass::Sync,
        );
        Ok(())
    }

    /// `cudaStreamWaitEvent`: `stream` blocks until the event's current
    /// version fires. Waiting on a never-recorded event is a no-op, as in
    /// CUDA.
    pub fn stream_wait_event(&mut self, stream: CudaStream, event: CudaEvent) -> CudaResult<()> {
        let s = self.check_stream(stream)?;
        let version = *self
            .events
            .get(&event.0)
            .ok_or(CudaError::InvalidResourceHandle)?;
        self.record(
            s,
            DeviceOp::StreamWaitEvent {
                event: event.0,
                version,
            },
            HostOpClass::Sync,
        );
        Ok(())
    }

    /// `cudaEventSynchronize`: host blocks until the event fires.
    pub fn event_synchronize(&mut self, event: CudaEvent) -> CudaResult<()> {
        let version = *self
            .events
            .get(&event.0)
            .ok_or(CudaError::InvalidResourceHandle)?;
        self.record(
            StreamId::DEFAULT,
            DeviceOp::EventSynchronize {
                event: event.0,
                version,
            },
            HostOpClass::Sync,
        );
        Ok(())
    }

    /// `cudaStreamSynchronize`.
    pub fn stream_synchronize(&mut self, stream: CudaStream) -> CudaResult<()> {
        let s = self.check_stream(stream)?;
        self.record(s, DeviceOp::StreamSynchronize, HostOpClass::Sync);
        Ok(())
    }

    /// `cudaDeviceSynchronize`.
    pub fn device_synchronize(&mut self) {
        self.record(
            StreamId::DEFAULT,
            DeviceOp::DeviceSynchronize,
            HostOpClass::Sync,
        );
    }

    // ----- Kernel launch -----

    /// `cudaLaunchKernel`: generic entry point for framework kernels that
    /// do not go through an opaque library (elementwise ops, softmax,
    /// layernorm, optimizers, fused Triton kernels, ...).
    pub fn launch_kernel(&mut self, kernel: KernelKind, stream: CudaStream) -> CudaResult<()> {
        let s = self.check_stream(stream)?;
        self.record(
            s,
            DeviceOp::KernelLaunch { kernel },
            HostOpClass::KernelLaunch,
        );
        Ok(())
    }

    /// Finishes emulation, yielding the recorded worker trace.
    pub fn into_trace(self) -> WorkerTrace {
        let mut w = WorkerTrace::new(self.rank);
        w.summary.peak_mem_bytes = self.peak;
        w.summary.final_mem_bytes = self.used;
        w.summary.num_allocs = self.num_allocs;
        w.summary.num_kernels = self.num_kernels;
        w.summary.num_collectives = self.num_collectives;
        w.summary.oom = self.oom;
        w.events = self.log;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_trace::Dtype;

    fn ctx() -> CudaContext {
        CudaContext::new(0, GpuSpec::h100())
    }

    #[test]
    fn malloc_free_roundtrip() {
        let mut c = ctx();
        let (free0, total) = c.mem_get_info();
        assert!(total > free0);
        let p = c.malloc(1 << 20).unwrap();
        assert_eq!(c.mem_used(), 1 << 20);
        let (free1, _) = c.mem_get_info();
        assert_eq!(free0 - free1, 1 << 20);
        c.free(p).unwrap();
        assert_eq!(c.mem_used(), 0);
        assert_eq!(c.mem_peak(), 1 << 20);
    }

    #[test]
    fn malloc_rounds_to_granule() {
        let mut c = ctx();
        c.malloc(1).unwrap();
        assert_eq!(c.mem_used(), 512);
    }

    #[test]
    fn double_free_flagged() {
        let mut c = ctx();
        let p = c.malloc(4096).unwrap();
        c.free(p).unwrap();
        assert_eq!(c.free(p), Err(CudaError::InvalidDevicePointer));
    }

    #[test]
    fn oom_detected_and_sticky() {
        let mut c = ctx();
        let too_big = c.gpu().mem_bytes();
        match c.malloc(too_big) {
            Err(CudaError::MemoryAllocation { requested, .. }) => {
                assert!(requested >= too_big)
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        assert!(c.oom());
        // Smaller allocations still succeed after an OOM report.
        assert!(c.malloc(1024).is_ok());
        assert!(c.oom(), "oom flag is sticky for the trace summary");
    }

    #[test]
    fn invalid_stream_rejected() {
        let mut c = ctx();
        let bogus = CudaStream(999);
        assert_eq!(
            c.launch_kernel(KernelKind::Memset { bytes: 4 }, bogus),
            Err(CudaError::InvalidResourceHandle)
        );
        let s = c.stream_create();
        assert!(c.launch_kernel(KernelKind::Memset { bytes: 4 }, s).is_ok());
        c.stream_destroy(s).unwrap();
        assert_eq!(
            c.launch_kernel(KernelKind::Memset { bytes: 4 }, s),
            Err(CudaError::InvalidResourceHandle)
        );
    }

    #[test]
    fn event_versioning() {
        let mut c = ctx();
        let e = c.event_create();
        let s = c.stream_create();
        c.event_record(e, s).unwrap();
        c.event_record(e, s).unwrap();
        c.stream_wait_event(CudaStream::DEFAULT, e).unwrap();
        let trace = c.into_trace();
        let versions: Vec<u32> = trace
            .events
            .iter()
            .filter_map(|ev| match ev.op {
                DeviceOp::EventRecord { version, .. } => Some(version),
                _ => None,
            })
            .collect();
        assert_eq!(versions, vec![1, 2]);
        let wait_version = trace
            .events
            .iter()
            .find_map(|ev| match ev.op {
                DeviceOp::StreamWaitEvent { version, .. } => Some(version),
                _ => None,
            })
            .unwrap();
        assert_eq!(wait_version, 2, "wait binds to the latest recorded version");
    }

    #[test]
    fn trace_records_kernels_with_host_delays() {
        let mut c = ctx();
        c.launch_kernel(
            KernelKind::Gemm {
                m: 128,
                n: 128,
                k: 128,
                dtype: Dtype::Bf16,
            },
            CudaStream::DEFAULT,
        )
        .unwrap();
        c.host_work(SimTime::from_us(100.0));
        c.launch_kernel(
            KernelKind::Gemm {
                m: 128,
                n: 128,
                k: 128,
                dtype: Dtype::Bf16,
            },
            CudaStream::DEFAULT,
        )
        .unwrap();
        let t = c.into_trace();
        assert_eq!(t.summary.num_kernels, 2);
        assert!(t.events[0].host_delay > SimTime::ZERO);
        assert!(
            t.events[1].host_delay >= SimTime::from_us(100.0),
            "injected framework work is attached to the next call"
        );
    }

    #[test]
    fn zero_byte_malloc_invalid() {
        let mut c = ctx();
        assert_eq!(c.malloc(0).unwrap_err(), CudaError::InvalidValue);
    }
}
