//! A CUDA-shaped virtual device runtime with a transparent emulator.
//!
//! This crate is the Rust analog of Maya's `LD_PRELOAD` shim (§4.1, §6):
//! it exposes the *narrow waist* of accelerator programming — the CUDA
//! runtime API plus the cuBLAS / cuDNN / NCCL library surfaces — and
//! backs it with an emulator that:
//!
//! - turns compute kernels into metadata-recording no-ops;
//! - tracks physical resources (a device memory allocator that detects
//!   OOM and invalid frees) and virtual resources (streams, events with
//!   re-use versions, library handles, communicators), flagging misuse;
//! - models *context-aware operation sequences* — cuBLAS math calls pick
//!   up the stream bound to their handle, cuDNN convolutions read their
//!   descriptor objects, NCCL collectives carry communicator identity and
//!   per-communicator sequence numbers;
//! - charges host-side dispatch time to every call through a pluggable
//!   [`HostClock`] (deterministic model clock by default, wall clock
//!   optionally), mirroring the paper's wall-clock-delta measurements.
//!
//! Training code written against [`CudaContext`] is "unmodified user
//! code" in the sense of the paper: it would behave identically against a
//! real device backend, and the emulator records everything it does.

pub mod clock;
pub mod context;
pub mod cublas;
pub mod cudnn;
pub mod error;
pub mod nccl;

pub use clock::{HostClock, HostOpClass, ModelClock, WallClock};
pub use context::{CudaContext, CudaEvent, CudaStream, DevicePtr};
pub use cublas::CublasHandle;
pub use cudnn::{CudnnConvDesc, CudnnHandle};
pub use error::{CudaError, CudaResult};
pub use nccl::{NcclComm, NcclUniqueId};
