//! cuDNN surface: handles, convolution descriptors, conv/norm/pool ops.
//!
//! Convolution configuration in cuDNN is built incrementally through
//! descriptor objects before any math runs; the emulator tracks those
//! descriptors so that the eventual `cudnnConvolutionForward` carries
//! complete shape metadata (§4.1 "Context-aware Operation Modeling").

use maya_trace::{DeviceOp, Dtype, KernelKind};

use crate::clock::HostOpClass;
use crate::context::{CudaContext, CudaStream};
use crate::error::{CudaError, CudaResult};

/// Opaque cuDNN handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CudnnHandle(pub(crate) u64);

/// Opaque convolution descriptor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CudnnConvDesc(pub(crate) u64);

/// Emulator-side state for one cuDNN handle.
#[derive(Clone, Copy, Debug)]
pub struct CudnnState {
    /// Stream math calls are issued on.
    pub stream: CudaStream,
}

/// Emulator-side convolution configuration.
#[derive(Clone, Copy, Debug)]
pub struct ConvDescState {
    /// Batch size.
    pub n: u64,
    /// Input channels.
    pub c: u64,
    /// Input height.
    pub h: u64,
    /// Input width.
    pub w: u64,
    /// Output channels.
    pub k: u64,
    /// Square filter size.
    pub r: u64,
    /// Stride.
    pub stride: u64,
    /// Operand dtype.
    pub dtype: Dtype,
}

impl CudaContext {
    /// `cudnnCreate`.
    pub fn cudnn_create(&mut self) -> CudnnHandle {
        let h = self.fresh_handle();
        self.cudnn.insert(
            h,
            CudnnState {
                stream: CudaStream::DEFAULT,
            },
        );
        CudnnHandle(h)
    }

    /// `cudnnDestroy`.
    pub fn cudnn_destroy(&mut self, handle: CudnnHandle) -> CudaResult<()> {
        self.cudnn
            .remove(&handle.0)
            .map(|_| ())
            .ok_or(CudaError::NotInitialized)
    }

    /// `cudnnSetStream`.
    pub fn cudnn_set_stream(&mut self, handle: CudnnHandle, stream: CudaStream) -> CudaResult<()> {
        self.check_stream(stream)?;
        let st = self
            .cudnn
            .get_mut(&handle.0)
            .ok_or(CudaError::NotInitialized)?;
        st.stream = stream;
        Ok(())
    }

    /// Creates a convolution descriptor (stands in for the tensor/filter/
    /// convolution descriptor triple of the real API).
    #[allow(clippy::too_many_arguments)]
    pub fn cudnn_create_conv_descriptor(
        &mut self,
        n: u64,
        c: u64,
        h: u64,
        w: u64,
        k: u64,
        r: u64,
        stride: u64,
        dtype: Dtype,
    ) -> CudaResult<CudnnConvDesc> {
        if n == 0 || c == 0 || h == 0 || w == 0 || k == 0 || r == 0 || stride == 0 {
            return Err(CudaError::InvalidValue);
        }
        let id = self.fresh_handle();
        self.conv_descs.insert(
            id,
            ConvDescState {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                dtype,
            },
        );
        Ok(CudnnConvDesc(id))
    }

    /// Destroys a convolution descriptor.
    pub fn cudnn_destroy_conv_descriptor(&mut self, desc: CudnnConvDesc) -> CudaResult<()> {
        self.conv_descs
            .remove(&desc.0)
            .map(|_| ())
            .ok_or(CudaError::InvalidResourceHandle)
    }

    fn conv_common(
        &mut self,
        handle: CudnnHandle,
        desc: CudnnConvDesc,
        build: impl Fn(&ConvDescState) -> KernelKind,
    ) -> CudaResult<()> {
        let state = *self.cudnn.get(&handle.0).ok_or(CudaError::NotInitialized)?;
        let d = *self
            .conv_descs
            .get(&desc.0)
            .ok_or(CudaError::InvalidResourceHandle)?;
        let s = self.check_stream(state.stream)?;
        self.record(
            s,
            DeviceOp::KernelLaunch { kernel: build(&d) },
            HostOpClass::Library,
        );
        Ok(())
    }

    /// `cudnnConvolutionForward`.
    pub fn cudnn_convolution_forward(
        &mut self,
        handle: CudnnHandle,
        desc: CudnnConvDesc,
    ) -> CudaResult<()> {
        self.conv_common(handle, desc, |d| KernelKind::ConvForward {
            n: d.n,
            c: d.c,
            h: d.h,
            w: d.w,
            k: d.k,
            r: d.r,
            stride: d.stride,
            dtype: d.dtype,
        })
    }

    /// `cudnnConvolutionBackwardData`.
    pub fn cudnn_convolution_backward_data(
        &mut self,
        handle: CudnnHandle,
        desc: CudnnConvDesc,
    ) -> CudaResult<()> {
        self.conv_common(handle, desc, |d| KernelKind::ConvBackwardData {
            n: d.n,
            c: d.c,
            h: d.h,
            w: d.w,
            k: d.k,
            r: d.r,
            stride: d.stride,
            dtype: d.dtype,
        })
    }

    /// `cudnnConvolutionBackwardFilter`.
    pub fn cudnn_convolution_backward_filter(
        &mut self,
        handle: CudnnHandle,
        desc: CudnnConvDesc,
    ) -> CudaResult<()> {
        self.conv_common(handle, desc, |d| KernelKind::ConvBackwardFilter {
            n: d.n,
            c: d.c,
            h: d.h,
            w: d.w,
            k: d.k,
            r: d.r,
            stride: d.stride,
            dtype: d.dtype,
        })
    }

    /// `cudnnBatchNormalizationForwardTraining` / backward.
    pub fn cudnn_batch_norm(
        &mut self,
        handle: CudnnHandle,
        numel: u64,
        channels: u64,
        forward: bool,
    ) -> CudaResult<()> {
        let state = *self.cudnn.get(&handle.0).ok_or(CudaError::NotInitialized)?;
        let s = self.check_stream(state.stream)?;
        self.record(
            s,
            DeviceOp::KernelLaunch {
                kernel: KernelKind::BatchNorm {
                    numel,
                    channels,
                    forward,
                },
            },
            HostOpClass::Library,
        );
        Ok(())
    }

    /// `cudnnPoolingForward` / backward.
    pub fn cudnn_pooling(
        &mut self,
        handle: CudnnHandle,
        numel: u64,
        window: u64,
        forward: bool,
    ) -> CudaResult<()> {
        let state = *self.cudnn.get(&handle.0).ok_or(CudaError::NotInitialized)?;
        let s = self.check_stream(state.stream)?;
        self.record(
            s,
            DeviceOp::KernelLaunch {
                kernel: KernelKind::Pool {
                    numel,
                    window,
                    forward,
                },
            },
            HostOpClass::Library,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_hw::GpuSpec;

    #[test]
    fn conv_descriptor_drives_kernel_metadata() {
        let mut c = CudaContext::new(0, GpuSpec::a40());
        let h = c.cudnn_create();
        let d = c
            .cudnn_create_conv_descriptor(32, 64, 56, 56, 128, 3, 1, Dtype::Fp32)
            .unwrap();
        c.cudnn_convolution_forward(h, d).unwrap();
        c.cudnn_convolution_backward_data(h, d).unwrap();
        c.cudnn_convolution_backward_filter(h, d).unwrap();
        let t = c.into_trace();
        let names: Vec<&str> = t.events.iter().map(|e| e.op.name()).collect();
        assert_eq!(
            names,
            vec![
                "cudnnConvolutionForward",
                "cudnnConvolutionBackwardData",
                "cudnnConvolutionBackwardFilter"
            ]
        );
        match t.events[0].op.as_kernel().unwrap() {
            KernelKind::ConvForward { n, c: ch, k, .. } => {
                assert_eq!((*n, *ch, *k), (32, 64, 128));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn uninitialized_descriptor_flagged() {
        let mut c = CudaContext::new(0, GpuSpec::a40());
        let h = c.cudnn_create();
        let bogus = CudnnConvDesc(31337);
        assert_eq!(
            c.cudnn_convolution_forward(h, bogus),
            Err(CudaError::InvalidResourceHandle)
        );
    }

    #[test]
    fn destroyed_descriptor_flagged() {
        let mut c = CudaContext::new(0, GpuSpec::a40());
        let h = c.cudnn_create();
        let d = c
            .cudnn_create_conv_descriptor(1, 3, 8, 8, 8, 3, 1, Dtype::Fp32)
            .unwrap();
        c.cudnn_destroy_conv_descriptor(d).unwrap();
        assert_eq!(
            c.cudnn_convolution_forward(h, d),
            Err(CudaError::InvalidResourceHandle)
        );
    }

    #[test]
    fn zero_sized_descriptor_invalid() {
        let mut c = CudaContext::new(0, GpuSpec::a40());
        assert_eq!(
            c.cudnn_create_conv_descriptor(0, 3, 8, 8, 8, 3, 1, Dtype::Fp32),
            Err(CudaError::InvalidValue)
        );
    }
}
