//! CUDA-style error codes.

use std::fmt;

/// Result alias for device API calls.
pub type CudaResult<T> = Result<T, CudaError>;

/// Error codes mirroring `cudaError_t` / library statuses.
///
/// The emulator "identifies and flags" misuse — invalid streams,
/// uninitialized descriptors, double frees, out-of-memory — using each
/// handle's tracked state (§4.1 "Resource Tracking").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CudaError {
    /// `cudaErrorMemoryAllocation`: the device allocator is exhausted.
    MemoryAllocation {
        /// Bytes that were requested.
        requested: u64,
        /// Bytes still free when the request failed.
        free: u64,
    },
    /// `cudaErrorInvalidValue`: a malformed argument.
    InvalidValue,
    /// `cudaErrorInvalidResourceHandle`: unknown/destroyed stream, event
    /// or library handle.
    InvalidResourceHandle,
    /// `cudaErrorInvalidDevicePointer`: free of an unknown pointer or
    /// double free.
    InvalidDevicePointer,
    /// `CUBLAS_STATUS_NOT_INITIALIZED` and friends: a library call used a
    /// handle that was never created.
    NotInitialized,
    /// `ncclInvalidUsage`: communicator misuse (e.g. rank out of range).
    NcclInvalidUsage,
}

impl fmt::Display for CudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CudaError::MemoryAllocation { requested, free } => write!(
                f,
                "cudaErrorMemoryAllocation: requested {requested} bytes with {free} free"
            ),
            CudaError::InvalidValue => write!(f, "cudaErrorInvalidValue"),
            CudaError::InvalidResourceHandle => write!(f, "cudaErrorInvalidResourceHandle"),
            CudaError::InvalidDevicePointer => write!(f, "cudaErrorInvalidDevicePointer"),
            CudaError::NotInitialized => write!(f, "CUBLAS_STATUS_NOT_INITIALIZED"),
            CudaError::NcclInvalidUsage => write!(f, "ncclInvalidUsage"),
        }
    }
}

impl std::error::Error for CudaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cuda_names() {
        let e = CudaError::MemoryAllocation {
            requested: 100,
            free: 10,
        };
        assert!(e.to_string().contains("cudaErrorMemoryAllocation"));
        assert!(CudaError::InvalidResourceHandle
            .to_string()
            .contains("InvalidResourceHandle"));
    }
}
