//! Host-side time accounting for emulated API calls.
//!
//! The paper measures "wall-clock deltas between API calls during
//! emulation" and replays them as blocking host work in the simulator
//! (§4.2). That is faithful but non-deterministic; for reproducible tests
//! and benches the default here is a *model* clock that charges a
//! per-call-class dispatch cost plus deterministic jitter. A wall-clock
//! implementation is provided for parity with the paper.

use maya_hw::noise::{centered_factor, Key};
use maya_trace::SimTime;

/// Coarse classes of host work attached to an API call.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HostOpClass {
    /// Kernel or memcpy launch through the runtime API.
    KernelLaunch,
    /// Allocation / free bookkeeping.
    Memory,
    /// Event / stream management.
    Sync,
    /// cuBLAS / cuDNN library dispatch (heavier: heuristics, setup).
    Library,
    /// NCCL enqueue.
    Nccl,
    /// Framework-level host work injected by the application between API
    /// calls (Python dispatch, optimizer bookkeeping, ...).
    Framework,
}

/// Source of host-delay measurements for the emulator.
pub trait HostClock: Send {
    /// Time to charge for an API call of class `class`; called once per
    /// recorded operation, in program order.
    fn charge(&mut self, class: HostOpClass) -> SimTime;
}

/// Deterministic host-cost model.
///
/// Costs loosely follow measured CUDA dispatch overheads on a modern
/// server CPU (a few microseconds per launch; more for library calls that
/// run heuristics). `cpu_speed` scales everything, standing in for the
/// host hardware differences discussed in §8 ("Taxonomy of CPU
/// computation").
#[derive(Clone, Debug)]
pub struct ModelClock {
    /// Multiplier on all host costs (1.0 = reference CPU).
    pub cpu_speed: f64,
    /// Jitter amplitude (deterministic, hash-based).
    pub jitter: f64,
    seed: u64,
    calls: u64,
}

impl ModelClock {
    /// Creates a model clock for a given seed.
    pub fn new(seed: u64) -> Self {
        ModelClock {
            cpu_speed: 1.0,
            jitter: 0.10,
            seed,
            calls: 0,
        }
    }

    /// Base cost in microseconds for each call class.
    fn base_us(class: HostOpClass) -> f64 {
        match class {
            HostOpClass::KernelLaunch => 4.5,
            HostOpClass::Memory => 2.8,
            HostOpClass::Sync => 1.9,
            HostOpClass::Library => 7.5,
            HostOpClass::Nccl => 9.0,
            HostOpClass::Framework => 12.0,
        }
    }
}

impl Default for ModelClock {
    fn default() -> Self {
        ModelClock::new(0x4D43_4C4B)
    }
}

impl HostClock for ModelClock {
    fn charge(&mut self, class: HostOpClass) -> SimTime {
        self.calls += 1;
        let f = centered_factor(
            Key::new(self.seed)
                .with(self.calls)
                .with(class as u64)
                .finish(),
            self.jitter,
        );
        SimTime::from_us(Self::base_us(class) * self.cpu_speed * f)
    }
}

/// Wall-clock host timing (the paper's approach): measures real elapsed
/// time between successive API calls.
#[derive(Debug)]
pub struct WallClock {
    last: std::time::Instant,
}

impl WallClock {
    /// Starts the clock now.
    pub fn new() -> Self {
        WallClock {
            last: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl HostClock for WallClock {
    fn charge(&mut self, _class: HostOpClass) -> SimTime {
        let now = std::time::Instant::now();
        let dt = now.duration_since(self.last);
        self.last = now;
        SimTime::from_ns(dt.as_nanos().min(u128::from(u64::MAX)) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_clock_is_deterministic() {
        let mut a = ModelClock::new(7);
        let mut b = ModelClock::new(7);
        for class in [
            HostOpClass::KernelLaunch,
            HostOpClass::Library,
            HostOpClass::Sync,
        ] {
            assert_eq!(a.charge(class), b.charge(class));
        }
    }

    #[test]
    fn model_clock_scales_with_cpu_speed() {
        let mut fast = ModelClock::new(7);
        let mut slow = ModelClock::new(7);
        slow.cpu_speed = 2.0;
        let tf = fast.charge(HostOpClass::KernelLaunch);
        let ts = slow.charge(HostOpClass::KernelLaunch);
        // Nanosecond rounding in `SimTime` allows a tiny deviation.
        assert!((ts.as_us() / tf.as_us() - 2.0).abs() < 1e-3);
    }

    #[test]
    fn library_calls_cost_more_than_sync() {
        let mut c = ModelClock::new(1);
        c.jitter = 0.0;
        let lib = c.charge(HostOpClass::Library);
        let sync = c.charge(HostOpClass::Sync);
        assert!(lib > sync);
    }

    #[test]
    fn wall_clock_monotonic() {
        let mut w = WallClock::new();
        let a = w.charge(HostOpClass::KernelLaunch);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = w.charge(HostOpClass::KernelLaunch);
        assert!(b >= a);
        assert!(b.as_ms() >= 1.0);
    }
}
