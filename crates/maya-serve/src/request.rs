//! Typed requests and responses.
//!
//! Every request names a *cluster target* — a string the service maps
//! to an [`maya::EmulationSpec`] at registration time — and every
//! response carries [`Telemetry`]: how long the request sat in the
//! admission queue, how long it executed, what the engine's memo cache
//! did for it, and the summed pipeline stage timings.

use std::time::Duration;

use maya::{MayaError, Prediction, StageTimings};
use maya_estimator::CacheStats;
use maya_hw::Measurement;
use maya_obs::SpanNode;
use maya_search::{AlgorithmKind, ConfigSpace, SearchResult};
use maya_torchlet::TrainingJob;

/// A client request against a named cluster target.
#[derive(Debug)]
pub enum Request {
    /// Predict one or more training jobs end to end; results align
    /// positionally with `jobs`.
    Predict {
        /// Registered cluster target.
        target: String,
        /// Jobs to predict (batched across the engine's pool).
        jobs: Vec<TrainingJob>,
    },
    /// Run a configuration search over `space` for `template`.
    Search {
        /// Registered cluster target.
        target: String,
        /// Job template; the search replaces `parallel` per trial.
        template: TrainingJob,
        /// Knob space to explore.
        space: ConfigSpace,
        /// Search algorithm.
        algorithm: AlgorithmKind,
        /// Trial budget.
        budget: usize,
        /// Optimizer seed.
        seed: u64,
    },
    /// Run the job on the ground-truth testbed.
    Measure {
        /// Registered cluster target.
        target: String,
        /// Job to measure.
        job: TrainingJob,
    },
}

impl Request {
    /// The cluster target this request is routed to.
    pub fn target(&self) -> &str {
        match self {
            Request::Predict { target, .. }
            | Request::Search { target, .. }
            | Request::Measure { target, .. } => target,
        }
    }

    /// Short kind label for logs and telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Predict { .. } => "predict",
            Request::Search { .. } => "search",
            Request::Measure { .. } => "measure",
        }
    }
}

/// Outcome of a `Measure` request's testbed run.
#[derive(Clone, Debug)]
pub enum MeasureOutcome {
    /// The job ran; here is the ground-truth measurement.
    Completed(Measurement),
    /// The job over-allocated on real (stand-in) hardware.
    OutOfMemory {
        /// Peak bytes held when the allocation failed.
        peak_bytes: u64,
    },
}

/// The result body of a [`Response`], by request kind.
#[derive(Debug)]
pub enum Payload {
    /// Per-job outcomes of a `Predict`, positionally aligned with the
    /// request's `jobs`.
    Predict(Vec<Result<Prediction, MayaError>>),
    /// Outcome of a `Search`.
    Search(Box<SearchResult>),
    /// Outcome of a `Measure`.
    Measure(Result<MeasureOutcome, MayaError>),
}

/// Per-request service telemetry.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Time spent in the admission queue before a worker picked the
    /// request up.
    pub queue_wait: Duration,
    /// Execution wall time on the worker.
    pub service_time: Duration,
    /// Index of the pool worker that served the request.
    pub worker: usize,
    /// The engine's cumulative memo-cache counters after this request.
    pub cache: CacheStats,
    /// Counters attributable to this request (cumulative delta across
    /// its execution; approximate when concurrent requests share the
    /// engine).
    pub cache_delta: CacheStats,
    /// Summed pipeline stage timings over the request's successful
    /// predictions (zero for `Search`, whose per-trial timings are not
    /// individually surfaced).
    pub stages: StageTimings,
    /// The job-lifecycle span tree (`job` → `queued`/`execute` →
    /// stages), built when the service's
    /// [`maya_obs::ObsConfig::spans`] channel is on; empty otherwise.
    /// At most one root. The wire server appends a `reply` span before
    /// recording the tree in its flight ring; wire protocol v5 carries
    /// the tree to clients, v4 peers receive telemetry without it.
    pub spans: Vec<SpanNode>,
}

/// A served request: payload plus telemetry.
#[derive(Debug)]
pub struct Response {
    /// The cluster target that served the request.
    pub target: String,
    /// Request kind label ("predict" / "search" / "measure").
    pub kind: &'static str,
    /// Service telemetry.
    pub telemetry: Telemetry,
    /// The result body.
    pub payload: Payload,
}

impl Response {
    /// The predict results, when this response answers a `Predict`.
    pub fn predictions(&self) -> Option<&[Result<Prediction, MayaError>]> {
        match &self.payload {
            Payload::Predict(p) => Some(p),
            _ => None,
        }
    }

    /// The search result, when this response answers a `Search`.
    pub fn search(&self) -> Option<&SearchResult> {
        match &self.payload {
            Payload::Search(s) => Some(s),
            _ => None,
        }
    }

    /// The measurement outcome, when this response answers a `Measure`.
    pub fn measurement(&self) -> Option<&Result<MeasureOutcome, MayaError>> {
        match &self.payload {
            Payload::Measure(m) => Some(m),
            _ => None,
        }
    }
}
