//! Maya-Serve: one coherent front door for many clients and many
//! clusters.
//!
//! The rest of the workspace turns a single `(cluster, estimator)` pair
//! into predictions; this crate turns that into a *service*. Clients
//! submit typed [`Request`]s — [`Request::Predict`],
//! [`Request::Search`], [`Request::Measure`] — against **named cluster
//! targets**, and get back a uniform [`Response`] carrying the result
//! plus [`Telemetry`] (queue wait, engine cache counters, stage
//! timings).
//!
//! Internally:
//!
//! - an [`EngineRegistry`] lazily builds and multiplexes **one
//!   [`maya::PredictionEngine`] per distinct [`maya::EmulationSpec`],
//!   one estimator + memo cache per distinct cluster** — concurrent
//!   clients targeting the same cluster share a single estimator memo
//!   (even when their pipeline knobs differ), so one tenant's trials
//!   warm every tenant's cache, and the expensive estimator build runs
//!   once per cluster;
//! - a **bounded QoS admission queue** schedules requests over one
//!   shared pool of worker threads (instead of a pool per engine):
//!   jobs carry a [`Priority`] class and an optional tenant
//!   ([`JobOptions`]), classes run High → Normal → Batch with
//!   earliest-deadline-first inside a class and a starvation guard
//!   aging `Batch` work upward, named tenants are quota-checked
//!   (max queued → [`ServeError::QuotaExceeded`], max in-flight →
//!   passed over at dispatch) with per-tenant counters in
//!   [`ServiceStats::tenants`](crate::ServiceStats);
//!   [`MayaService::submit`] blocks when the queue is full,
//!   [`MayaService::try_submit`] sheds load with
//!   [`ServeError::Overloaded`];
//! - optional **memo snapshots** (`CachingEstimator::snapshot` /
//!   `restore` under the hood) warm-start every target from
//!   `<dir>/<target>.memo` and persist what the process learned —
//!   a restarted service answers a repeated workload with zero
//!   estimator-cache misses.
//!
//! Determinism carries through from the engine: a response is
//! byte-identical to driving the [`maya::PredictionEngine`] directly.
//!
//! ```
//! use maya::EmulationSpec;
//! use maya_hw::ClusterSpec;
//! use maya_serve::{MayaService, Request};
//! use maya_torchlet::TrainingJob;
//!
//! let service = MayaService::builder()
//!     .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
//!     .build()
//!     .unwrap();
//! let response = service
//!     .call(Request::Predict {
//!         target: "h100-1".into(),
//!         jobs: vec![TrainingJob::smoke()],
//!     })
//!     .unwrap();
//! let predictions = response.predictions().unwrap();
//! assert!(predictions[0].as_ref().unwrap().report().is_some());
//! ```

pub mod error;
pub mod job;
pub mod queue;
pub mod registry;
pub mod request;
pub mod serdes;
pub mod service;

pub use error::ServeError;
/// Re-exported observability vocabulary, so service users configure
/// and consume instrumentation without naming `maya-obs` directly.
pub use maya_obs::{ObsConfig, ObsSnapshot, SpanNode};

pub use job::{
    CancelToken, JobControl, JobHandle, JobOptions, JobOutcome, JobState, Priority, ProgressEvents,
    SearchProgress,
};
pub use queue::TenantStats;
pub use registry::EngineRegistry;
pub use request::{MeasureOutcome, Payload, Request, Response, Telemetry};
#[allow(deprecated)]
pub use service::ResponseHandle;
pub use service::{MayaService, RestoreOutcome, ServiceBuilder, ServiceStats, SnapshotRestore};

#[cfg(test)]
mod tests {
    use super::*;
    use maya::EmulationSpec;
    use maya_hw::ClusterSpec;
    use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
    use maya_trace::Dtype;

    fn job(world: u32) -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel: ParallelConfig::default(),
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 8 * world,
            world,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        }
    }

    fn predict(target: &str, world: u32) -> Request {
        Request::Predict {
            target: target.into(),
            jobs: vec![job(world)],
        }
    }

    #[test]
    fn equal_spec_targets_share_one_cache() {
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 2));
        let service = MayaService::builder()
            .target("tenant-a", spec.clone())
            .target("tenant-b", spec)
            .workers(2)
            .build()
            .unwrap();

        let first = service.call(predict("tenant-a", 2)).unwrap();
        assert!(first.telemetry.cache_delta.misses > 0, "cold cache misses");
        let after_first = service.cache_stats("tenant-a").unwrap();

        // The other tenant's identical workload is answered entirely
        // from the shared memo: not one new miss.
        let second = service.call(predict("tenant-b", 2)).unwrap();
        assert_eq!(second.telemetry.cache_delta.misses, 0, "shared cache");
        assert!(second.telemetry.cache_delta.hits > 0);
        assert_eq!(
            service.cache_stats("tenant-b").unwrap().misses,
            after_first.misses,
            "tenant-b sees tenant-a's cache"
        );
        assert_eq!(service.stats().engines_built, 1);
    }

    #[test]
    fn same_cluster_knob_variants_share_the_memo_but_not_the_engine() {
        let base = EmulationSpec::new(ClusterSpec::h100(1, 2));
        let service = MayaService::builder()
            .target("plain", base.clone())
            .target("no-dedup", base.with_dedup(false))
            .build()
            .unwrap();
        let a = service.call(predict("plain", 2)).unwrap();
        let b = service.call(predict("no-dedup", 2)).unwrap();
        assert!(a.telemetry.cache_delta.misses > 0);
        assert_eq!(
            b.telemetry.cache_delta.misses, 0,
            "same cluster: pipeline knobs must not fragment the memo"
        );
        assert_eq!(service.stats().engines_built, 2, "but engines differ");
    }

    #[test]
    fn distinct_cluster_targets_do_not_share() {
        let service = MayaService::builder()
            .target("h100", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .target("a40", EmulationSpec::new(ClusterSpec::a40(1, 2)))
            .build()
            .unwrap();
        let a = service.call(predict("h100", 2)).unwrap();
        let b = service.call(predict("a40", 2)).unwrap();
        assert!(a.telemetry.cache_delta.misses > 0);
        assert!(
            b.telemetry.cache_delta.misses > 0,
            "different clusters must never share answers"
        );
        assert_eq!(service.stats().engines_built, 2);
    }

    #[test]
    fn response_matches_direct_engine_call() {
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 4));
        let service = MayaService::builder()
            .target("h100-4", spec)
            .build()
            .unwrap();
        let resp = service
            .call(Request::Predict {
                target: "h100-4".into(),
                jobs: vec![job(4)],
            })
            .unwrap();
        let via_service = resp.predictions().unwrap()[0].as_ref().unwrap();

        let direct_engine = maya::MayaBuilder::new(ClusterSpec::h100(1, 4)).build_engine();
        let direct = direct_engine.predict_job(&job(4)).unwrap();
        assert_eq!(via_service.iteration_time(), direct.iteration_time());
        assert_eq!(via_service.workers_simulated, direct.workers_simulated);
        assert_eq!(via_service.trace_events, direct.trace_events);
        assert_eq!(resp.kind, "predict");
        assert_eq!(resp.target, "h100-4");
    }

    #[test]
    fn snapshot_round_trip_warm_starts_a_second_service() {
        let dir = std::env::temp_dir().join(format!("maya-serve-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 2));

        let first = MayaService::builder()
            .target("h100-2", spec.clone())
            .snapshot_dir(&dir)
            .build()
            .unwrap();
        first.call(predict("h100-2", 2)).unwrap();
        assert_eq!(first.persist_snapshots().unwrap(), 1);
        drop(first);

        let second = MayaService::builder()
            .target("h100-2", spec)
            .snapshot_dir(&dir)
            .build()
            .unwrap();
        let resp = second.call(predict("h100-2", 2)).unwrap();
        assert_eq!(
            resp.telemetry.cache.misses, 0,
            "restored service must answer the repeated workload from the snapshot"
        );
        assert!(resp.telemetry.cache.hits > 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_capacity_bounds_the_service_caches_and_reports_evictions() {
        let service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .memo_capacity(16)
            .build()
            .unwrap();
        let resp = service.call(predict("h100-1", 1)).unwrap();
        assert!(
            resp.telemetry.cache_delta.evictions > 0,
            "a 16-entry cap must evict during a real prediction: {:?}",
            resp.telemetry.cache_delta
        );
        let engine = service.engine("h100-1").unwrap();
        assert!(engine.cache().len() <= 16, "cap exceeded");
        // Answers are unaffected by eviction (pure recomputation).
        let direct = maya::MayaBuilder::new(ClusterSpec::h100(1, 1)).build_engine();
        let via = resp.predictions().unwrap()[0].as_ref().unwrap();
        assert_eq!(
            via.iteration_time(),
            direct.predict_job(&job(1)).unwrap().iteration_time()
        );
    }

    #[test]
    fn capped_restore_reports_what_the_capacity_evicted() {
        use service::RestoreOutcome;
        let dir =
            std::env::temp_dir().join(format!("maya-serve-caprestore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 1));

        let warm = MayaService::builder()
            .target("node", spec.clone())
            .snapshot_dir(&dir)
            .build()
            .unwrap();
        warm.call(predict("node", 1)).unwrap();
        assert_eq!(warm.persist_snapshots().unwrap(), 1);
        drop(warm);

        // Restart with a cap far below the snapshot: the restore must
        // say how much of the "warm start" was immediately evicted.
        let capped = MayaService::builder()
            .target("node", spec)
            .snapshot_dir(&dir)
            .memo_capacity(16)
            .build()
            .unwrap();
        match &capped.snapshot_restores()[0].outcome {
            RestoreOutcome::Loaded { entries, evicted } => {
                assert!(*evicted > 0, "a 16-entry cap cannot hold the snapshot");
                assert!(entries > evicted, "something must stay resident");
                let engine = capped.engine("node").unwrap();
                assert_eq!(
                    entries - evicted,
                    engine.cache().len(),
                    "resident = loaded - evicted"
                );
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incompatible_snapshot_is_skipped_with_a_typed_warning_not_a_failed_build() {
        use maya_estimator::SnapshotError;
        use service::RestoreOutcome;

        let dir = std::env::temp_dir().join(format!("maya-serve-skew-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // A service snapshots its H100 target...
        let h100 = MayaService::builder()
            .target("node", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .snapshot_dir(&dir)
            .build()
            .unwrap();
        h100.call(predict("node", 1)).unwrap();
        assert_eq!(h100.persist_snapshots().unwrap(), 1);
        drop(h100);

        // ...then restarts with the target remapped to an A40. The
        // stale memo must be skipped (reported, cold start) — not
        // silently loaded, and not a fatal build error.
        let a40 = MayaService::builder()
            .target("node", EmulationSpec::new(ClusterSpec::a40(1, 1)))
            .snapshot_dir(&dir)
            .build()
            .expect("scope mismatch must not fail the build");
        let restores = a40.snapshot_restores();
        assert_eq!(restores.len(), 1);
        assert_eq!(restores[0].target, "node");
        assert!(
            matches!(
                restores[0].outcome,
                RestoreOutcome::Skipped {
                    reason: SnapshotError::ScopeMismatch { .. }
                }
            ),
            "{:?}",
            restores[0].outcome
        );
        let resp = a40.call(predict("node", 1)).unwrap();
        assert!(
            resp.telemetry.cache_delta.misses > 0,
            "the skipped snapshot must leave the target cold"
        );
        drop(a40);

        // A compatible restart reports how many entries it loaded.
        let again = MayaService::builder()
            .target("node", EmulationSpec::new(ClusterSpec::a40(1, 1)))
            .snapshot_dir(&dir)
            .build()
            .unwrap();
        // The A40 run overwrote the memo on persist? No — the first A40
        // service never persisted. The H100 memo is still there and
        // still skipped; persist the A40 memo now to check Loaded.
        again.call(predict("node", 1)).unwrap();
        again.persist_snapshots().unwrap();
        drop(again);

        let warm = MayaService::builder()
            .target("node", EmulationSpec::new(ClusterSpec::a40(1, 1)))
            .snapshot_dir(&dir)
            .build()
            .unwrap();
        match &warm.snapshot_restores()[0].outcome {
            RestoreOutcome::Loaded { entries, evicted } => {
                assert!(*entries > 0, "report the count");
                assert_eq!(*evicted, 0, "unbounded memo evicts nothing");
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
        let resp = warm.call(predict("node", 1)).unwrap();
        assert_eq!(resp.telemetry.cache_delta.misses, 0, "warm start");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixed_custom_estimator_cannot_span_clusters() {
        use maya::EstimatorChoice;
        use maya_estimator::OracleEstimator;
        use std::sync::Arc;

        let h100 = ClusterSpec::h100(1, 2);
        let fixed = EstimatorChoice::Custom(Arc::new(OracleEstimator::new(&h100)));

        // One cluster (even via several targets): fine.
        assert!(MayaService::builder()
            .target("a", EmulationSpec::new(h100.clone()))
            .target("b", EmulationSpec::new(h100.clone()).with_dedup(false))
            .estimator(fixed.clone())
            .build()
            .is_ok());

        // Two distinct clusters: the fixed instance would silently
        // serve H100 timings for the A40 — rejected at build.
        let err = MayaService::builder()
            .target("h100", EmulationSpec::new(h100.clone()))
            .target("a40", EmulationSpec::new(ClusterSpec::a40(1, 2)))
            .estimator(fixed)
            .build()
            .err();
        assert!(
            matches!(err, Some(ServeError::CustomEstimatorSpansClusters)),
            "{err:?}"
        );

        // The factory form is the multi-cluster-safe escape hatch.
        let factory = EstimatorChoice::Factory {
            label: "oracle-per-cluster".into(),
            make: Arc::new(|cluster| Arc::new(OracleEstimator::new(cluster))),
        };
        let service = MayaService::builder()
            .target("h100", EmulationSpec::new(h100))
            .target("a40", EmulationSpec::new(ClusterSpec::a40(1, 2)))
            .estimator(factory)
            .build()
            .unwrap();
        assert!(service.call(predict("a40", 2)).is_ok());
    }

    #[test]
    fn unknown_target_rejected_at_submission() {
        let service = MayaService::builder()
            .target("known", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        let err = service.submit(predict("unknown", 1)).err().unwrap();
        assert!(matches!(err, ServeError::UnknownTarget(_)), "{err}");
    }

    #[test]
    fn duplicate_and_empty_target_sets_rejected() {
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 1));
        assert!(matches!(
            MayaService::builder().build().err(),
            Some(ServeError::NoTargets)
        ));
        assert!(matches!(
            MayaService::builder()
                .target("x", spec.clone())
                .target("x", spec)
                .build()
                .err(),
            Some(ServeError::DuplicateTarget(_))
        ));
    }

    #[test]
    fn bounded_queue_sheds_load_and_still_answers_admitted_requests() {
        let service = MayaService::builder()
            .target("h100-2", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .queue_capacity(1)
            .build()
            .unwrap();
        // Flood far faster than one worker can drain a 1-slot queue:
        // predictions take milliseconds, try_submit takes microseconds.
        let mut handles = Vec::new();
        let mut shed = 0;
        for _ in 0..64 {
            match service.try_submit(predict("h100-2", 2)) {
                Ok(h) => handles.push(h),
                Err(ServeError::Overloaded) => shed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            shed > 0,
            "a 1-slot queue must shed some of 64 instant submits"
        );
        assert!(!handles.is_empty(), "admission accepted some requests");
        for h in handles {
            let resp = h.wait().unwrap();
            assert!(resp.predictions().unwrap()[0].is_ok());
        }
    }

    #[test]
    fn shutdown_stops_new_submissions() {
        let mut service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        service.shutdown();
        assert!(matches!(
            service.submit(predict("h100-1", 1)).err(),
            Some(ServeError::Stopped)
        ));
    }

    fn search(target: &str, world: u32, budget: usize) -> Request {
        Request::Search {
            target: target.into(),
            template: job(world),
            space: maya_search::ConfigSpace {
                tp: vec![1, 2],
                pp: vec![1, 2],
                microbatch_multiplier: vec![1, 2],
                virtual_stages: vec![1],
                activation_recompute: vec![true, false],
                sequence_parallel: vec![false],
                distributed_optimizer: vec![true, false],
            },
            algorithm: maya_search::AlgorithmKind::Random,
            budget,
            seed: 11,
        }
    }

    #[test]
    fn progress_stream_reconstructs_the_search_result_exactly() {
        let service = MayaService::builder()
            .target("h100-2", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .build()
            .unwrap();
        let handle = service.submit(search("h100-2", 2, 30)).unwrap();
        let events: Vec<SearchProgress> = handle.progress().collect();
        let outcome = handle.wait_outcome().unwrap();
        let JobOutcome::Done(resp) = outcome else {
            panic!("expected Done, got {outcome:?}");
        };
        let result = resp.search().unwrap();
        assert!(events.len() >= 2, "a 30-trial search spans several waves");
        let streamed: Vec<_> = events.iter().flat_map(|e| e.trials.clone()).collect();
        assert_eq!(
            streamed, result.trials,
            "concatenated progress batches must equal the final trials"
        );
        assert!(
            events.windows(2).all(|w| w[0].committed < w[1].committed),
            "committed counts must be strictly increasing"
        );
        assert_eq!(events.last().unwrap().committed, result.trials.len());
        assert_eq!(
            events.last().unwrap().best.map(|(c, _)| c),
            result.best.map(|(c, _)| c),
            "the last event's best must match the result"
        );
        let delta_misses: u64 = events.iter().map(|e| e.cache_delta.misses).sum();
        assert!(delta_misses > 0, "a cold search must report cache misses");
    }

    #[test]
    fn cancel_mid_search_returns_the_deterministic_committed_prefix() {
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 2));
        // Reference: the same search, uncancelled, on a fresh service.
        let reference = MayaService::builder()
            .target("t", spec.clone())
            .build()
            .unwrap();
        let full = reference.call(search("t", 2, 30)).unwrap();
        let full = full.search().unwrap();

        let service = MayaService::builder().target("t", spec).build().unwrap();
        let handle = service.submit(search("t", 2, 30)).unwrap();
        let mut progress = handle.progress();
        let first = progress.next().expect("at least one wave before cancel");
        handle.cancel();
        assert!(service.engine("t").is_ok());
        let outcome = handle.wait_outcome().unwrap();
        let JobOutcome::Cancelled(Some(resp)) = outcome else {
            panic!("expected Cancelled with a prefix response, got {outcome:?}");
        };
        let partial = resp.search().unwrap();
        assert!(partial.trials.len() >= first.trials.len());
        assert!(
            partial.trials.len() < full.trials.len(),
            "cancellation must cut the search short ({} vs {})",
            partial.trials.len(),
            full.trials.len()
        );
        assert_eq!(
            partial.trials,
            full.trials[..partial.trials.len()],
            "the cancelled search must be an exact prefix of the uncancelled run"
        );
        assert_eq!(service.stats().cancelled, 1);
        assert_eq!(service.stats().served, 0);
    }

    #[test]
    fn queued_job_past_its_deadline_is_shed_without_touching_a_worker() {
        use std::time::Duration;
        let service = MayaService::builder()
            .target("h100-2", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .queue_capacity(4)
            .build()
            .unwrap();
        // Occupy the single worker with a long search...
        let blocker = service.submit(search("h100-2", 2, 40)).unwrap();
        // ...then queue a job whose budget is already hopeless.
        let doomed = service
            .submit_with(
                predict("h100-2", 2),
                JobOptions::new().with_deadline(Duration::ZERO),
            )
            .unwrap();
        let outcome = doomed.wait_outcome().unwrap();
        assert!(
            matches!(outcome, JobOutcome::Expired(None)),
            "a queue-expired job must be shed unrun, got {outcome:?}"
        );
        blocker.cancel();
        let _ = blocker.wait_outcome();
        let stats = service.stats();
        assert_eq!(stats.expired, 1, "telemetry must count the shed job");
    }

    #[test]
    fn deadline_mid_search_expires_at_a_wave_boundary_with_a_prefix() {
        use std::time::Duration;
        let service = MayaService::builder()
            .target("h100-2", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .build()
            .unwrap();
        // Warm the engine build (but not the memo for the search's own
        // shapes) so pickup happens well inside the budget, then hand
        // the cold search a budget only the first wave or two can meet:
        // the deadline fires at a wave boundary, never mid-trial.
        service.call(predict("h100-2", 2)).unwrap();
        let handle = service
            .submit_with(
                search("h100-2", 2, 5_000),
                JobOptions::new().with_deadline(Duration::from_millis(5)),
            )
            .unwrap();
        let outcome = handle.wait_outcome().unwrap();
        let JobOutcome::Expired(resp) = outcome else {
            panic!("a 5ms budget cannot cover a cold 5000-trial search: {outcome:?}");
        };
        // On a loaded machine the 5ms can elapse before a worker even
        // picks the job up — queue-shed (`None`) is then the correct
        // verdict, just not the path under test here. Only a pickup
        // inside the budget must produce the mid-run prefix.
        if let Some(resp) = resp {
            let partial = resp.search().unwrap();
            assert!(
                !partial.trials.is_empty() && partial.trials.len() < 5_000,
                "expected a partial prefix, got {} trials",
                partial.trials.len()
            );
        }
        assert_eq!(service.stats().expired, 1);
    }

    /// Runs the blocker search until its first progress event proves a
    /// worker picked it up (so later submissions really queue).
    fn occupy_worker(service: &MayaService, target: &str) -> JobHandle {
        let blocker = service.submit(search(target, 2, 4_000)).unwrap();
        let _ = blocker.progress().next().expect("blocker running");
        blocker
    }

    /// A predict whose job shape no other submission in these tests
    /// uses (distinct `global_batch`): over a single worker, exactly
    /// the *first-executed* of several identical such requests pays
    /// the engine's memo misses — a race-free way to observe dispatch
    /// order through telemetry.
    fn cold_predict(target: &str) -> Request {
        let mut j = job(2);
        j.global_batch = 32;
        Request::Predict {
            target: target.into(),
            jobs: vec![j],
        }
    }

    #[test]
    fn high_priority_overtakes_queued_batch_jobs() {
        // An effectively infinite starvation guard: this test is about
        // class order alone, and a scheduling stall on a loaded
        // machine must not age the earlier-admitted Batch jobs into
        // the High class (aging has its own test below).
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .starvation_guard(std::time::Duration::from_secs(3600))
            .build()
            .unwrap();
        let blocker = occupy_worker(&service, "t");
        let batch: Vec<JobHandle> = (0..3)
            .map(|_| {
                service
                    .submit_with(
                        cold_predict("t"),
                        JobOptions::new().with_priority(Priority::Batch),
                    )
                    .unwrap()
            })
            .collect();
        let high = service
            .submit_with(
                cold_predict("t"),
                JobOptions::new().with_priority(Priority::High),
            )
            .unwrap();
        blocker.cancel();
        let _ = blocker.wait_outcome();
        // All four requests are the same previously-unseen shape, so
        // whichever executed first paid the cold misses. It must be
        // the High job, though it was submitted last.
        let high_delta = high.wait().unwrap().telemetry.cache_delta;
        assert!(
            high_delta.misses > 0,
            "the High job must execute before every queued Batch job \
             (it saw a warm cache instead: {high_delta:?})"
        );
        for h in batch {
            let delta = h.wait().unwrap().telemetry.cache_delta;
            assert_eq!(delta.misses, 0, "Batch ran after High: {delta:?}");
        }
    }

    #[test]
    fn over_quota_tenant_is_shed_while_other_tenants_proceed() {
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .queue_capacity(16)
            .tenant_max_queued(2)
            .build()
            .unwrap();
        let blocker = occupy_worker(&service, "t");
        let burst = |p: Priority| JobOptions::new().with_priority(p).with_tenant("burst");
        let b1 = service
            .submit_with(predict("t", 2), burst(Priority::Batch))
            .unwrap();
        let b2 = service
            .submit_with(predict("t", 2), burst(Priority::Batch))
            .unwrap();
        // Third queued job for the same tenant: shed immediately, by
        // both submit flavors — and even at High priority (quota is
        // about fairness, not urgency).
        for attempt in [
            service.submit_with(predict("t", 2), burst(Priority::High)),
            service.try_submit_with(predict("t", 2), burst(Priority::Batch)),
        ] {
            match attempt {
                Err(ServeError::QuotaExceeded { tenant }) => assert_eq!(tenant, "burst"),
                other => panic!("expected QuotaExceeded, got {:?}", other.map(|h| h.id())),
            }
        }
        // The quiet tenant is untouched by the noisy one's quota.
        let quiet = service
            .submit_with(predict("t", 2), JobOptions::new().with_tenant("quiet"))
            .unwrap();
        blocker.cancel();
        let _ = blocker.wait_outcome();
        quiet.wait().unwrap();
        b1.wait().unwrap();
        b2.wait().unwrap();
        let stats = service.stats();
        assert_eq!(stats.quota_shed, 2);
        let burst_stats = stats.tenant("burst").expect("burst tenant tracked");
        assert_eq!(burst_stats.quota_shed, 2);
        assert_eq!(burst_stats.admitted, 2);
        assert_eq!(burst_stats.served, 2);
        assert_eq!(burst_stats.queued, 0);
        assert_eq!(burst_stats.in_flight, 0);
        let quiet_stats = stats.tenant("quiet").expect("quiet tenant tracked");
        assert_eq!(quiet_stats.served, 1);
        assert_eq!(quiet_stats.quota_shed, 0);
    }

    #[test]
    fn tenant_queue_wait_percentiles_are_reported() {
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .build()
            .unwrap();
        // Hold the only worker so the tenant's jobs accrue real queue
        // wait before dispatch.
        let blocker = occupy_worker(&service, "t");
        let opts = || JobOptions::new().with_tenant("acme");
        let handles: Vec<JobHandle> = (0..4)
            .map(|_| service.submit_with(predict("t", 2), opts()).unwrap())
            .collect();
        blocker.cancel();
        let _ = blocker.wait_outcome();
        for h in handles {
            h.wait().unwrap();
        }
        let stats = service.stats();
        let acme = stats.tenant("acme").expect("acme tenant tracked");
        // One wait sample per queue departure: all four dispatches.
        assert_eq!(acme.wait_samples, 4);
        assert!(
            acme.queue_wait_p50 <= acme.queue_wait_p99,
            "p50 {:?} must not exceed p99 {:?}",
            acme.queue_wait_p50,
            acme.queue_wait_p99
        );
        assert!(
            acme.queue_wait_p99 > std::time::Duration::ZERO,
            "jobs queued behind a blocked worker must show nonzero wait"
        );
    }

    #[test]
    fn starved_batch_job_ages_into_service() {
        use std::time::Duration;
        // Returns the Batch job's cache-delta misses: > 0 means it
        // executed before the High flood (first-executed of identical
        // cold shapes pays the misses), 0 means it was served after.
        let run = |guard: Duration, wait: Duration| -> u64 {
            let service = MayaService::builder()
                .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
                .workers(1)
                .starvation_guard(guard)
                .build()
                .unwrap();
            let blocker = occupy_worker(&service, "t");
            let batch = service
                .submit_with(
                    cold_predict("t"),
                    JobOptions::new().with_priority(Priority::Batch),
                )
                .unwrap();
            // Let the Batch job age *before* the High flood arrives:
            // whether the blocker is still busy afterwards (aged Batch
            // outranks the Highs) or finished mid-pause (Batch was the
            // only queued job), the aged run serves it first.
            std::thread::sleep(wait);
            let highs: Vec<JobHandle> = (0..3)
                .map(|_| {
                    service
                        .submit_with(
                            cold_predict("t"),
                            JobOptions::new().with_priority(Priority::High),
                        )
                        .unwrap()
                })
                .collect();
            blocker.cancel();
            let _ = blocker.wait_outcome();
            let batch_misses = batch.wait().unwrap().telemetry.cache_delta.misses;
            for h in highs {
                h.wait().unwrap();
            }
            batch_misses
        };
        // With a tight guard, the Batch job ages up to High class
        // during the pause (2ms of queueing is enough); same class +
        // oldest admission then wins.
        assert!(
            run(Duration::from_millis(1), Duration::from_millis(25)) > 0,
            "a starved Batch job must age into service ahead of later High jobs"
        );
        // With an effectively infinite guard it yields to every High
        // job and sees the cache they warmed.
        assert_eq!(
            run(Duration::from_secs(3600), Duration::ZERO),
            0,
            "an un-aged Batch job must yield to High traffic"
        );
    }

    #[test]
    fn tenant_in_flight_cap_limits_concurrency_without_shedding() {
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(2)
            .tenant_max_in_flight(1)
            .build()
            .unwrap();
        let a_opts = || JobOptions::new().with_tenant("a");
        let a1 = service
            .submit_with(search("t", 2, 4_000), a_opts())
            .unwrap();
        let _ = a1.progress().next().expect("a1 running");
        // a2 is admitted (no quota on queueing here) but must not be
        // dispatched while a1 runs, even with a worker idle.
        let a2 = service
            .submit_with(search("t", 2, 4_000), a_opts())
            .unwrap();
        // Another tenant schedules straight past the capped one onto
        // the idle worker.
        let b = service
            .submit_with(predict("t", 2), JobOptions::new().with_tenant("b"))
            .unwrap();
        b.wait().unwrap();
        assert_eq!(a2.poll(), JobState::Queued, "in-flight cap must hold a2");
        let stats = service.stats();
        let a_stats = stats.tenant("a").unwrap();
        assert_eq!((a_stats.in_flight, a_stats.queued), (1, 1));
        // Finishing a1 releases the slot and a2 proceeds.
        a1.cancel();
        let _ = a1.wait_outcome();
        let _ = a2.progress().next().expect("a2 dispatched after a1");
        a2.cancel();
        let _ = a2.wait_outcome();
        let stats = service.stats();
        let a_stats = stats.tenant("a").unwrap();
        assert_eq!((a_stats.in_flight, a_stats.queued), (0, 0));
        assert_eq!(a_stats.cancelled, 2);
    }

    #[test]
    fn queued_deadline_fires_while_workers_sleep() {
        use std::time::{Duration, Instant};
        // workers = 2 with an in-flight cap of 1: tenant a's long
        // search holds one worker, a's second job is queued but
        // ineligible, and the *other* worker sits parked in the
        // scheduler with nothing to do. The queued job's deadline must
        // still fire on time — the scheduler wakes itself for the
        // earliest queued expiry instead of sleeping until the long
        // search ends.
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(2)
            .tenant_max_in_flight(1)
            .build()
            .unwrap();
        let a_opts = || JobOptions::new().with_tenant("a");
        let a1 = service
            .submit_with(search("t", 2, 500_000), a_opts())
            .unwrap();
        let _ = a1.progress().next().expect("a1 running");
        let t0 = Instant::now();
        let doomed = service
            .submit_with(
                predict("t", 2),
                a_opts().with_deadline(Duration::from_millis(100)),
            )
            .unwrap();
        let outcome = doomed.wait_outcome().unwrap();
        assert!(
            matches!(outcome, JobOutcome::Expired(None)),
            "expected a queue-shed expiry, got {outcome:?}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the verdict must arrive at the deadline, not when the \
             blocker ends: {:?}",
            t0.elapsed()
        );
        a1.cancel();
        let _ = a1.wait_outcome();
    }

    #[test]
    fn cancelling_a_queued_job_wakes_the_scheduler() {
        use std::time::{Duration, Instant};
        // Same parked-worker setup, but the queued job has no deadline
        // at all: only the cancel poke can wake the scheduler to
        // discard it and deliver the verdict.
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(2)
            .tenant_max_in_flight(1)
            .build()
            .unwrap();
        let a_opts = || JobOptions::new().with_tenant("a");
        let a1 = service
            .submit_with(search("t", 2, 500_000), a_opts())
            .unwrap();
        let _ = a1.progress().next().expect("a1 running");
        let stuck = service.submit_with(predict("t", 2), a_opts()).unwrap();
        let t0 = Instant::now();
        stuck.cancel();
        let outcome = stuck.wait_outcome().unwrap();
        assert!(
            matches!(outcome, JobOutcome::Cancelled(None)),
            "expected a queue-discarded cancel, got {outcome:?}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the verdict must arrive at the cancel, not when the \
             blocker ends: {:?}",
            t0.elapsed()
        );
        a1.cancel();
        let _ = a1.wait_outcome();
    }

    #[test]
    fn queued_deadline_fires_even_when_every_worker_is_busy() {
        use std::time::{Duration, Instant};
        // The hard case: ONE worker, occupied by a long search — no
        // thread is parked on the queue and no further traffic
        // arrives. The sweeper must still deliver the queued job's
        // Expired verdict (and advance the counters) at its deadline,
        // not when the search ends.
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .build()
            .unwrap();
        let blocker = service.submit(search("t", 2, 500_000)).unwrap();
        let _ = blocker.progress().next().expect("blocker running");
        let t0 = Instant::now();
        let doomed = service
            .submit_with(
                predict("t", 2),
                JobOptions::new().with_deadline(Duration::from_millis(100)),
            )
            .unwrap();
        let outcome = doomed.wait_outcome().unwrap();
        assert!(
            matches!(outcome, JobOutcome::Expired(None)),
            "expected a queue-shed expiry, got {outcome:?}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the verdict must arrive at the deadline, not when the \
             blocker ends: {:?}",
            t0.elapsed()
        );
        assert_eq!(service.stats().expired, 1, "counted at the deadline");
        assert!(
            !blocker.poll().is_terminal(),
            "the blocker must still be running — nothing but the \
             sweeper could have shed the job"
        );
        blocker.cancel();
        let _ = blocker.wait_outcome();
    }

    #[test]
    fn cancelling_a_queued_job_works_with_every_worker_busy() {
        use std::time::{Duration, Instant};
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .build()
            .unwrap();
        let blocker = service.submit(search("t", 2, 500_000)).unwrap();
        let _ = blocker.progress().next().expect("blocker running");
        let stuck = service.submit(predict("t", 2)).unwrap();
        let t0 = Instant::now();
        stuck.cancel();
        let outcome = stuck.wait_outcome().unwrap();
        assert!(
            matches!(outcome, JobOutcome::Cancelled(None)),
            "expected a queue-discarded cancel, got {outcome:?}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the verdict must arrive at the cancel, not when the \
             blocker ends: {:?}",
            t0.elapsed()
        );
        assert!(!blocker.poll().is_terminal(), "blocker still running");
        blocker.cancel();
        let _ = blocker.wait_outcome();
    }

    #[test]
    fn dead_queued_jobs_release_their_slots_without_a_worker() {
        use std::time::Duration;
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .queue_capacity(2)
            .build()
            .unwrap();
        let blocker = occupy_worker(&service, "t");
        // Fill the whole queue with jobs whose budget is already gone.
        let doomed: Vec<JobHandle> = (0..2)
            .map(|_| {
                service
                    .submit_with(
                        predict("t", 2),
                        JobOptions::new().with_deadline(Duration::ZERO),
                    )
                    .unwrap()
            })
            .collect();
        // The old FIFO queue would shed this as Overloaded: the dead
        // jobs held their slots until the (busy) worker dequeued them.
        // The QoS queue purges them at this push and admits the job.
        let live = service
            .try_submit(predict("t", 2))
            .expect("dead entries must not hold queue slots");
        // Verdicts and counters arrived without any worker dequeue —
        // the single worker is still busy with the blocker.
        for d in doomed {
            assert!(matches!(
                d.wait_outcome().unwrap(),
                JobOutcome::Expired(None)
            ));
        }
        assert_eq!(service.stats().expired, 2, "expiry counted immediately");
        assert_eq!(service.stats().served, 0, "nothing has executed yet");
        blocker.cancel();
        let _ = blocker.wait_outcome();
        live.wait().unwrap();
    }

    #[test]
    fn undrained_progress_coalesces_past_the_high_water_mark() {
        use std::time::Duration;
        let service = MayaService::builder()
            .target("t", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .progress_high_water(1)
            .build()
            .unwrap();
        let handle = service.submit(search("t", 2, 30)).unwrap();
        // Deliberately do not drain progress while the search runs.
        while !handle.poll().is_terminal() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let events: Vec<SearchProgress> = handle.progress().collect();
        let outcome = handle.wait_outcome().unwrap();
        let JobOutcome::Done(resp) = outcome else {
            panic!("expected Done, got {outcome:?}");
        };
        let result = resp.search().unwrap();
        assert_eq!(
            events.len(),
            1,
            "an undrained stream is bounded by the high-water mark"
        );
        let streamed: Vec<_> = events.iter().flat_map(|e| e.trials.clone()).collect();
        assert_eq!(
            streamed, result.trials,
            "coalescing must preserve the concatenation invariant"
        );
        assert_eq!(events.last().unwrap().committed, result.trials.len());
        assert!(
            service.stats().progress_coalesced >= 1,
            "merges must surface in telemetry: {:?}",
            service.stats().progress_coalesced
        );
    }

    #[test]
    fn qos_options_leave_results_byte_identical_to_the_plain_service() {
        // A single tenant submitting through the QoS machinery gets
        // byte-for-byte the answers of an unconfigured service: the
        // scheduler reorders and sheds, it never changes results.
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 2));
        let plain = MayaService::builder()
            .target("t", spec.clone())
            .build()
            .unwrap();
        let qos = MayaService::builder()
            .target("t", spec)
            .tenant_max_queued(8)
            .tenant_max_in_flight(2)
            .starvation_guard(std::time::Duration::from_millis(50))
            .build()
            .unwrap();
        let want = plain.call(search("t", 2, 30)).unwrap();
        let got = qos
            .submit_with(
                search("t", 2, 30),
                JobOptions::new()
                    .with_priority(Priority::Batch)
                    .with_tenant("solo"),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            serde::to_string(&got.search().unwrap().trials),
            serde::to_string(&want.search().unwrap().trials),
            "QoS scheduling must not change search results"
        );
        assert_eq!(
            got.search().unwrap().best.map(|(c, _)| c),
            want.search().unwrap().best.map(|(c, _)| c)
        );
    }

    #[test]
    fn job_states_progress_through_the_machine() {
        let service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        let handle = service.submit(predict("h100-1", 1)).unwrap();
        let control = handle.control();
        assert_eq!(handle.id(), control.id());
        let resp = handle.wait().unwrap();
        assert!(resp.predictions().unwrap()[0].is_ok());
        assert_eq!(control.poll(), JobState::Done);
        assert!(control.poll().is_terminal());
    }

    #[test]
    fn wait_shim_reports_cancellation_as_a_typed_error() {
        let service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .workers(1)
            .build()
            .unwrap();
        let blocker = service.submit(search("h100-1", 1, 40)).unwrap();
        let queued = service.submit(predict("h100-1", 1)).unwrap();
        queued.cancel();
        blocker.cancel();
        let err = queued.wait().expect_err("cancelled");
        assert!(matches!(err, ServeError::Cancelled), "{err}");
    }

    #[test]
    fn memo_ttl_ages_service_caches_and_reports_evictions() {
        use std::time::Duration;
        let service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .memo_ttl(Duration::from_millis(30))
            .build()
            .unwrap();
        let first = service.call(predict("h100-1", 1)).unwrap();
        assert!(first.telemetry.cache_delta.misses > 0);
        std::thread::sleep(Duration::from_millis(60));
        let second = service.call(predict("h100-1", 1)).unwrap();
        assert!(
            second.telemetry.cache_delta.misses > 0,
            "aged-out entries must re-derive"
        );
        assert!(
            second.telemetry.cache_delta.evictions > 0,
            "TTL expiries must surface as evictions: {:?}",
            second.telemetry.cache_delta
        );
        // Purity: answers unchanged by the aging.
        assert_eq!(
            first.predictions().unwrap()[0]
                .as_ref()
                .unwrap()
                .iteration_time(),
            second.predictions().unwrap()[0]
                .as_ref()
                .unwrap()
                .iteration_time()
        );
    }

    #[test]
    fn telemetry_reports_queue_wait_and_stage_timings() {
        let service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        let resp = service.call(predict("h100-1", 1)).unwrap();
        let t = &resp.telemetry;
        assert!(t.service_time >= t.stages.total() - t.stages.emulation);
        assert!(t.stages.simulation > std::time::Duration::ZERO);
        assert!(t.cache.hits + t.cache.misses > 0);
        assert_eq!(service.stats().served, 1);
    }
}
