//! Maya-Serve: one coherent front door for many clients and many
//! clusters.
//!
//! The rest of the workspace turns a single `(cluster, estimator)` pair
//! into predictions; this crate turns that into a *service*. Clients
//! submit typed [`Request`]s — [`Request::Predict`],
//! [`Request::Search`], [`Request::Measure`] — against **named cluster
//! targets**, and get back a uniform [`Response`] carrying the result
//! plus [`Telemetry`] (queue wait, engine cache counters, stage
//! timings).
//!
//! Internally:
//!
//! - an [`EngineRegistry`] lazily builds and multiplexes **one
//!   [`maya::PredictionEngine`] per distinct [`maya::EmulationSpec`],
//!   one estimator + memo cache per distinct cluster** — concurrent
//!   clients targeting the same cluster share a single estimator memo
//!   (even when their pipeline knobs differ), so one tenant's trials
//!   warm every tenant's cache, and the expensive estimator build runs
//!   once per cluster;
//! - a **bounded admission queue** fans requests over one shared pool
//!   of worker threads (instead of a pool per engine): [`MayaService::submit`]
//!   blocks when the queue is full, [`MayaService::try_submit`] sheds
//!   load with [`ServeError::Overloaded`];
//! - optional **memo snapshots** (`CachingEstimator::snapshot` /
//!   `restore` under the hood) warm-start every target from
//!   `<dir>/<target>.memo` and persist what the process learned —
//!   a restarted service answers a repeated workload with zero
//!   estimator-cache misses.
//!
//! Determinism carries through from the engine: a response is
//! byte-identical to driving the [`maya::PredictionEngine`] directly.
//!
//! ```
//! use maya::EmulationSpec;
//! use maya_hw::ClusterSpec;
//! use maya_serve::{MayaService, Request};
//! use maya_torchlet::TrainingJob;
//!
//! let service = MayaService::builder()
//!     .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
//!     .build()
//!     .unwrap();
//! let response = service
//!     .call(Request::Predict {
//!         target: "h100-1".into(),
//!         jobs: vec![TrainingJob::smoke()],
//!     })
//!     .unwrap();
//! let predictions = response.predictions().unwrap();
//! assert!(predictions[0].as_ref().unwrap().report().is_some());
//! ```

pub mod error;
pub mod registry;
pub mod request;
pub mod service;

pub use error::ServeError;
pub use registry::EngineRegistry;
pub use request::{MeasureOutcome, Payload, Request, Response, Telemetry};
pub use service::{MayaService, ResponseHandle, ServiceBuilder, ServiceStats};

#[cfg(test)]
mod tests {
    use super::*;
    use maya::EmulationSpec;
    use maya_hw::ClusterSpec;
    use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
    use maya_trace::Dtype;

    fn job(world: u32) -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel: ParallelConfig::default(),
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 8 * world,
            world,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        }
    }

    fn predict(target: &str, world: u32) -> Request {
        Request::Predict {
            target: target.into(),
            jobs: vec![job(world)],
        }
    }

    #[test]
    fn equal_spec_targets_share_one_cache() {
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 2));
        let service = MayaService::builder()
            .target("tenant-a", spec)
            .target("tenant-b", spec)
            .workers(2)
            .build()
            .unwrap();

        let first = service.call(predict("tenant-a", 2)).unwrap();
        assert!(first.telemetry.cache_delta.misses > 0, "cold cache misses");
        let after_first = service.cache_stats("tenant-a").unwrap();

        // The other tenant's identical workload is answered entirely
        // from the shared memo: not one new miss.
        let second = service.call(predict("tenant-b", 2)).unwrap();
        assert_eq!(second.telemetry.cache_delta.misses, 0, "shared cache");
        assert!(second.telemetry.cache_delta.hits > 0);
        assert_eq!(
            service.cache_stats("tenant-b").unwrap().misses,
            after_first.misses,
            "tenant-b sees tenant-a's cache"
        );
        assert_eq!(service.stats().engines_built, 1);
    }

    #[test]
    fn same_cluster_knob_variants_share_the_memo_but_not_the_engine() {
        let base = EmulationSpec::new(ClusterSpec::h100(1, 2));
        let service = MayaService::builder()
            .target("plain", base)
            .target("no-dedup", base.with_dedup(false))
            .build()
            .unwrap();
        let a = service.call(predict("plain", 2)).unwrap();
        let b = service.call(predict("no-dedup", 2)).unwrap();
        assert!(a.telemetry.cache_delta.misses > 0);
        assert_eq!(
            b.telemetry.cache_delta.misses, 0,
            "same cluster: pipeline knobs must not fragment the memo"
        );
        assert_eq!(service.stats().engines_built, 2, "but engines differ");
    }

    #[test]
    fn distinct_cluster_targets_do_not_share() {
        let service = MayaService::builder()
            .target("h100", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .target("a40", EmulationSpec::new(ClusterSpec::a40(1, 2)))
            .build()
            .unwrap();
        let a = service.call(predict("h100", 2)).unwrap();
        let b = service.call(predict("a40", 2)).unwrap();
        assert!(a.telemetry.cache_delta.misses > 0);
        assert!(
            b.telemetry.cache_delta.misses > 0,
            "different clusters must never share answers"
        );
        assert_eq!(service.stats().engines_built, 2);
    }

    #[test]
    fn response_matches_direct_engine_call() {
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 4));
        let service = MayaService::builder()
            .target("h100-4", spec)
            .build()
            .unwrap();
        let resp = service
            .call(Request::Predict {
                target: "h100-4".into(),
                jobs: vec![job(4)],
            })
            .unwrap();
        let via_service = resp.predictions().unwrap()[0].as_ref().unwrap();

        let direct_engine = maya::MayaBuilder::new(ClusterSpec::h100(1, 4)).build_engine();
        let direct = direct_engine.predict_job(&job(4)).unwrap();
        assert_eq!(via_service.iteration_time(), direct.iteration_time());
        assert_eq!(via_service.workers_simulated, direct.workers_simulated);
        assert_eq!(via_service.trace_events, direct.trace_events);
        assert_eq!(resp.kind, "predict");
        assert_eq!(resp.target, "h100-4");
    }

    #[test]
    fn snapshot_round_trip_warm_starts_a_second_service() {
        let dir = std::env::temp_dir().join(format!("maya-serve-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 2));

        let first = MayaService::builder()
            .target("h100-2", spec)
            .snapshot_dir(&dir)
            .build()
            .unwrap();
        first.call(predict("h100-2", 2)).unwrap();
        assert_eq!(first.persist_snapshots().unwrap(), 1);
        drop(first);

        let second = MayaService::builder()
            .target("h100-2", spec)
            .snapshot_dir(&dir)
            .build()
            .unwrap();
        let resp = second.call(predict("h100-2", 2)).unwrap();
        assert_eq!(
            resp.telemetry.cache.misses, 0,
            "restored service must answer the repeated workload from the snapshot"
        );
        assert!(resp.telemetry.cache.hits > 0);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fixed_custom_estimator_cannot_span_clusters() {
        use maya::EstimatorChoice;
        use maya_estimator::OracleEstimator;
        use std::sync::Arc;

        let h100 = ClusterSpec::h100(1, 2);
        let fixed = EstimatorChoice::Custom(Arc::new(OracleEstimator::new(&h100)));

        // One cluster (even via several targets): fine.
        assert!(MayaService::builder()
            .target("a", EmulationSpec::new(h100))
            .target("b", EmulationSpec::new(h100).with_dedup(false))
            .estimator(fixed.clone())
            .build()
            .is_ok());

        // Two distinct clusters: the fixed instance would silently
        // serve H100 timings for the A40 — rejected at build.
        let err = MayaService::builder()
            .target("h100", EmulationSpec::new(h100))
            .target("a40", EmulationSpec::new(ClusterSpec::a40(1, 2)))
            .estimator(fixed)
            .build()
            .err();
        assert!(
            matches!(err, Some(ServeError::CustomEstimatorSpansClusters)),
            "{err:?}"
        );

        // The factory form is the multi-cluster-safe escape hatch.
        let factory = EstimatorChoice::Factory {
            label: "oracle-per-cluster".into(),
            make: Arc::new(|cluster| Arc::new(OracleEstimator::new(cluster))),
        };
        let service = MayaService::builder()
            .target("h100", EmulationSpec::new(h100))
            .target("a40", EmulationSpec::new(ClusterSpec::a40(1, 2)))
            .estimator(factory)
            .build()
            .unwrap();
        assert!(service.call(predict("a40", 2)).is_ok());
    }

    #[test]
    fn unknown_target_rejected_at_submission() {
        let service = MayaService::builder()
            .target("known", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        let err = service.submit(predict("unknown", 1)).err().unwrap();
        assert!(matches!(err, ServeError::UnknownTarget(_)), "{err}");
    }

    #[test]
    fn duplicate_and_empty_target_sets_rejected() {
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 1));
        assert!(matches!(
            MayaService::builder().build().err(),
            Some(ServeError::NoTargets)
        ));
        assert!(matches!(
            MayaService::builder()
                .target("x", spec)
                .target("x", spec)
                .build()
                .err(),
            Some(ServeError::DuplicateTarget(_))
        ));
    }

    #[test]
    fn bounded_queue_sheds_load_and_still_answers_admitted_requests() {
        let service = MayaService::builder()
            .target("h100-2", EmulationSpec::new(ClusterSpec::h100(1, 2)))
            .workers(1)
            .queue_capacity(1)
            .build()
            .unwrap();
        // Flood far faster than one worker can drain a 1-slot queue:
        // predictions take milliseconds, try_submit takes microseconds.
        let mut handles = Vec::new();
        let mut shed = 0;
        for _ in 0..64 {
            match service.try_submit(predict("h100-2", 2)) {
                Ok(h) => handles.push(h),
                Err(ServeError::Overloaded) => shed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            shed > 0,
            "a 1-slot queue must shed some of 64 instant submits"
        );
        assert!(!handles.is_empty(), "admission accepted some requests");
        for h in handles {
            let resp = h.wait().unwrap();
            assert!(resp.predictions().unwrap()[0].is_ok());
        }
    }

    #[test]
    fn shutdown_stops_new_submissions() {
        let mut service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        service.shutdown();
        assert!(matches!(
            service.submit(predict("h100-1", 1)).err(),
            Some(ServeError::Stopped)
        ));
    }

    #[test]
    fn telemetry_reports_queue_wait_and_stage_timings() {
        let service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        let resp = service.call(predict("h100-1", 1)).unwrap();
        let t = &resp.telemetry;
        assert!(t.service_time >= t.stages.total() - t.stages.emulation);
        assert!(t.stages.simulation > std::time::Duration::ZERO);
        assert!(t.cache.hits + t.cache.misses > 0);
        assert_eq!(service.stats().served, 1);
    }
}
