//! The QoS admission queue: priority classes, EDF within a class, a
//! starvation guard, and per-tenant quotas.
//!
//! The queue replaces the original FIFO `mpsc` channel with a
//! mutex+condvar scheduler. Dispatch order is decided *at pop time*
//! (ordering depends on the clock, so a static heap would go stale):
//!
//! 1. **class** — [`crate::Priority::High`] before `Normal` before `Batch`,
//!    where a job's class is *promoted* one level for every
//!    `starvation_guard` interval it has waited, so `Batch` work ages
//!    into service instead of starving under a `High` flood;
//! 2. **remaining deadline budget** (earliest-deadline-first) within a
//!    class; jobs without a deadline sort last;
//! 3. **admission order** as the final tie-break.
//!
//! Dead entries — jobs whose deadline elapsed or that were cancelled
//! while queued — are purged at every scheduling point (push *and*
//! pop): their verdicts are delivered immediately, their counters
//! advance immediately, and their slots are released immediately, so a
//! full-looking queue of corpses can no longer shed live traffic. (The
//! old queue only discovered dead jobs when a worker dequeued them.)
//!
//! Named tenants are quota-checked: at admission a tenant already
//! holding `tenant_max_queued` slots is shed with
//! [`ServeError::QuotaExceeded`], and at dispatch a tenant running
//! `tenant_max_in_flight` jobs is passed over (its entries stay
//! queued) so one tenant's burst cannot monopolize the worker pool.
//! Anonymous jobs (no tenant) are exempt from quotas.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use maya_obs::{Counter, Gauge, Histogram, HistogramSnapshot};

use crate::error::ServeError;
use crate::job::{JobOutcome, JobState, QueuedJob};

/// Static queue configuration (from the `ServiceBuilder`).
pub(crate) struct QueueConfig {
    /// Max queued entries (in-flight jobs do not count).
    pub(crate) capacity: usize,
    /// Age interval after which a waiting job is promoted one priority
    /// class (see module docs).
    pub(crate) starvation_guard: Duration,
    /// Per-tenant cap on queued entries (`None` = unlimited).
    pub(crate) tenant_max_queued: Option<usize>,
    /// Per-tenant cap on concurrently executing jobs (`None` =
    /// unlimited).
    pub(crate) tenant_max_in_flight: Option<usize>,
}

/// Point-in-time counters for one named tenant.
///
/// Accounts are kept for every tenant with work queued or in flight,
/// plus up to ~1024 recently seen idle tenants; beyond that, idle
/// tenants' historical counters are evicted (the tenant name is
/// client-controlled input and must not grow server state without
/// bound).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant name ([`crate::JobOptions::tenant`]).
    pub tenant: String,
    /// Entries currently queued.
    pub queued: usize,
    /// Jobs currently executing on workers.
    pub in_flight: usize,
    /// Submissions admitted into the queue (cumulative).
    pub admitted: u64,
    /// Jobs fully served (cumulative).
    pub served: u64,
    /// Submissions shed with [`ServeError::QuotaExceeded`]
    /// (cumulative).
    pub quota_shed: u64,
    /// Jobs that ended [`JobState::Expired`] (cumulative).
    pub expired: u64,
    /// Jobs that ended [`JobState::Cancelled`] (cumulative).
    pub cancelled: u64,
    /// Queue-wait samples recorded so far (cumulative; one per queue
    /// departure — dispatch to a worker or shed while queued). The
    /// percentiles below summarize *all* of them: waits land in a
    /// log-bucketed [`maya_obs::Histogram`] (fixed memory, ~6%
    /// resolution), so the tail is no longer truncated to a sample
    /// window.
    pub wait_samples: u64,
    /// Median queue wait (histogram nearest-rank, microsecond floor).
    pub queue_wait_p50: Duration,
    /// 99th-percentile queue wait (histogram nearest-rank,
    /// microsecond floor).
    pub queue_wait_p99: Duration,
}

#[derive(Default)]
struct TenantAccount {
    queued: usize,
    in_flight: usize,
    admitted: u64,
    served: u64,
    quota_shed: u64,
    expired: u64,
    cancelled: u64,
    /// Queue waits, microseconds. Log-bucketed: fixed memory per
    /// tenant, no sample-window truncation.
    waits: Histogram,
    /// Service times of this tenant's completed jobs, microseconds.
    service: Histogram,
}

struct Entry {
    seq: u64,
    job: QueuedJob,
}

#[derive(Default)]
struct QueueState {
    entries: VecDeque<Entry>,
    next_seq: u64,
    closed: bool,
    tenants: HashMap<String, TenantAccount>,
}

/// The queue's shared-registry instrumentation handles, owned by the
/// service (`ServiceObs`) and threaded in at construction. Detached
/// handles (the default) record into private cells nothing reads —
/// the queue's own behaviour never depends on them.
#[derive(Default)]
pub(crate) struct QueueObs {
    /// Live queued-entry count ("serve.queue.depth").
    pub(crate) depth: Gauge,
    /// High-water mark of the depth gauge ("serve.queue.depth_high_water").
    pub(crate) depth_high_water: Gauge,
    /// Queue waits by priority class, microseconds, indexed by
    /// [`crate::Priority::level`] ("serve.queue_wait_us.{high,normal,batch}").
    pub(crate) wait_by_class: [Histogram; 3],
    /// Jobs shed from the queue with their deadline already blown
    /// ("serve.queue.shed_expired").
    pub(crate) shed_expired: Counter,
    /// Jobs discarded from the queue after a cancel
    /// ("serve.queue.shed_cancelled").
    pub(crate) shed_cancelled: Counter,
    /// Submissions shed over a tenant quota ("serve.queue.quota_shed").
    pub(crate) quota_shed: Counter,
}

/// The scheduler (see module docs). Workers block in
/// [`AdmissionQueue::pop`]; submitters enter through
/// [`AdmissionQueue::push`].
pub(crate) struct AdmissionQueue {
    config: QueueConfig,
    state: Mutex<QueueState>,
    /// An entry became available or eligible (push, job finish, close).
    job_ready: Condvar,
    /// A queue slot freed (pop or dead-entry purge) — wakes blocked
    /// submitters.
    slot_free: Condvar,
    obs: QueueObs,
}

impl AdmissionQueue {
    pub(crate) fn new(config: QueueConfig, obs: QueueObs) -> Self {
        AdmissionQueue {
            config,
            state: Mutex::new(QueueState::default()),
            job_ready: Condvar::new(),
            slot_free: Condvar::new(),
            obs,
        }
    }

    /// Publishes the queued-entry count to the depth gauge (and its
    /// high-water mark). Called with the state lock held at every
    /// depth transition.
    fn publish_depth(&self, state: &QueueState) {
        let depth = state.entries.len() as i64;
        self.obs.depth.set(depth);
        self.obs.depth_high_water.raise(depth);
    }

    /// Records one queue departure: the wait lands in the tenant's
    /// histogram (when named) and in the job's priority-class
    /// histogram.
    fn record_wait(&self, acct: Option<&mut TenantAccount>, job: &QueuedJob) {
        let wait = job.enqueued.elapsed();
        if let Some(acct) = acct {
            acct.waits.record_duration(wait);
        }
        self.obs.wait_by_class[usize::from(job.priority.level().min(2))].record_duration(wait);
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admits one job. `block = true` waits for a slot when the queue
    /// is full (the `submit` path); `block = false` sheds with
    /// [`ServeError::Overloaded`] (the `try_submit` path). Quota
    /// violations shed immediately in both modes.
    pub(crate) fn push(&self, job: QueuedJob, block: bool) -> Result<(), ServeError> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(ServeError::Stopped);
            }
            self.purge_dead(&mut state);
            if let (Some(max), Some(tenant)) = (self.config.tenant_max_queued, job.tenant.clone()) {
                // Over-quota implies queued >= max >= 1, so the
                // account already exists — a quota shed never creates
                // one (the tenant name is client-controlled input; an
                // unadmitted stranger must not grow server state).
                if let Some(acct) = state.tenants.get_mut(&tenant) {
                    if acct.queued >= max {
                        acct.quota_shed += 1;
                        self.obs.quota_shed.inc();
                        return Err(ServeError::QuotaExceeded { tenant });
                    }
                }
            }
            if state.entries.len() < self.config.capacity {
                if let Some(tenant) = job.tenant.clone() {
                    // Accounts are bounded: admission may evict idle
                    // ones first (see prune_idle_tenants).
                    Self::prune_idle_tenants(&mut state);
                    let acct = state.tenants.entry(tenant).or_default();
                    acct.queued += 1;
                    acct.admitted += 1;
                }
                let seq = state.next_seq;
                state.next_seq += 1;
                state.entries.push_back(Entry { seq, job });
                self.publish_depth(&state);
                drop(state);
                self.job_ready.notify_all();
                return Ok(());
            }
            if !block {
                return Err(ServeError::Overloaded);
            }
            state = self.wait(&self.slot_free, state);
        }
    }

    /// Waits on `cond` until notified — or, when queued entries carry
    /// deadlines, until the earliest of them expires, so dead entries
    /// are purged (verdict delivered, slot released) on time even
    /// while every worker is parked and nothing else touches the
    /// queue.
    fn wait<'q>(
        &self,
        cond: &Condvar,
        state: MutexGuard<'q, QueueState>,
    ) -> MutexGuard<'q, QueueState> {
        match state.entries.iter().filter_map(|e| e.job.expires).min() {
            None => cond.wait(state).unwrap_or_else(|p| p.into_inner()),
            Some(at) => {
                // lint:allow(wall-clock-in-output): deadline scheduling — bounds the condvar wait, never serialized
                let until = at.saturating_duration_since(Instant::now());
                if until.is_zero() {
                    return state; // already due: let the caller purge
                }
                cond.wait_timeout(state, until)
                    .unwrap_or_else(|p| p.into_inner())
                    .0
            }
        }
    }

    /// Caps the tenant-account map: the tenant name is an arbitrary
    /// client-supplied string, so a stream of one-shot tenants must
    /// not grow server memory without bound. Accounts with work still
    /// queued or in flight are always kept (there can only be
    /// `capacity + workers` of those); past the cap, *idle* accounts
    /// are evicted — their historical counters leave
    /// [`TenantStats`] reporting, their quota state is immaterial
    /// (idle means zero queued and zero in flight).
    fn prune_idle_tenants(state: &mut QueueState) {
        const MAX_TENANT_ACCOUNTS: usize = 1024;
        if state.tenants.len() >= MAX_TENANT_ACCOUNTS {
            state
                .tenants
                .retain(|_, acct| acct.queued > 0 || acct.in_flight > 0);
        }
    }

    /// Wakes everything parked on the queue so the next loop iteration
    /// re-purges and re-selects. Called when a queued job is cancelled:
    /// cancellation only flips an atomic, which a sleeping scheduler
    /// would otherwise not observe until an unrelated push/pop/finish.
    /// The sweeper ([`AdmissionQueue::sweep`]) is always parked here,
    /// so the notify is never lost even when every worker is busy
    /// executing.
    pub(crate) fn poke(&self) {
        self.job_ready.notify_all();
        self.slot_free.notify_all();
    }

    /// The reaper loop run by the service's sweeper thread: stays
    /// parked on the queue, waking for the earliest queued deadline
    /// (via the timed [`AdmissionQueue::wait`]) and for cancel pokes,
    /// and purging dead entries each time. Workers purge too, but only
    /// when they touch the queue — with every worker busy on long jobs
    /// and no new submissions, this thread is what delivers an
    /// expired/cancelled queued job's verdict (and advances the
    /// counters) on time. Returns when the queue is closed.
    pub(crate) fn sweep(&self) {
        let mut state = self.lock();
        loop {
            if state.closed {
                return;
            }
            self.purge_dead(&mut state);
            state = self.wait(&self.job_ready, state);
        }
    }

    /// Dequeues the most urgent eligible job, blocking while none is.
    /// `None` means the queue is closed *and* drained — the worker
    /// shutdown signal. The caller must report the job's end through
    /// [`AdmissionQueue::finished`] (that is what releases the
    /// tenant's in-flight slot).
    pub(crate) fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.lock();
        loop {
            self.purge_dead(&mut state);
            if let Some(idx) = self.select(&state) {
                let entry = state.entries.remove(idx).expect("selected index in bounds");
                let acct = entry
                    .job
                    .tenant
                    .as_deref()
                    .and_then(|t| state.tenants.get_mut(t))
                    .map(|acct| {
                        acct.queued -= 1;
                        acct.in_flight += 1;
                        acct
                    });
                self.record_wait(acct, &entry.job);
                self.publish_depth(&state);
                drop(state);
                self.slot_free.notify_all();
                return Some(entry.job);
            }
            if state.closed && state.entries.is_empty() {
                return None;
            }
            state = self.wait(&self.job_ready, state);
        }
    }

    /// Reports a popped job's terminal state: releases the tenant's
    /// in-flight slot, advances its counters, records the service
    /// time (when the job actually executed), and re-wakes workers
    /// (an entry blocked on the in-flight cap may now be eligible).
    pub(crate) fn finished(
        &self,
        tenant: Option<&str>,
        state: JobState,
        service_time: Option<Duration>,
    ) {
        let mut s = self.lock();
        if let Some(tenant) = tenant {
            if let Some(acct) = s.tenants.get_mut(tenant) {
                acct.in_flight = acct.in_flight.saturating_sub(1);
                match state {
                    JobState::Done => acct.served += 1,
                    JobState::Expired => acct.expired += 1,
                    JobState::Cancelled => acct.cancelled += 1,
                    _ => {}
                }
                if let Some(st) = service_time {
                    acct.service.record_duration(st);
                }
            }
        }
        drop(s);
        self.job_ready.notify_all();
    }

    /// Closes the queue: new pushes fail with [`ServeError::Stopped`],
    /// queued entries still drain through [`AdmissionQueue::pop`].
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.job_ready.notify_all();
        self.slot_free.notify_all();
    }

    /// Picks the most urgent entry a worker may run now: lowest
    /// (age-promoted class, remaining budget, admission seq), skipping
    /// tenants at their in-flight cap. `None` when nothing is eligible.
    fn select(&self, state: &QueueState) -> Option<usize> {
        // lint:allow(wall-clock-in-output): deadline/aging eligibility — scheduling input, never serialized
        let now = Instant::now();
        let guard = self
            .config
            .starvation_guard
            .max(Duration::from_nanos(1))
            .as_nanos();
        state
            .entries
            .iter()
            .enumerate()
            .filter(
                |(_, e)| match (self.config.tenant_max_in_flight, e.job.tenant.as_deref()) {
                    (Some(max), Some(tenant)) => state
                        .tenants
                        .get(tenant)
                        .map_or(true, |a| a.in_flight < max),
                    _ => true,
                },
            )
            .min_by_key(|(_, e)| {
                let waited = now.saturating_duration_since(e.job.enqueued).as_nanos();
                let promoted = (waited / guard).min(u128::from(u8::MAX)) as u8;
                let class = e.job.priority.level().saturating_sub(promoted);
                let slack = e
                    .job
                    .expires
                    .map_or(Duration::MAX, |d| d.saturating_duration_since(now));
                (class, slack, e.seq)
            })
            .map(|(idx, _)| idx)
    }

    /// Sheds every queued entry that is already dead — deadline
    /// elapsed or cancelled — delivering its verdict and releasing its
    /// slot *now*, not when a worker happens to dequeue it.
    fn purge_dead(&self, state: &mut QueueState) {
        // lint:allow(wall-clock-in-output): deadline expiry check — scheduling input, never serialized
        let now = Instant::now();
        let mut removed = false;
        let mut idx = 0;
        while idx < state.entries.len() {
            let job = &state.entries[idx].job;
            let verdict = if job.expires.is_some_and(|d| now >= d) {
                JobState::Expired
            } else if job.core.cancel.is_cancelled() {
                JobState::Cancelled
            } else {
                idx += 1;
                continue;
            };
            let entry = state.entries.remove(idx).expect("index in bounds");
            removed = true;
            let acct = entry
                .job
                .tenant
                .as_deref()
                .and_then(|t| state.tenants.get_mut(t))
                .map(|acct| {
                    acct.queued -= 1;
                    match verdict {
                        JobState::Expired => acct.expired += 1,
                        _ => acct.cancelled += 1,
                    }
                    acct
                });
            self.record_wait(acct, &entry.job);
            entry.job.core.finish(verdict);
            // A dropped outcome receiver just means the client lost
            // interest.
            match verdict {
                JobState::Expired => {
                    self.obs.shed_expired.inc();
                    let _ = entry.job.outcome_tx.send(JobOutcome::Expired(None));
                }
                _ => {
                    self.obs.shed_cancelled.inc();
                    let _ = entry.job.outcome_tx.send(JobOutcome::Cancelled(None));
                }
            }
        }
        if removed {
            self.publish_depth(state);
            self.slot_free.notify_all();
        }
    }

    /// Jobs shed from the queue with their deadline already blown.
    pub(crate) fn shed_expired(&self) -> u64 {
        self.obs.shed_expired.get()
    }

    /// Jobs discarded from the queue after a cancel.
    pub(crate) fn shed_cancelled(&self) -> u64 {
        self.obs.shed_cancelled.get()
    }

    /// Submissions shed over a tenant quota.
    pub(crate) fn quota_shed(&self) -> u64 {
        self.obs.quota_shed.get()
    }

    /// Per-tenant counters, sorted by tenant name.
    pub(crate) fn tenant_stats(&self) -> Vec<TenantStats> {
        let state = self.lock();
        let mut stats: Vec<TenantStats> = state
            .tenants
            .iter()
            .map(|(tenant, acct)| {
                let waits = acct.waits.snapshot();
                TenantStats {
                    tenant: tenant.clone(),
                    queued: acct.queued,
                    in_flight: acct.in_flight,
                    admitted: acct.admitted,
                    served: acct.served,
                    quota_shed: acct.quota_shed,
                    expired: acct.expired,
                    cancelled: acct.cancelled,
                    wait_samples: waits.count,
                    queue_wait_p50: Duration::from_micros(waits.quantile(0.50)),
                    queue_wait_p99: Duration::from_micros(waits.quantile(0.99)),
                }
            })
            .collect();
        stats.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        stats
    }

    /// Per-tenant `(name, queue-wait, service-time)` histogram
    /// snapshots, sorted by tenant name — injected into the service's
    /// [`maya_obs::ObsSnapshot`] under
    /// `serve.queue_wait_us.tenant.<name>` /
    /// `serve.service_time_us.tenant.<name>`.
    pub(crate) fn tenant_histograms(&self) -> Vec<(String, HistogramSnapshot, HistogramSnapshot)> {
        let state = self.lock();
        let mut out: Vec<_> = state
            .tenants
            .iter()
            .map(|(tenant, acct)| {
                (
                    tenant.clone(),
                    acct.waits.snapshot(),
                    acct.service.snapshot(),
                )
            })
            .collect();
        drop(state);
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}
