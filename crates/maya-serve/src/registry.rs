//! The engine registry: one lazily-built [`PredictionEngine`] per
//! distinct [`EmulationSpec`], one memo cache (and estimator) per
//! distinct cluster.
//!
//! [`EmulationSpec`] is `Eq + Hash` (cluster floats compare by bit
//! pattern), so it keys the engine map directly. The memo cache sits
//! one level down: estimator answers are pure functions of the query
//! key and the *cluster*, so specs that differ only in pipeline knobs
//! (dedup, selective launch, thread count) share a single
//! `CachingEstimator` — and the expensive estimator build (forest
//! training profiles the whole cluster) runs once per cluster, not
//! once per knob combination. Distinct clusters never alias: they get
//! independent estimators and memos.
//!
//! Construction is lazy and per-key concurrent: map locks are held
//! only to hand out per-key `OnceLock` cells; estimator/engine builds
//! run outside them. Two clients racing on the same new key build
//! once; clients of other keys are never blocked.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use maya::{EmulationSpec, EstimatorChoice, PredictionEngine, SimObs};
use maya_estimator::CachingEstimator;
use maya_hw::ClusterSpec;

/// Lazily builds and multiplexes engines per emulation spec, sharing
/// memo caches per cluster.
pub struct EngineRegistry {
    choice: EstimatorChoice,
    memo_capacity: Option<usize>,
    memo_ttl: Option<std::time::Duration>,
    engines: Mutex<HashMap<EmulationSpec, Arc<OnceLock<Arc<PredictionEngine>>>>>,
    caches: Mutex<HashMap<ClusterSpec, Arc<OnceLock<Arc<CachingEstimator>>>>>,
    engine_builds: AtomicUsize,
    estimator_builds: AtomicUsize,
    /// Template simulator-observability sinks. When set, every engine
    /// the registry builds gets a clone installed (the handles are
    /// shared cells, so all engines publish into the same counters).
    sim_obs: Option<SimObs>,
}

impl EngineRegistry {
    /// A registry that instantiates `choice` per distinct cluster, with
    /// unbounded memo caches.
    pub fn new(choice: EstimatorChoice) -> Self {
        EngineRegistry::with_memo_limits(choice, None, None)
    }

    /// A registry whose per-cluster memo caches are LRU-bounded to
    /// roughly `capacity` entries per query family (see
    /// [`CachingEstimator::with_capacity`]). `None` is unbounded.
    pub fn with_memo_capacity(choice: EstimatorChoice, capacity: Option<usize>) -> Self {
        EngineRegistry::with_memo_limits(choice, capacity, None)
    }

    /// A registry with both memo retention bounds: the LRU entry cap
    /// and a time-to-live (see [`CachingEstimator::with_limits`]).
    pub fn with_memo_limits(
        choice: EstimatorChoice,
        capacity: Option<usize>,
        ttl: Option<std::time::Duration>,
    ) -> Self {
        EngineRegistry {
            choice,
            memo_capacity: capacity,
            memo_ttl: ttl,
            engines: Mutex::new(HashMap::new()),
            caches: Mutex::new(HashMap::new()),
            engine_builds: AtomicUsize::new(0),
            estimator_builds: AtomicUsize::new(0),
            sim_obs: None,
        }
    }

    /// Installs simulator observability sinks on every engine this
    /// registry builds from now on (already-built engines are
    /// unaffected, which is why the service sets this before handing
    /// the registry out).
    pub fn with_sim_obs(mut self, obs: SimObs) -> Self {
        self.sim_obs = Some(obs);
        self
    }

    /// The configured estimator choice.
    pub fn estimator_choice(&self) -> &EstimatorChoice {
        &self.choice
    }

    /// The shared memo cache (wrapping the estimator) for a cluster,
    /// building both on first use.
    pub fn cache(&self, cluster: &ClusterSpec) -> Arc<CachingEstimator> {
        let cell = {
            let mut caches = self.caches.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(caches.entry(cluster.clone()).or_default())
        };
        Arc::clone(cell.get_or_init(|| {
            self.estimator_builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(CachingEstimator::with_limits(
                self.choice.build(cluster),
                self.memo_capacity,
                self.memo_ttl,
            ))
        }))
    }

    /// The engine for `spec`, building it on first use over the
    /// cluster's shared cache.
    pub fn engine(&self, spec: &EmulationSpec) -> Arc<PredictionEngine> {
        let cell = {
            let mut engines = self.engines.lock().unwrap_or_else(|p| p.into_inner());
            Arc::clone(engines.entry(spec.clone()).or_default())
        };
        Arc::clone(cell.get_or_init(|| {
            self.engine_builds.fetch_add(1, Ordering::Relaxed);
            let engine =
                PredictionEngine::with_shared_cache(spec.clone(), self.cache(&spec.cluster));
            if let Some(obs) = &self.sim_obs {
                let _ = engine.install_sim_obs(obs.clone());
            }
            Arc::new(engine)
        }))
    }

    /// The engine for `spec` if one has already been built.
    pub fn built_engine(&self, spec: &EmulationSpec) -> Option<Arc<PredictionEngine>> {
        let engines = self.engines.lock().unwrap_or_else(|p| p.into_inner());
        engines.get(spec).and_then(|c| c.get().cloned())
    }

    /// Number of engines built so far.
    pub fn engines_built(&self) -> usize {
        self.engine_builds.load(Ordering::Relaxed)
    }

    /// Number of estimators (one per distinct cluster) built so far.
    pub fn estimators_built(&self) -> usize {
        self.estimator_builds.load(Ordering::Relaxed)
    }

    /// Specs whose engines have been built.
    pub fn built_specs(&self) -> Vec<EmulationSpec> {
        let engines = self.engines.lock().unwrap_or_else(|p| p.into_inner());
        engines
            .iter()
            .filter(|(_, c)| c.get().is_some())
            .map(|(s, _)| s.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_specs_resolve_to_the_same_engine() {
        let reg = EngineRegistry::new(EstimatorChoice::Oracle);
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 2));
        let a = reg.engine(&spec);
        let b = reg.engine(&spec.with_dedup(true)); // no-op change: still equal
        assert!(Arc::ptr_eq(&a, &b), "equal specs must share one engine");
        assert_eq!(reg.engines_built(), 1);
        assert_eq!(reg.estimators_built(), 1);
    }

    #[test]
    fn same_cluster_different_knobs_share_one_memo() {
        let reg = EngineRegistry::new(EstimatorChoice::Oracle);
        let base = EmulationSpec::new(ClusterSpec::h100(1, 2));
        let a = reg.engine(&base);
        let b = reg.engine(&base.clone().with_selective_launch(true));
        let c = reg.engine(&base.clone().with_emulation_threads(4));
        assert!(!Arc::ptr_eq(&a, &b), "distinct specs, distinct engines");
        assert!(
            Arc::ptr_eq(a.cache(), b.cache()) && Arc::ptr_eq(a.cache(), c.cache()),
            "pipeline knobs must not fragment the memo"
        );
        assert_eq!(reg.engines_built(), 3);
        assert_eq!(
            reg.estimators_built(),
            1,
            "one cluster, one estimator build"
        );
    }

    #[test]
    fn distinct_clusters_get_independent_memos() {
        let reg = EngineRegistry::new(EstimatorChoice::Oracle);
        let h100 = reg.engine(&EmulationSpec::new(ClusterSpec::h100(1, 2)));
        let a40 = reg.engine(&EmulationSpec::new(ClusterSpec::a40(1, 2)));
        assert!(
            !Arc::ptr_eq(h100.cache(), a40.cache()),
            "different clusters must never share answers"
        );
        assert_eq!(reg.estimators_built(), 2);
    }

    #[test]
    fn racing_clients_build_once() {
        let reg = Arc::new(EngineRegistry::new(EstimatorChoice::Oracle));
        let spec = EmulationSpec::new(ClusterSpec::v100(1, 4));
        let engines: Vec<Arc<PredictionEngine>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let spec = spec.clone();
                    s.spawn(move || reg.engine(&spec))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(engines.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        assert_eq!(reg.engines_built(), 1, "the race must build exactly once");
        assert_eq!(reg.estimators_built(), 1);
    }

    #[test]
    fn built_engine_is_none_before_first_use() {
        let reg = EngineRegistry::new(EstimatorChoice::Oracle);
        let spec = EmulationSpec::new(ClusterSpec::h100(1, 1));
        assert!(reg.built_engine(&spec).is_none());
        reg.engine(&spec);
        assert!(reg.built_engine(&spec).is_some());
    }
}
