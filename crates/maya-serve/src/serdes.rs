//! Wire codecs for the service vocabulary, over the vendored serde's
//! compact token format.
//!
//! These are what `maya-wire` frames carry: a [`Request`] round-trips
//! exactly (a remote client's job lands on the service bit-for-bit),
//! and a [`Response`] serializes completely — target, [`Telemetry`],
//! and the payload with every prediction/search/measure result.
//!
//! Error slots are serialize-only. [`maya::MayaError`] and
//! [`ServeError`] wrap things a remote process cannot reconstruct
//! (`std::io::Error`, estimator internals), so the wire carries a
//! stable *kind code* plus the rendered message for each (the same
//! scheme as `maya::serdes::error_code`); `maya-wire` decodes them into
//! its own typed remote-error value rather than a rebuilt original.
//! The response *encoding* is nevertheless total: every variant of
//! every payload has a defined wire form.

use serde::{compact, Deserialize, Serialize};

use crate::error::ServeError;
use crate::job::{JobOptions, Priority, SearchProgress};
use crate::queue::TenantStats;
use crate::request::{MeasureOutcome, Payload, Request, Response, Telemetry};

impl Serialize for Priority {
    fn serialize(&self, w: &mut compact::Writer) {
        w.tag(match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        });
    }
}

impl<'de> Deserialize<'de> for Priority {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "high" => Priority::High,
            "normal" => Priority::Normal,
            "batch" => Priority::Batch,
            t => return Err(compact::Error::parse(t, "priority (high|normal|batch)")),
        })
    }
}

/// The protocol-v3 layout: deadline, priority, tenant. Protocol-v2
/// bodies carried only the deadline — `maya-wire` decodes those with
/// [`JobOptions`] defaults for the missing fields (see
/// `maya_wire::message::decode_submission`).
impl Serialize for JobOptions {
    fn serialize(&self, w: &mut compact::Writer) {
        self.deadline.serialize(w);
        self.priority.serialize(w);
        self.tenant.serialize(w);
    }
}

impl<'de> Deserialize<'de> for JobOptions {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(JobOptions {
            deadline: Deserialize::deserialize(r)?,
            priority: Deserialize::deserialize(r)?,
            tenant: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for SearchProgress {
    fn serialize(&self, w: &mut compact::Writer) {
        self.trials.serialize(w);
        self.committed.serialize(w);
        match &self.best {
            None => w.tag("none"),
            Some((config, outcome)) => {
                w.tag("some");
                config.serialize(w);
                outcome.serialize(w);
            }
        }
        self.cache_delta.serialize(w);
    }
}

impl<'de> Deserialize<'de> for SearchProgress {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let trials = Deserialize::deserialize(r)?;
        let committed = Deserialize::deserialize(r)?;
        let best = match r.raw_token()? {
            "none" => None,
            "some" => Some((Deserialize::deserialize(r)?, Deserialize::deserialize(r)?)),
            t => return Err(compact::Error::parse(t, "option tag (none|some)")),
        };
        Ok(SearchProgress {
            trials,
            committed,
            best,
            cache_delta: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for Request {
    fn serialize(&self, w: &mut compact::Writer) {
        match self {
            Request::Predict { target, jobs } => {
                w.tag("predict");
                target.serialize(w);
                jobs.serialize(w);
            }
            Request::Search {
                target,
                template,
                space,
                algorithm,
                budget,
                seed,
            } => {
                w.tag("search");
                target.serialize(w);
                template.serialize(w);
                space.serialize(w);
                algorithm.serialize(w);
                budget.serialize(w);
                seed.serialize(w);
            }
            Request::Measure { target, job } => {
                w.tag("measure");
                target.serialize(w);
                job.serialize(w);
            }
        }
    }
}

impl<'de> Deserialize<'de> for Request {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "predict" => Request::Predict {
                target: Deserialize::deserialize(r)?,
                jobs: Deserialize::deserialize(r)?,
            },
            "search" => Request::Search {
                target: Deserialize::deserialize(r)?,
                template: Deserialize::deserialize(r)?,
                space: Deserialize::deserialize(r)?,
                algorithm: Deserialize::deserialize(r)?,
                budget: Deserialize::deserialize(r)?,
                seed: Deserialize::deserialize(r)?,
            },
            "measure" => Request::Measure {
                target: Deserialize::deserialize(r)?,
                job: Deserialize::deserialize(r)?,
            },
            t => return Err(compact::Error::parse(t, "request kind")),
        })
    }
}

/// The canonical (wire protocol ≥ 5) layout: the six original fields
/// followed by the span tree. Protocol-v4-and-earlier peers use
/// [`write_telemetry_compat`]/[`read_telemetry_compat`] with
/// `with_spans = false`, which is exactly the pre-v5 layout.
impl Serialize for Telemetry {
    fn serialize(&self, w: &mut compact::Writer) {
        write_telemetry_compat(self, w, true);
    }
}

impl<'de> Deserialize<'de> for Telemetry {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        read_telemetry_compat(r, true)
    }
}

/// Encodes [`Telemetry`] for a peer that does (`with_spans = true`,
/// wire protocol ≥ 5) or does not (`false`, ≤ 4) understand the
/// trailing span-tree field. The `false` layout is byte-identical to
/// the pre-v5 codec.
pub fn write_telemetry_compat(t: &Telemetry, w: &mut compact::Writer, with_spans: bool) {
    t.queue_wait.serialize(w);
    t.service_time.serialize(w);
    t.worker.serialize(w);
    t.cache.serialize(w);
    t.cache_delta.serialize(w);
    t.stages.serialize(w);
    if with_spans {
        t.spans.serialize(w);
    }
}

/// Decodes [`Telemetry`] from either layout (see
/// [`write_telemetry_compat`]); a `with_spans = false` body yields
/// empty [`Telemetry::spans`].
pub fn read_telemetry_compat<'de>(
    r: &mut compact::Reader<'de>,
    with_spans: bool,
) -> Result<Telemetry, compact::Error> {
    Ok(Telemetry {
        queue_wait: Deserialize::deserialize(r)?,
        service_time: Deserialize::deserialize(r)?,
        worker: Deserialize::deserialize(r)?,
        cache: Deserialize::deserialize(r)?,
        cache_delta: Deserialize::deserialize(r)?,
        stages: Deserialize::deserialize(r)?,
        spans: if with_spans {
            Deserialize::deserialize(r)?
        } else {
            Vec::new()
        },
    })
}

/// Per-tenant QoS counters including the queue-wait percentiles, so a
/// wire telemetry extension can carry [`TenantStats`] without inventing
/// a new layout. Field order is the struct's declaration order.
impl Serialize for TenantStats {
    fn serialize(&self, w: &mut compact::Writer) {
        self.tenant.serialize(w);
        self.queued.serialize(w);
        self.in_flight.serialize(w);
        self.admitted.serialize(w);
        self.served.serialize(w);
        self.quota_shed.serialize(w);
        self.expired.serialize(w);
        self.cancelled.serialize(w);
        self.wait_samples.serialize(w);
        self.queue_wait_p50.serialize(w);
        self.queue_wait_p99.serialize(w);
    }
}

impl<'de> Deserialize<'de> for TenantStats {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(TenantStats {
            tenant: Deserialize::deserialize(r)?,
            queued: Deserialize::deserialize(r)?,
            in_flight: Deserialize::deserialize(r)?,
            admitted: Deserialize::deserialize(r)?,
            served: Deserialize::deserialize(r)?,
            quota_shed: Deserialize::deserialize(r)?,
            expired: Deserialize::deserialize(r)?,
            cancelled: Deserialize::deserialize(r)?,
            wait_samples: Deserialize::deserialize(r)?,
            queue_wait_p50: Deserialize::deserialize(r)?,
            queue_wait_p99: Deserialize::deserialize(r)?,
        })
    }
}

/// Whole-service counters with the per-tenant roll-up, for scraping a
/// deployment's state over the wire. Field order is the struct's
/// declaration order.
impl Serialize for crate::service::ServiceStats {
    fn serialize(&self, w: &mut compact::Writer) {
        self.served.serialize(w);
        self.cancelled.serialize(w);
        self.expired.serialize(w);
        self.quota_shed.serialize(w);
        self.queue_shed_expired.serialize(w);
        self.queue_shed_cancelled.serialize(w);
        self.panicked.serialize(w);
        self.progress_coalesced.serialize(w);
        self.engines_built.serialize(w);
        self.workers.serialize(w);
        self.queue_capacity.serialize(w);
        self.tenants.serialize(w);
    }
}

impl<'de> Deserialize<'de> for crate::service::ServiceStats {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(crate::service::ServiceStats {
            served: Deserialize::deserialize(r)?,
            cancelled: Deserialize::deserialize(r)?,
            expired: Deserialize::deserialize(r)?,
            quota_shed: Deserialize::deserialize(r)?,
            queue_shed_expired: Deserialize::deserialize(r)?,
            queue_shed_cancelled: Deserialize::deserialize(r)?,
            panicked: Deserialize::deserialize(r)?,
            progress_coalesced: Deserialize::deserialize(r)?,
            engines_built: Deserialize::deserialize(r)?,
            workers: Deserialize::deserialize(r)?,
            queue_capacity: Deserialize::deserialize(r)?,
            tenants: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for MeasureOutcome {
    fn serialize(&self, w: &mut compact::Writer) {
        match self {
            MeasureOutcome::Completed(m) => {
                w.tag("completed");
                m.serialize(w);
            }
            MeasureOutcome::OutOfMemory { peak_bytes } => {
                w.tag("oom");
                peak_bytes.serialize(w);
            }
        }
    }
}

impl<'de> Deserialize<'de> for MeasureOutcome {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "completed" => MeasureOutcome::Completed(Deserialize::deserialize(r)?),
            "oom" => MeasureOutcome::OutOfMemory {
                peak_bytes: Deserialize::deserialize(r)?,
            },
            t => return Err(compact::Error::parse(t, "measure outcome")),
        })
    }
}

/// Serialize-only (see module docs): the payload's error slots encode
/// as kind code + message via `maya::serdes`.
impl Serialize for Payload {
    fn serialize(&self, w: &mut compact::Writer) {
        match self {
            Payload::Predict(results) => {
                w.tag("predict");
                results.serialize(w);
            }
            Payload::Search(result) => {
                w.tag("search");
                result.as_ref().serialize(w);
            }
            Payload::Measure(outcome) => {
                w.tag("measure");
                outcome.serialize(w);
            }
        }
    }
}

/// Serialize-only: `kind` is implied by the payload tag and is not
/// written separately.
impl Serialize for Response {
    fn serialize(&self, w: &mut compact::Writer) {
        write_response_compat(self, w, true);
    }
}

/// Encodes a [`Response`] for a peer on either side of the v5 span
/// field (see [`write_telemetry_compat`]). The wire server picks the
/// layout per connection from the peer's negotiated version.
pub fn write_response_compat(resp: &Response, w: &mut compact::Writer, with_spans: bool) {
    resp.target.serialize(w);
    write_telemetry_compat(&resp.telemetry, w, with_spans);
    resp.payload.serialize(w);
}

/// Stable wire code naming a [`ServeError`] variant; the shared
/// error-code namespace with `maya::serdes::error_code` (the codes are
/// disjoint). Part of the wire format.
pub fn error_code(e: &ServeError) -> &'static str {
    match e {
        ServeError::UnknownTarget(_) => "unknown_target",
        ServeError::Overloaded => "overloaded",
        ServeError::QuotaExceeded { .. } => "quota_exceeded",
        ServeError::Stopped => "stopped",
        ServeError::DuplicateTarget(_) => "duplicate_target",
        ServeError::NoTargets => "no_targets",
        ServeError::Cancelled => "cancelled",
        ServeError::Expired => "expired",
        ServeError::CustomEstimatorSpansClusters => "custom_estimator_spans_clusters",
        ServeError::Snapshot(_) => "snapshot",
    }
}

/// Serialize-only (see module docs): a stable kind code plus the
/// rendered message.
impl Serialize for ServeError {
    fn serialize(&self, w: &mut compact::Writer) {
        w.tag(error_code(self));
        w.str_token(&self.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_search::{AlgorithmKind, ConfigSpace};
    use maya_torchlet::TrainingJob;

    fn reencodes_request(req: &Request) {
        let text = serde::to_string(req);
        let back: Request = serde::from_str(&text).expect("decode");
        assert_eq!(serde::to_string(&back), text, "re-encode mismatch");
        assert_eq!(back.target(), req.target());
        assert_eq!(back.kind(), req.kind());
    }

    #[test]
    fn requests_round_trip() {
        reencodes_request(&Request::Predict {
            target: "h100 quad/eu".into(),
            jobs: vec![TrainingJob::smoke(), TrainingJob::smoke()],
        });
        reencodes_request(&Request::Search {
            target: "a40".into(),
            template: TrainingJob::smoke(),
            space: ConfigSpace::default(),
            algorithm: AlgorithmKind::CmaEs,
            budget: 100,
            seed: 42,
        });
        reencodes_request(&Request::Measure {
            target: "t".into(),
            job: TrainingJob::smoke(),
        });
    }

    fn telemetry_fixture() -> Telemetry {
        use maya::StageTimings;
        use maya_estimator::CacheStats;
        use maya_obs::SpanNode;
        use std::time::Duration;
        Telemetry {
            queue_wait: Duration::from_micros(120),
            service_time: Duration::from_millis(7),
            worker: 3,
            cache: CacheStats {
                hits: 10,
                misses: 2,
                evictions: 1,
            },
            cache_delta: CacheStats {
                hits: 4,
                misses: 1,
                evictions: 0,
            },
            stages: StageTimings::default(),
            spans: vec![
                SpanNode::leaf("job", Duration::ZERO, Duration::from_micros(7_120)).with_child(
                    SpanNode::leaf("queued", Duration::ZERO, Duration::from_micros(120)),
                ),
            ],
        }
    }

    #[test]
    fn telemetry_round_trips() {
        let t = telemetry_fixture();
        let text = serde::to_string(&t);
        let back: Telemetry = serde::from_str(&text).unwrap();
        assert_eq!(back.cache, t.cache);
        assert_eq!(back.cache_delta, t.cache_delta);
        assert_eq!(back.queue_wait, t.queue_wait);
        assert_eq!(back.spans, t.spans);
        assert_eq!(serde::to_string(&back), text);
    }

    #[test]
    fn telemetry_compat_layout_drops_and_restores_spans() {
        let t = telemetry_fixture();
        // The v4 layout must not mention the span tree at all …
        let mut w = compact::Writer::new();
        write_telemetry_compat(&t, &mut w, false);
        let v4 = w.finish();
        assert!(!v4.contains("job"), "v4 body leaked spans: {v4}");
        // … and decoding it yields the same telemetry minus spans.
        let mut r = compact::Reader::new(&v4);
        let back = read_telemetry_compat(&mut r, false).unwrap();
        r.end().unwrap();
        assert!(back.spans.is_empty());
        assert_eq!(back.queue_wait, t.queue_wait);
        assert_eq!(back.cache, t.cache);
        // The canonical layout is exactly the compat layout with spans.
        let mut w = compact::Writer::new();
        write_telemetry_compat(&t, &mut w, true);
        assert_eq!(w.finish(), serde::to_string(&t));
    }

    #[test]
    fn job_options_round_trip_with_qos_fields() {
        use crate::job::{JobOptions, Priority};
        use std::time::Duration;
        for priority in Priority::all() {
            let opts = JobOptions::new()
                .with_deadline(Duration::from_millis(125))
                .with_priority(priority)
                .with_tenant("tenant a/ü");
            let back: JobOptions = serde::from_str(&serde::to_string(&opts)).unwrap();
            assert_eq!(back, opts);
        }
        let anon = JobOptions::new();
        let back: JobOptions = serde::from_str(&serde::to_string(&anon)).unwrap();
        assert_eq!(back, anon);
    }

    #[test]
    fn tenant_stats_round_trip() {
        use std::time::Duration;
        let stats = TenantStats {
            tenant: "tenant a/ü".into(),
            queued: 3,
            in_flight: 2,
            admitted: 101,
            served: 88,
            quota_shed: 5,
            expired: 4,
            cancelled: 2,
            wait_samples: 96,
            queue_wait_p50: Duration::from_micros(250),
            queue_wait_p99: Duration::from_millis(12),
        };
        let text = serde::to_string(&stats);
        let back: TenantStats = serde::from_str(&text).unwrap();
        assert_eq!(back, stats);
        assert_eq!(serde::to_string(&back), text);

        let empty: TenantStats =
            serde::from_str(&serde::to_string(&TenantStats::default())).unwrap();
        assert_eq!(empty, TenantStats::default());
    }

    fn service_stats_fixture() -> crate::service::ServiceStats {
        use std::time::Duration;
        crate::service::ServiceStats {
            served: 42,
            cancelled: 3,
            expired: 1,
            quota_shed: 7,
            queue_shed_expired: 1,
            queue_shed_cancelled: 2,
            panicked: 0,
            progress_coalesced: 12,
            engines_built: 2,
            workers: 4,
            queue_capacity: 64,
            tenants: vec![
                TenantStats {
                    tenant: "alpha".into(),
                    queued: 1,
                    in_flight: 1,
                    admitted: 30,
                    served: 28,
                    quota_shed: 0,
                    expired: 0,
                    cancelled: 1,
                    wait_samples: 30,
                    queue_wait_p50: Duration::from_micros(150),
                    queue_wait_p99: Duration::from_micros(9_500),
                },
                TenantStats {
                    tenant: "beta \"quoted\"".into(),
                    queued: 0,
                    in_flight: 0,
                    admitted: 12,
                    served: 12,
                    quota_shed: 7,
                    expired: 1,
                    cancelled: 2,
                    wait_samples: 12,
                    queue_wait_p50: Duration::from_micros(90),
                    queue_wait_p99: Duration::from_millis(2),
                },
            ],
        }
    }

    #[test]
    fn service_stats_round_trip() {
        let stats = service_stats_fixture();
        let text = serde::to_string(&stats);
        let back: crate::service::ServiceStats = serde::from_str(&text).unwrap();
        assert_eq!(back, stats);
        assert_eq!(serde::to_string(&back), text);

        let empty = crate::service::ServiceStats::default();
        let back: crate::service::ServiceStats =
            serde::from_str(&serde::to_string(&empty)).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn service_stats_json_carries_tenant_percentiles() {
        let stats = service_stats_fixture();
        let json = stats.to_json();
        // Structurally balanced (JSON-syntax smoke test: the only
        // braces/brackets outside strings are the ones we emit).
        let mut depth = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            match c {
                _ if esc => esc = false,
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced in {json}");
        }
        assert_eq!(depth, 0, "unbalanced in {json}");
        // The percentile fields survive, in microseconds.
        assert!(json.contains("\"queue_wait_p50_us\":150"), "{json}");
        assert!(json.contains("\"queue_wait_p99_us\":9500"), "{json}");
        assert!(json.contains("\"queue_wait_p99_us\":2000"), "{json}");
        assert!(json.contains("\"tenant\":\"alpha\""), "{json}");
        // The quoted tenant name is escaped.
        assert!(json.contains("beta \\\"quoted\\\""), "{json}");
        assert!(json.contains("\"served\":42"), "{json}");
    }

    /// Every [`crate::service::ServiceStats`] counter (and every
    /// [`TenantStats`] counter) must appear in the JSON rendering —
    /// `to_json` destructures both structs exhaustively, so adding a
    /// field without emitting it breaks the compile, and this test
    /// pins the emitted key names.
    #[test]
    fn service_stats_json_emits_every_field() {
        let json = service_stats_fixture().to_json();
        for key in [
            "\"served\":",
            "\"cancelled\":",
            "\"expired\":",
            "\"quota_shed\":7",
            "\"queue_shed_expired\":1",
            "\"queue_shed_cancelled\":2",
            "\"panicked\":",
            "\"progress_coalesced\":",
            "\"engines_built\":",
            "\"workers\":",
            "\"queue_capacity\":",
            "\"tenants\":[",
            "\"tenant\":",
            "\"queued\":",
            "\"in_flight\":",
            "\"admitted\":",
            "\"wait_samples\":",
            "\"queue_wait_p50_us\":",
            "\"queue_wait_p99_us\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn serve_error_codes_are_stable() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::UnknownTarget("x".into()), "unknown_target"),
            (ServeError::Overloaded, "overloaded"),
            (
                ServeError::QuotaExceeded {
                    tenant: "burst".into(),
                },
                "quota_exceeded",
            ),
            (ServeError::Stopped, "stopped"),
            (ServeError::DuplicateTarget("x".into()), "duplicate_target"),
            (ServeError::NoTargets, "no_targets"),
            (
                ServeError::CustomEstimatorSpansClusters,
                "custom_estimator_spans_clusters",
            ),
        ];
        for (e, code) in cases {
            assert_eq!(error_code(&e), code);
            let text = serde::to_string(&e);
            let mut r = compact::Reader::new(&text);
            assert_eq!(r.raw_token().unwrap(), code);
            let msg = r.str_token().unwrap();
            assert_eq!(msg, e.to_string());
            r.end().unwrap();
        }
    }
}
