//! The job-oriented submission API: tickets, states, deadlines,
//! cancellation, and streaming progress.
//!
//! [`MayaService::submit`](crate::MayaService::submit) returns a
//! [`JobHandle`] — a ticket for one request moving through the typed
//! state machine
//!
//! ```text
//! Queued ──► Running ──► Done
//!    │           │   ├──► Cancelled
//!    │           │   ├──► Expired   (deadline hit at a wave boundary)
//!    │           └──────► Failed    (worker panic; wait → Stopped)
//!    ├──────────────────► Expired   (deadline elapsed while queued)
//!    └──────────────────► Cancelled (cancelled while queued)
//! ```
//!
//! A handle supports non-blocking [`JobHandle::poll`], blocking
//! [`JobHandle::wait`] / [`JobHandle::wait_outcome`], cooperative
//! [`JobHandle::cancel`], and — for `Search` requests — a
//! [`JobHandle::progress`] stream of [`SearchProgress`] events emitted
//! at the scheduler's deterministic wave boundaries.
//!
//! Determinism is preserved end to end: cancellation and deadlines stop
//! a search only *between* committed trials, so a `Cancelled` or
//! mid-run-`Expired` response carries exactly a prefix of the
//! uncancelled run's trial records, byte for byte; and the
//! concatenation of all progress events' trial batches equals the final
//! result's `trials` exactly.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

pub use maya::CancelToken;
use maya_estimator::CacheStats;
use maya_search::{ConfigPoint, TrialOutcome, TrialRecord};

use crate::error::ServeError;
use crate::request::Response;

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted; waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished normally; the response is (or was) redeemable.
    Done,
    /// Stopped by [`JobHandle::cancel`]. A search cancelled mid-run
    /// still carries its committed-prefix response.
    Cancelled,
    /// The per-request deadline elapsed. Expiry while queued sheds the
    /// job before it ever touches a worker.
    Expired,
    /// The request died without a verdict (its worker panicked).
    /// [`JobHandle::wait`] and [`JobHandle::wait_outcome`] report this
    /// as [`ServeError::Stopped`].
    Failed,
}

impl JobState {
    /// Whether the state is terminal (no further transitions).
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// Per-submission options (see [`crate::MayaService::submit_with`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobOptions {
    /// Total latency budget, measured from admission. Queue wait counts
    /// against it: a job still queued when the budget runs out is shed
    /// as [`JobState::Expired`] without consuming a worker slot, and a
    /// `Search` already running checks the budget at wave boundaries.
    /// `None` (the default) never expires.
    pub deadline: Option<Duration>,
}

impl JobOptions {
    /// No deadline.
    pub fn new() -> Self {
        JobOptions::default()
    }

    /// Sets the latency budget.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }
}

/// One increment of a running `Search` job, emitted at a scheduler wave
/// boundary. Concatenating `trials` across every event of a job yields
/// exactly the final [`maya_search::SearchResult::trials`] (prefix by
/// prefix, byte for byte).
#[derive(Clone, Debug)]
pub struct SearchProgress {
    /// Trials committed since the previous event, in commit order.
    pub trials: Vec<TrialRecord>,
    /// Total trials committed so far (== sum of `trials` lengths).
    pub committed: usize,
    /// Best completed configuration so far.
    pub best: Option<(ConfigPoint, TrialOutcome)>,
    /// Engine memo-cache counter movement since the previous event
    /// (approximate when concurrent jobs share the engine).
    pub cache_delta: CacheStats,
}

/// Terminal verdict of one job.
#[derive(Debug)]
pub enum JobOutcome {
    /// Ran to completion.
    Done(Response),
    /// Cancelled. `Some` carries the deterministic committed prefix a
    /// mid-run cancellation produced; `None` means the job was
    /// cancelled before it started executing.
    Cancelled(Option<Response>),
    /// The deadline elapsed. `None` means the job was shed while still
    /// queued (it never touched a worker); `Some` carries the committed
    /// prefix of a search whose budget ran out at a wave boundary.
    Expired(Option<Response>),
}

impl JobOutcome {
    /// The state this outcome lands the job in.
    pub fn state(&self) -> JobState {
        match self {
            JobOutcome::Done(_) => JobState::Done,
            JobOutcome::Cancelled(_) => JobState::Cancelled,
            JobOutcome::Expired(_) => JobState::Expired,
        }
    }

    /// The response, for outcomes that carry one.
    pub fn response(&self) -> Option<&Response> {
        match self {
            JobOutcome::Done(r) => Some(r),
            JobOutcome::Cancelled(r) | JobOutcome::Expired(r) => r.as_ref(),
        }
    }

    /// Consumes the outcome, yielding the response if it carries one.
    pub fn into_response(self) -> Option<Response> {
        match self {
            JobOutcome::Done(r) => Some(r),
            JobOutcome::Cancelled(r) | JobOutcome::Expired(r) => r,
        }
    }
}

const STATE_QUEUED: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_DONE: u8 = 2;
const STATE_CANCELLED: u8 = 3;
const STATE_EXPIRED: u8 = 4;
const STATE_FAILED: u8 = 5;

/// State shared between a job's handle(s) and the worker executing it.
pub(crate) struct JobCore {
    pub(crate) id: u64,
    state: AtomicU8,
    pub(crate) cancel: CancelToken,
    /// The progress sender lives here so the worker can *close* the
    /// stream (by taking it) when the job reaches a terminal state.
    progress_tx: Mutex<Option<mpsc::Sender<SearchProgress>>>,
}

impl JobCore {
    pub(crate) fn state(&self) -> JobState {
        match self.state.load(Ordering::SeqCst) {
            STATE_QUEUED => JobState::Queued,
            STATE_RUNNING => JobState::Running,
            STATE_DONE => JobState::Done,
            STATE_CANCELLED => JobState::Cancelled,
            STATE_EXPIRED => JobState::Expired,
            _ => JobState::Failed,
        }
    }

    pub(crate) fn set_running(&self) {
        self.state.store(STATE_RUNNING, Ordering::SeqCst);
    }

    /// Emits one progress event (a no-op once the receiver is gone).
    pub(crate) fn emit_progress(&self, event: SearchProgress) {
        let tx = self.progress_tx.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(tx) = tx.as_ref() {
            let _ = tx.send(event);
        }
    }

    /// Seals the job: records the terminal state and closes the
    /// progress stream so readers see end-of-events.
    pub(crate) fn finish(&self, state: JobState) {
        let code = match state {
            JobState::Done => STATE_DONE,
            JobState::Cancelled => STATE_CANCELLED,
            JobState::Expired => STATE_EXPIRED,
            JobState::Failed => STATE_FAILED,
            JobState::Queued | JobState::Running => unreachable!("finish with non-terminal state"),
        };
        self.state.store(code, Ordering::SeqCst);
        drop(
            self.progress_tx
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take(),
        );
    }

    /// Seals the job as [`JobState::Failed`] — the panic path, where
    /// no verdict exists. Pollers see a terminal state, progress
    /// readers see end-of-events, and the waiter learns of the death
    /// through its dropped outcome sender ([`ServeError::Stopped`]).
    pub(crate) fn abandon(&self) {
        self.finish(JobState::Failed);
    }
}

/// A blocking iterator over a job's [`SearchProgress`] events. Ends
/// when the job reaches a terminal state (or, for non-search requests,
/// immediately — they emit no progress).
pub struct ProgressEvents {
    rx: Option<mpsc::Receiver<SearchProgress>>,
}

impl Iterator for ProgressEvents {
    type Item = SearchProgress;

    fn next(&mut self) -> Option<SearchProgress> {
        self.rx.as_ref()?.recv().ok()
    }
}

/// A shareable controller for a job: everything a [`JobHandle`] can do
/// except redeem the outcome. The wire server hands these to its frame
/// reader so a remote `Cancel` can reach an in-flight job whose handle
/// is parked in a writer.
#[derive(Clone)]
pub struct JobControl {
    core: Arc<JobCore>,
}

impl JobControl {
    /// The job's ticket id.
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// Current state, without blocking.
    pub fn poll(&self) -> JobState {
        self.core.state()
    }

    /// Requests cooperative cancellation (idempotent; a no-op on
    /// terminal jobs). A queued job is discarded when a worker picks it
    /// up; a running search stops at its next commit boundary.
    pub fn cancel(&self) {
        self.core.cancel.cancel();
    }
}

/// The ticket returned by [`crate::MayaService::submit`] (see module
/// docs).
pub struct JobHandle {
    pub(crate) core: Arc<JobCore>,
    pub(crate) outcome_rx: mpsc::Receiver<JobOutcome>,
    pub(crate) progress_rx: Mutex<Option<mpsc::Receiver<SearchProgress>>>,
}

impl JobHandle {
    /// Creates the linked (handle, core) pair plus the worker-side
    /// outcome sender.
    pub(crate) fn new(id: u64) -> (Self, Arc<JobCore>, mpsc::Sender<JobOutcome>) {
        let (progress_tx, progress_rx) = mpsc::channel();
        let (outcome_tx, outcome_rx) = mpsc::channel();
        let core = Arc::new(JobCore {
            id,
            state: AtomicU8::new(STATE_QUEUED),
            cancel: CancelToken::new(),
            progress_tx: Mutex::new(Some(progress_tx)),
        });
        (
            JobHandle {
                core: Arc::clone(&core),
                outcome_rx,
                progress_rx: Mutex::new(Some(progress_rx)),
            },
            core,
            outcome_tx,
        )
    }

    /// The job's ticket id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// Current state, without blocking.
    pub fn poll(&self) -> JobState {
        self.core.state()
    }

    /// Requests cooperative cancellation (see [`JobControl::cancel`]).
    pub fn cancel(&self) {
        self.core.cancel.cancel();
    }

    /// A clonable controller for this job (poll + cancel).
    pub fn control(&self) -> JobControl {
        JobControl {
            core: Arc::clone(&self.core),
        }
    }

    /// Takes the job's progress stream. Events buffer from the moment
    /// of submission, so none are lost however late this is called.
    /// The stream can be taken once; later calls return an exhausted
    /// stream.
    pub fn progress(&self) -> ProgressEvents {
        ProgressEvents {
            rx: self
                .progress_rx
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .take(),
        }
    }

    /// Blocks until the job reaches a terminal state and returns the
    /// full verdict. `Err(ServeError::Stopped)` means the service (or
    /// the worker executing the job) died first.
    pub fn wait_outcome(self) -> Result<JobOutcome, ServeError> {
        self.outcome_rx.recv().map_err(|_| ServeError::Stopped)
    }

    /// Blocks until done and returns the response — the pre-job-API
    /// blocking call. Cancelled and expired jobs surface as
    /// [`ServeError::Cancelled`] / [`ServeError::Expired`]; use
    /// [`JobHandle::wait_outcome`] to also receive the committed-prefix
    /// response those verdicts may carry.
    pub fn wait(self) -> Result<Response, ServeError> {
        match self.wait_outcome()? {
            JobOutcome::Done(resp) => Ok(resp),
            JobOutcome::Cancelled(_) => Err(ServeError::Cancelled),
            JobOutcome::Expired(_) => Err(ServeError::Expired),
        }
    }
}

/// What the admission queue carries to a worker.
pub(crate) struct QueuedJob {
    pub(crate) req: crate::request::Request,
    pub(crate) enqueued: Instant,
    /// Absolute expiry instant (admission time + the option's budget).
    pub(crate) expires: Option<Instant>,
    pub(crate) core: Arc<JobCore>,
    pub(crate) outcome_tx: mpsc::Sender<JobOutcome>,
}
