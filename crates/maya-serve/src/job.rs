//! The job-oriented submission API: tickets, states, deadlines,
//! cancellation, and streaming progress.
//!
//! [`MayaService::submit`](crate::MayaService::submit) returns a
//! [`JobHandle`] — a ticket for one request moving through the typed
//! state machine
//!
//! ```text
//! Queued ──► Running ──► Done
//!    │           │   ├──► Cancelled
//!    │           │   ├──► Expired   (deadline hit at a wave boundary)
//!    │           └──────► Failed    (worker panic; wait → Stopped)
//!    ├──────────────────► Expired   (deadline elapsed while queued)
//!    └──────────────────► Cancelled (cancelled while queued)
//! ```
//!
//! A handle supports non-blocking [`JobHandle::poll`], blocking
//! [`JobHandle::wait`] / [`JobHandle::wait_outcome`], cooperative
//! [`JobHandle::cancel`], and — for `Search` requests — a
//! [`JobHandle::progress`] stream of [`SearchProgress`] events emitted
//! at the scheduler's deterministic wave boundaries.
//!
//! Determinism is preserved end to end: cancellation and deadlines stop
//! a search only *between* committed trials, so a `Cancelled` or
//! mid-run-`Expired` response carries exactly a prefix of the
//! uncancelled run's trial records, byte for byte; and the
//! concatenation of all progress events' trial batches equals the final
//! result's `trials` exactly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, OnceLock, Weak};
use std::time::{Duration, Instant};

pub use maya::CancelToken;
use maya_estimator::CacheStats;
use maya_obs::Counter;
use maya_search::{ConfigPoint, TrialOutcome, TrialRecord};

use crate::error::ServeError;
use crate::request::Response;

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Admitted; waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished normally; the response is (or was) redeemable.
    Done,
    /// Stopped by [`JobHandle::cancel`]. A search cancelled mid-run
    /// still carries its committed-prefix response.
    Cancelled,
    /// The per-request deadline elapsed. Expiry while queued sheds the
    /// job before it ever touches a worker.
    Expired,
    /// The request died without a verdict (its worker panicked).
    /// [`JobHandle::wait`] and [`JobHandle::wait_outcome`] report this
    /// as [`ServeError::Stopped`].
    Failed,
}

impl JobState {
    /// Whether the state is terminal (no further transitions).
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// Scheduling class of a job. Within a class the admission queue runs
/// earliest-deadline-first (remaining budget), then admission order;
/// across classes `High` beats `Normal` beats `Batch`, except that the
/// starvation guard ages long-waiting jobs upward one class per guard
/// interval so `Batch` work always reaches a worker eventually.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive: scheduled before everything un-aged.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Throughput work: runs when nothing more urgent is queued, aged
    /// into service by the starvation guard.
    Batch,
}

impl Priority {
    /// Scheduling rank: lower runs first (`High` = 0, `Batch` = 2).
    pub(crate) fn level(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Every class (for exhaustive tests).
    pub fn all() -> [Priority; 3] {
        [Priority::High, Priority::Normal, Priority::Batch]
    }
}

/// Per-submission options (see [`crate::MayaService::submit_with`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobOptions {
    /// Total latency budget, measured from admission. Queue wait counts
    /// against it: a job still queued when the budget runs out is shed
    /// as [`JobState::Expired`] without consuming a worker slot, and a
    /// `Search` already running checks the budget at wave boundaries.
    /// `None` (the default) never expires.
    pub deadline: Option<Duration>,
    /// Scheduling class ([`Priority::Normal`] by default). Within a
    /// class, jobs with less remaining deadline budget run first.
    pub priority: Priority,
    /// The tenant this job is accounted to. Named tenants are subject
    /// to the service's per-tenant quotas (max queued, max in-flight)
    /// and get their own counters in
    /// [`ServiceStats::tenants`](crate::ServiceStats). `None` (the
    /// default) is anonymous: no quota, no per-tenant counters.
    pub tenant: Option<String>,
}

impl JobOptions {
    /// No deadline, [`Priority::Normal`], anonymous.
    pub fn new() -> Self {
        JobOptions::default()
    }

    /// Sets the latency budget.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Sets the scheduling class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Accounts the job to a named tenant (quota-checked at admission).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// One increment of a running `Search` job, emitted at a scheduler wave
/// boundary. Concatenating `trials` across every event of a job yields
/// exactly the final [`maya_search::SearchResult::trials`] (prefix by
/// prefix, byte for byte).
#[derive(Clone, Debug)]
pub struct SearchProgress {
    /// Trials committed since the previous event, in commit order.
    pub trials: Vec<TrialRecord>,
    /// Total trials committed so far (== sum of `trials` lengths).
    pub committed: usize,
    /// Best completed configuration so far.
    pub best: Option<(ConfigPoint, TrialOutcome)>,
    /// Engine memo-cache counter movement since the previous event
    /// (approximate when concurrent jobs share the engine).
    pub cache_delta: CacheStats,
}

/// Terminal verdict of one job.
#[derive(Debug)]
pub enum JobOutcome {
    /// Ran to completion.
    Done(Response),
    /// Cancelled. `Some` carries the deterministic committed prefix a
    /// mid-run cancellation produced; `None` means the job was
    /// cancelled before it started executing.
    Cancelled(Option<Response>),
    /// The deadline elapsed. `None` means the job was shed while still
    /// queued (it never touched a worker); `Some` carries the committed
    /// prefix of a search whose budget ran out at a wave boundary.
    Expired(Option<Response>),
}

impl JobOutcome {
    /// The state this outcome lands the job in.
    pub fn state(&self) -> JobState {
        match self {
            JobOutcome::Done(_) => JobState::Done,
            JobOutcome::Cancelled(_) => JobState::Cancelled,
            JobOutcome::Expired(_) => JobState::Expired,
        }
    }

    /// The response, for outcomes that carry one.
    pub fn response(&self) -> Option<&Response> {
        match self {
            JobOutcome::Done(r) => Some(r),
            JobOutcome::Cancelled(r) | JobOutcome::Expired(r) => r.as_ref(),
        }
    }

    /// Consumes the outcome, yielding the response if it carries one.
    pub fn into_response(self) -> Option<Response> {
        match self {
            JobOutcome::Done(r) => Some(r),
            JobOutcome::Cancelled(r) | JobOutcome::Expired(r) => r,
        }
    }
}

const STATE_QUEUED: u8 = 0;
const STATE_RUNNING: u8 = 1;
const STATE_DONE: u8 = 2;
const STATE_CANCELLED: u8 = 3;
const STATE_EXPIRED: u8 = 4;
const STATE_FAILED: u8 = 5;

/// The buffered, bounded progress stream of one job.
///
/// Events buffer from the moment of submission so a late
/// [`JobHandle::progress`] call loses nothing — but the buffer is
/// *bounded*: past `high_water` pending events, each new wave is
/// **coalesced** into the newest buffered one (trial batches
/// concatenate in commit order, `committed`/`best` take the newer
/// values, cache deltas sum). A client that never drains a long
/// search's stream therefore costs at most `high_water` events of
/// memory, and the "concatenated events == final trials" invariant
/// holds whether or not coalescing fired. Coalesces are counted in
/// [`ServiceStats::progress_coalesced`](crate::ServiceStats).
struct ProgressBuffer {
    events: VecDeque<SearchProgress>,
    high_water: usize,
    closed: bool,
    taken: bool,
}

/// State shared between a job's handle(s) and the worker executing it.
pub(crate) struct JobCore {
    pub(crate) id: u64,
    state: AtomicU8,
    pub(crate) cancel: CancelToken,
    progress: Mutex<ProgressBuffer>,
    progress_ready: Condvar,
    /// Service-wide coalesce counter (see [`ProgressBuffer`]) — an
    /// obs handle, so the same cell feeds [`crate::ServiceStats`] and
    /// the service's scrapeable metrics snapshot.
    coalesced: Counter,
    /// Back-reference to the admission queue, attached at submission,
    /// so a cancel can wake the sleeping scheduler and have a
    /// still-queued job's verdict delivered promptly.
    queue: OnceLock<Weak<crate::queue::AdmissionQueue>>,
}

impl JobCore {
    /// Attaches the admission queue this job is (about to be) queued
    /// on (idempotent; first attachment wins).
    pub(crate) fn attach_queue(&self, queue: Weak<crate::queue::AdmissionQueue>) {
        let _ = self.queue.set(queue);
    }

    /// Requests cooperative cancellation and pokes the admission queue
    /// so a still-queued job is discarded (and its verdict delivered)
    /// now, not at the next unrelated scheduling event.
    pub(crate) fn request_cancel(&self) {
        self.cancel.cancel();
        if let Some(queue) = self.queue.get().and_then(Weak::upgrade) {
            queue.poke();
        }
    }
    pub(crate) fn state(&self) -> JobState {
        match self.state.load(Ordering::SeqCst) {
            STATE_QUEUED => JobState::Queued,
            STATE_RUNNING => JobState::Running,
            STATE_DONE => JobState::Done,
            STATE_CANCELLED => JobState::Cancelled,
            STATE_EXPIRED => JobState::Expired,
            _ => JobState::Failed,
        }
    }

    pub(crate) fn set_running(&self) {
        self.state.store(STATE_RUNNING, Ordering::SeqCst);
    }

    fn progress_buffer(&self) -> MutexGuard<'_, ProgressBuffer> {
        self.progress.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Buffers one progress event, coalescing into the newest buffered
    /// event once `high_water` events are pending (see
    /// [`ProgressBuffer`]). A no-op on finished jobs.
    pub(crate) fn emit_progress(&self, event: SearchProgress) {
        let mut buf = self.progress_buffer();
        if buf.closed {
            return;
        }
        if buf.events.len() >= buf.high_water {
            let last = buf.events.back_mut().expect("high_water >= 1");
            last.trials.extend(event.trials);
            last.committed = event.committed;
            last.best = event.best;
            last.cache_delta.hits += event.cache_delta.hits;
            last.cache_delta.misses += event.cache_delta.misses;
            last.cache_delta.evictions += event.cache_delta.evictions;
            self.coalesced.inc();
        } else {
            buf.events.push_back(event);
        }
        drop(buf);
        self.progress_ready.notify_all();
    }

    /// Seals the job: records the terminal state and closes the
    /// progress stream so readers see end-of-events (after draining
    /// what is buffered).
    pub(crate) fn finish(&self, state: JobState) {
        let code = match state {
            JobState::Done => STATE_DONE,
            JobState::Cancelled => STATE_CANCELLED,
            JobState::Expired => STATE_EXPIRED,
            JobState::Failed => STATE_FAILED,
            JobState::Queued | JobState::Running => unreachable!("finish with non-terminal state"),
        };
        self.state.store(code, Ordering::SeqCst);
        self.progress_buffer().closed = true;
        self.progress_ready.notify_all();
    }

    /// Seals the job as [`JobState::Failed`] — the panic path, where
    /// no verdict exists. Pollers see a terminal state, progress
    /// readers see end-of-events, and the waiter learns of the death
    /// through its dropped outcome sender ([`ServeError::Stopped`]).
    pub(crate) fn abandon(&self) {
        self.finish(JobState::Failed);
    }
}

/// A blocking iterator over a job's [`SearchProgress`] events. Ends
/// when the job reaches a terminal state (or, for non-search requests,
/// immediately — they emit no progress).
pub struct ProgressEvents {
    core: Option<Arc<JobCore>>,
}

impl Iterator for ProgressEvents {
    type Item = SearchProgress;

    fn next(&mut self) -> Option<SearchProgress> {
        let core = self.core.as_ref()?;
        let mut buf = core.progress_buffer();
        loop {
            if let Some(event) = buf.events.pop_front() {
                return Some(event);
            }
            if buf.closed {
                drop(buf);
                self.core = None;
                return None;
            }
            buf = core
                .progress_ready
                .wait(buf)
                .unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// A shareable controller for a job: everything a [`JobHandle`] can do
/// except redeem the outcome. The wire server hands these to its frame
/// reader so a remote `Cancel` can reach an in-flight job whose handle
/// is parked in a writer.
#[derive(Clone)]
pub struct JobControl {
    core: Arc<JobCore>,
}

impl JobControl {
    /// The job's ticket id.
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// Current state, without blocking.
    pub fn poll(&self) -> JobState {
        self.core.state()
    }

    /// Requests cooperative cancellation (idempotent; a no-op on
    /// terminal jobs). A queued job is discarded by the scheduler
    /// right away (its slot freed, its verdict delivered); a running
    /// search stops at its next commit boundary.
    pub fn cancel(&self) {
        self.core.request_cancel();
    }
}

/// The ticket returned by [`crate::MayaService::submit`] (see module
/// docs).
pub struct JobHandle {
    pub(crate) core: Arc<JobCore>,
    pub(crate) outcome_rx: mpsc::Receiver<JobOutcome>,
}

impl JobHandle {
    /// Creates the linked (handle, core) pair plus the worker-side
    /// outcome sender. `progress_high_water` bounds the job's buffered
    /// progress stream (coalescing past it, counted into `coalesced`).
    pub(crate) fn new(
        id: u64,
        progress_high_water: usize,
        coalesced: Counter,
    ) -> (Self, Arc<JobCore>, mpsc::Sender<JobOutcome>) {
        let (outcome_tx, outcome_rx) = mpsc::channel();
        let core = Arc::new(JobCore {
            id,
            state: AtomicU8::new(STATE_QUEUED),
            cancel: CancelToken::new(),
            progress: Mutex::new(ProgressBuffer {
                events: VecDeque::new(),
                high_water: progress_high_water.max(1),
                closed: false,
                taken: false,
            }),
            progress_ready: Condvar::new(),
            coalesced,
            queue: OnceLock::new(),
        });
        (
            JobHandle {
                core: Arc::clone(&core),
                outcome_rx,
            },
            core,
            outcome_tx,
        )
    }

    /// The job's ticket id (unique per service instance).
    pub fn id(&self) -> u64 {
        self.core.id
    }

    /// Current state, without blocking.
    pub fn poll(&self) -> JobState {
        self.core.state()
    }

    /// Requests cooperative cancellation (see [`JobControl::cancel`]).
    pub fn cancel(&self) {
        self.core.request_cancel();
    }

    /// A clonable controller for this job (poll + cancel).
    pub fn control(&self) -> JobControl {
        JobControl {
            core: Arc::clone(&self.core),
        }
    }

    /// Takes the job's progress stream. Events buffer from the moment
    /// of submission, so none are lost however late this is called —
    /// though a backlog past the service's progress high-water mark
    /// arrives coalesced (concatenated trial batches, merged deltas)
    /// rather than wave by wave. The stream can be taken once; later
    /// calls return an exhausted stream.
    pub fn progress(&self) -> ProgressEvents {
        let mut buf = self.core.progress_buffer();
        if buf.taken {
            return ProgressEvents { core: None };
        }
        buf.taken = true;
        drop(buf);
        ProgressEvents {
            core: Some(Arc::clone(&self.core)),
        }
    }

    /// Blocks until the job reaches a terminal state and returns the
    /// full verdict. `Err(ServeError::Stopped)` means the service (or
    /// the worker executing the job) died first.
    pub fn wait_outcome(self) -> Result<JobOutcome, ServeError> {
        self.outcome_rx.recv().map_err(|_| ServeError::Stopped)
    }

    /// Blocks until done and returns the response — the pre-job-API
    /// blocking call. Cancelled and expired jobs surface as
    /// [`ServeError::Cancelled`] / [`ServeError::Expired`]; use
    /// [`JobHandle::wait_outcome`] to also receive the committed-prefix
    /// response those verdicts may carry.
    pub fn wait(self) -> Result<Response, ServeError> {
        match self.wait_outcome()? {
            JobOutcome::Done(resp) => Ok(resp),
            JobOutcome::Cancelled(_) => Err(ServeError::Cancelled),
            JobOutcome::Expired(_) => Err(ServeError::Expired),
        }
    }
}

/// What the admission queue carries to a worker.
pub(crate) struct QueuedJob {
    pub(crate) req: crate::request::Request,
    pub(crate) enqueued: Instant,
    /// Absolute expiry instant (admission time + the option's budget).
    pub(crate) expires: Option<Instant>,
    /// Scheduling class (see [`Priority`]).
    pub(crate) priority: Priority,
    /// Quota/accounting tenant, if named.
    pub(crate) tenant: Option<String>,
    pub(crate) core: Arc<JobCore>,
    pub(crate) outcome_tx: mpsc::Sender<JobOutcome>,
}
