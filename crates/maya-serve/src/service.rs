//! [`MayaService`]: the multi-tenant front door.
//!
//! Clients submit typed [`Request`]s against named cluster targets; a
//! bounded QoS admission queue (priority classes, EDF within a class,
//! a starvation guard and per-tenant quotas — see [`crate::queue`]'s
//! module docs) schedules them over one shared pool of worker threads.
//! Each worker resolves the target's [`EmulationSpec`] through
//! the [`EngineRegistry`], so concurrent clients of the same cluster
//! shape share a single prediction engine — and its estimator memo —
//! instead of each owning a pool and a cold cache.
//!
//! Every pipeline stage is deterministic and the memo caches pure
//! functions, so a response is byte-identical to calling the engine
//! directly; the service adds multiplexing, admission control and
//! telemetry, never different answers.
//!
//! With a snapshot directory configured, engines warm-start from
//! `<dir>/<target>.memo` at build and [`MayaService::persist_snapshots`]
//! writes the current memos back — the restart story for a long-running
//! deployment.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use maya::{EmulationSpec, EstimatorChoice, PredictionEngine, StageTimings};
use maya_estimator::{CacheStats, SnapshotError};
use maya_obs::{
    chrome_trace_json, Counter, FlightRecorder, Gauge, Histogram, JobTreeRing, ObsConfig,
    ObsSnapshot, Registry, SpanNode,
};
use maya_search::{
    ConfigPoint, Objective, SearchObserver, TrialOutcome, TrialRecord, TrialScheduler,
};

use crate::error::ServeError;
use crate::job::{JobCore, JobHandle, JobOptions, JobOutcome, JobState, QueuedJob, SearchProgress};
use crate::queue::{AdmissionQueue, QueueConfig, QueueObs, TenantStats};
use crate::registry::EngineRegistry;
use crate::request::{MeasureOutcome, Payload, Request, Response, Telemetry};

/// The service's observability surface: one [`Registry`] every layer
/// publishes into, the flight recorder, and the ring of recent job
/// span trees. Built from the [`ObsConfig`] the
/// [`ServiceBuilder::observability`] chose — with metrics off, handles
/// are detached (they still count, since [`ServiceStats`] reads them,
/// but nothing is registered for scraping); with spans off, no trees
/// are built at all.
struct ServiceObs {
    config: ObsConfig,
    registry: Registry,
    recorder: FlightRecorder,
    job_trees: JobTreeRing,
    /// Service times by priority class, microseconds, indexed by
    /// `Priority::level` ("serve.service_time_us.{high,normal,batch}").
    service_by_class: [Histogram; 3],
}

impl ServiceObs {
    fn new(config: ObsConfig) -> ServiceObs {
        let registry = Registry::new();
        let recorder = FlightRecorder::default();
        recorder.set_enabled(config.spans);
        let service_by_class = if config.metrics {
            [
                registry.histogram("serve.service_time_us.high"),
                registry.histogram("serve.service_time_us.normal"),
                registry.histogram("serve.service_time_us.batch"),
            ]
        } else {
            Default::default()
        };
        ServiceObs {
            config,
            registry,
            recorder,
            job_trees: JobTreeRing::default(),
            service_by_class,
        }
    }

    /// A counter under `name` when metrics are on, detached otherwise.
    fn counter(&self, name: &str) -> Counter {
        if self.config.metrics {
            self.registry.counter(name)
        } else {
            Counter::detached()
        }
    }

    /// A gauge under `name` when metrics are on, detached otherwise.
    fn gauge(&self, name: &str) -> Gauge {
        if self.config.metrics {
            self.registry.gauge(name)
        } else {
            Gauge::detached()
        }
    }

    /// A histogram under `name` when metrics are on, detached
    /// otherwise.
    fn histogram(&self, name: &str) -> Histogram {
        if self.config.metrics {
            self.registry.histogram(name)
        } else {
            Histogram::detached()
        }
    }
}

/// State shared by the service handle and its workers.
struct Shared {
    registry: EngineRegistry,
    targets: HashMap<String, EmulationSpec>,
    next_job_id: AtomicU64,
    served: Counter,
    cancelled: Counter,
    expired: Counter,
    panicked: Counter,
    /// Progress events merged under backpressure (see
    /// [`ServiceBuilder::progress_high_water`]).
    progress_coalesced: Counter,
    progress_high_water: usize,
    obs: ServiceObs,
}

/// Configures and builds a [`MayaService`].
pub struct ServiceBuilder {
    targets: Vec<(String, EmulationSpec)>,
    estimator: EstimatorChoice,
    workers: usize,
    queue_capacity: usize,
    starvation_guard: Duration,
    tenant_max_queued: Option<usize>,
    tenant_max_in_flight: Option<usize>,
    progress_high_water: usize,
    snapshot_dir: Option<PathBuf>,
    memo_capacity: Option<usize>,
    memo_ttl: Option<Duration>,
    observability: ObsConfig,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            targets: Vec::new(),
            estimator: EstimatorChoice::Oracle,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            queue_capacity: 64,
            starvation_guard: Duration::from_millis(500),
            tenant_max_queued: None,
            tenant_max_in_flight: None,
            progress_high_water: 256,
            snapshot_dir: None,
            memo_capacity: None,
            memo_ttl: None,
            observability: ObsConfig::default(),
        }
    }
}

impl ServiceBuilder {
    /// Empty builder: oracle estimator, pool sized to the machine,
    /// 64-slot admission queue.
    pub fn new() -> Self {
        ServiceBuilder::default()
    }

    /// Registers a named cluster target. Targets with *equal* specs
    /// share one engine (and memo cache); names must be unique.
    pub fn target(mut self, name: impl Into<String>, spec: EmulationSpec) -> Self {
        self.targets.push((name.into(), spec));
        self
    }

    /// Sets the estimator choice, instantiated once per distinct
    /// cluster. [`EstimatorChoice::Custom`] is a single fixed instance
    /// and is therefore rejected at build time when targets span more
    /// than one distinct cluster — use [`EstimatorChoice::Factory`]
    /// for multi-cluster services with bespoke estimators.
    pub fn estimator(mut self, choice: EstimatorChoice) -> Self {
        self.estimator = choice;
        self
    }

    /// Sets the shared worker-pool size (min 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the bounded admission-queue capacity (min 1). When full,
    /// [`MayaService::submit`] blocks and
    /// [`MayaService::try_submit`] returns [`ServeError::Overloaded`].
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Sets the starvation guard (default 500ms): a queued job is
    /// promoted one priority class for every `interval` it has waited,
    /// so [`crate::Priority::Batch`] work ages into service instead of
    /// starving under a stream of higher-priority submissions.
    pub fn starvation_guard(mut self, interval: Duration) -> Self {
        self.starvation_guard = interval.max(Duration::from_nanos(1));
        self
    }

    /// Caps how many jobs one named tenant may hold *queued* at once
    /// (min 1; unlimited by default). A submission over the cap is
    /// shed immediately with [`ServeError::QuotaExceeded`] — by both
    /// `submit` and `try_submit` — while other tenants' traffic is
    /// untouched. Anonymous jobs (no
    /// [`JobOptions::tenant`](crate::JobOptions)) are exempt.
    pub fn tenant_max_queued(mut self, n: usize) -> Self {
        self.tenant_max_queued = Some(n.max(1));
        self
    }

    /// Caps how many jobs one named tenant may have *executing* at
    /// once (min 1; unlimited by default). Over-cap entries stay
    /// queued — holding their queue slots — until one of the tenant's
    /// running jobs finishes; other tenants schedule past them.
    pub fn tenant_max_in_flight(mut self, n: usize) -> Self {
        self.tenant_max_in_flight = Some(n.max(1));
        self
    }

    /// Bounds every job's buffered progress stream to `events` pending
    /// events (default 256, min 1). Past the mark, adjacent wave
    /// events are coalesced — trial batches concatenate in commit
    /// order, best-so-far and cache deltas merge — so a client that
    /// never drains [`crate::JobHandle::progress`] on a long search
    /// costs bounded memory instead of one event per wave forever. The
    /// "concatenated events == final trials" invariant is preserved;
    /// merges are counted in [`ServiceStats::progress_coalesced`].
    pub fn progress_high_water(mut self, events: usize) -> Self {
        self.progress_high_water = events.max(1);
        self
    }

    /// Arms per-target memo snapshots under `dir`: engines warm-start
    /// from `<dir>/<target>.memo` when present, and
    /// [`MayaService::persist_snapshots`] writes back there.
    pub fn snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Bounds every per-cluster estimator memo to roughly `entries` per
    /// query family with LRU eviction (see
    /// [`maya_estimator::CachingEstimator::with_capacity`]). Unbounded
    /// by default. A service that accepts requests over the network
    /// should set a cap: each distinct kernel shape a client submits
    /// becomes a memo entry, so an open endpoint with an unbounded memo
    /// is an unbounded-memory liability. Evictions surface in
    /// [`Telemetry`] through
    /// [`maya_estimator::CacheStats::evictions`].
    pub fn memo_capacity(mut self, entries: usize) -> Self {
        self.memo_capacity = Some(entries);
        self
    }

    /// Ages memo entries out `ttl` after insertion (see
    /// [`maya_estimator::CachingEstimator::with_limits`]). Disabled by
    /// default. Complements [`ServiceBuilder::memo_capacity`] for
    /// long-lived services: entries a tenant stopped asking for age
    /// away instead of occupying the memo forever. Expiries count into
    /// [`maya_estimator::CacheStats::evictions`] and therefore into
    /// [`Telemetry`] cache deltas.
    pub fn memo_ttl(mut self, ttl: Duration) -> Self {
        self.memo_ttl = Some(ttl);
        self
    }

    /// Sets the observability channels ([`ObsConfig::on`] by default):
    /// `metrics` gates the scrapeable registry (queue depth, shed
    /// counters, wait/service histograms per tenant and priority
    /// class), `spans` gates the per-job lifecycle tree on
    /// [`Telemetry::spans`] and the flight recorder.
    /// [`ObsConfig::off`] restores the uninstrumented cost profile;
    /// [`ServiceStats`] keeps working either way.
    pub fn observability(mut self, config: ObsConfig) -> Self {
        self.observability = config;
        self
    }

    /// Builds the service and spawns its worker pool.
    pub fn build(self) -> Result<MayaService, ServeError> {
        if self.targets.is_empty() {
            return Err(ServeError::NoTargets);
        }
        let mut targets = HashMap::new();
        for (name, spec) in self.targets {
            if targets.insert(name.clone(), spec).is_some() {
                return Err(ServeError::DuplicateTarget(name));
            }
        }
        if !self.estimator.is_cluster_aware() {
            let distinct: std::collections::HashSet<_> =
                targets.values().map(|s| s.cluster.clone()).collect();
            if distinct.len() > 1 {
                return Err(ServeError::CustomEstimatorSpansClusters);
            }
        }
        let obs = ServiceObs::new(self.observability);
        let mut registry =
            EngineRegistry::with_memo_limits(self.estimator, self.memo_capacity, self.memo_ttl);
        if obs.config.metrics {
            // Every engine the registry ever builds publishes its sim
            // tallies into these shared registry-backed cells; the
            // recorder is the service-wide one, so `sim.run` spans land
            // next to the job-lifecycle spans.
            registry = registry.with_sim_obs(maya::SimObs {
                events: obs.counter("sim.events_processed"),
                heap_depth_high_water: obs.gauge("sim.heap_depth_high_water"),
                flow_solves: obs.counter("sim.flow_solves"),
                recorder: obs.recorder.clone(),
            });
        }
        let mut restores = Vec::new();
        if let Some(dir) = &self.snapshot_dir {
            // Deterministic restore order (and report order).
            let mut names: Vec<&String> = targets.keys().collect();
            names.sort();
            for name in names {
                let Some(spec) = targets.get(name) else {
                    continue; // names came from this map's own keys
                };
                let path = snapshot_file(dir, name);
                if !path.exists() {
                    continue;
                }
                // The scope check rejects a memo written under a
                // different cluster or estimator configuration — e.g.
                // a target whose spec changed across restarts. Such a
                // snapshot is *stale, not fatal*: the service starts
                // cold on that target and reports a typed warning
                // (failing the whole build would turn every spec
                // change into a manual snapshot cleanup). Unreadable
                // or corrupt files still fail the build — they mean
                // the snapshot directory itself is broken.
                let scope = registry.estimator_choice().memo_scope(&spec.cluster);
                let engine = registry.engine(spec);
                let evictions_before = engine.cache_stats().evictions;
                match engine.cache().load_snapshot(&path, &scope) {
                    Ok(entries) => {
                        // With a memo cap smaller than the snapshot,
                        // part of the restore is evicted on the spot —
                        // report it so "warm start" is not silently a
                        // cold one.
                        let evicted = (engine.cache_stats().evictions - evictions_before) as usize;
                        if evicted > 0 {
                            eprintln!(
                                "[maya-serve] target {name:?}: memo capacity evicted \
                                 {evicted} of {entries} restored snapshot entries"
                            );
                        }
                        restores.push(SnapshotRestore {
                            target: name.clone(),
                            outcome: RestoreOutcome::Loaded { entries, evicted },
                        });
                    }
                    Err(
                        reason @ (SnapshotError::ScopeMismatch { .. }
                        | SnapshotError::EstimatorMismatch { .. }
                        | SnapshotError::Version(_)),
                    ) => {
                        eprintln!(
                            "[maya-serve] target {name:?}: skipping incompatible snapshot \
                             {path:?}: {reason}"
                        );
                        restores.push(SnapshotRestore {
                            target: name.clone(),
                            outcome: RestoreOutcome::Skipped { reason },
                        });
                    }
                    Err(e) => return Err(e.into()),
                }
            }
        }
        let queue_obs = QueueObs {
            depth: obs.gauge("serve.queue.depth"),
            depth_high_water: obs.gauge("serve.queue.depth_high_water"),
            wait_by_class: [
                obs.histogram("serve.queue_wait_us.high"),
                obs.histogram("serve.queue_wait_us.normal"),
                obs.histogram("serve.queue_wait_us.batch"),
            ],
            shed_expired: obs.counter("serve.queue.shed_expired"),
            shed_cancelled: obs.counter("serve.queue.shed_cancelled"),
            quota_shed: obs.counter("serve.queue.quota_shed"),
        };
        let shared = Arc::new(Shared {
            registry,
            targets,
            next_job_id: AtomicU64::new(1),
            served: obs.counter("serve.served"),
            cancelled: obs.counter("serve.cancelled"),
            expired: obs.counter("serve.expired"),
            panicked: obs.counter("serve.panicked"),
            progress_coalesced: obs.counter("serve.progress_coalesced"),
            progress_high_water: self.progress_high_water,
            obs,
        });
        let queue = Arc::new(AdmissionQueue::new(
            QueueConfig {
                capacity: self.queue_capacity,
                starvation_guard: self.starvation_guard,
                tenant_max_queued: self.tenant_max_queued,
                tenant_max_in_flight: self.tenant_max_in_flight,
            },
            queue_obs,
        ));
        // Thread spawn can fail under resource exhaustion; a service
        // that cannot field its full worker pool reports the typed
        // `Stopped` (no worker will ever answer) instead of panicking
        // mid-build. The partial pool is closed and joined first so
        // the error path leaks nothing.
        let abort_pool = |workers: Vec<JoinHandle<()>>| {
            queue.close();
            for handle in workers {
                let _ = handle.join();
            }
            ServeError::Stopped
        };
        let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(self.workers);
        for idx in 0..self.workers {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            match std::thread::Builder::new()
                .name(format!("maya-serve-{idx}"))
                .spawn(move || worker_loop(idx, &shared, &queue))
            {
                Ok(handle) => workers.push(handle),
                Err(_) => return Err(abort_pool(workers)),
            }
        }
        // The sweeper delivers expired/cancelled-while-queued verdicts
        // on time even when every worker above is busy on a long job
        // (workers only purge when they touch the queue). It exits
        // when the queue closes and joins with the pool at shutdown.
        let sweeper = {
            let queue = Arc::clone(&queue);
            match std::thread::Builder::new()
                .name("maya-serve-sweep".into())
                .spawn(move || queue.sweep())
            {
                Ok(handle) => handle,
                Err(_) => return Err(abort_pool(workers)),
            }
        };
        Ok(MayaService {
            shared,
            queue,
            workers,
            sweeper: Some(sweeper),
            queue_capacity: self.queue_capacity,
            snapshot_dir: self.snapshot_dir,
            restores,
        })
    }
}

/// What happened to one target's memo snapshot at service start.
#[derive(Debug)]
pub struct SnapshotRestore {
    /// The cluster target the snapshot belongs to.
    pub target: String,
    /// Whether the snapshot was loaded or skipped.
    pub outcome: RestoreOutcome,
}

/// Outcome of one snapshot restore attempt (reported, not silent).
#[derive(Debug)]
pub enum RestoreOutcome {
    /// The snapshot was restored; this many memo entries were loaded.
    Loaded {
        /// Entries inserted into the target's memo.
        entries: usize,
        /// Of those, how many the memo capacity evicted again during
        /// the restore itself (0 when unbounded or when the snapshot
        /// fits). `entries - evicted` is what actually stayed warm.
        evicted: usize,
    },
    /// The snapshot exists but was written under an incompatible scope
    /// (different cluster/estimator configuration) or format version;
    /// the target started cold. The file is left in place — a rollback
    /// to the previous configuration would pick it up again.
    Skipped {
        /// Why the snapshot was rejected.
        reason: SnapshotError,
    },
}

/// Snapshot path for one target.
///
/// The escaping is injective even on case-insensitive filesystems
/// (macOS/Windows defaults): ASCII lowercase, digits and `-` pass
/// through, every other byte — uppercase included, plus `_`, the
/// escape introducer — becomes lowercase `_xx` hex. Distinct target
/// names can therefore never collide on one file and cross-wire their
/// memos.
fn snapshot_file(dir: &Path, target: &str) -> PathBuf {
    let mut safe = String::with_capacity(target.len());
    for b in target.bytes() {
        match b {
            b'a'..=b'z' | b'0'..=b'9' | b'-' => safe.push(b as char),
            _ => {
                use std::fmt::Write;
                // Writing into a String cannot fail.
                let _ = write!(safe, "_{b:02x}");
            }
        }
    }
    dir.join(format!("{safe}.memo"))
}

fn worker_loop(idx: usize, shared: &Shared, queue: &AdmissionQueue) {
    // `pop` returns the most urgent eligible job under the QoS policy
    // (priority class promoted by age, EDF within a class, per-tenant
    // in-flight caps); `None` means the queue is closed and drained.
    // Dead entries are purged inside the queue at every scheduling
    // point, so the checks below only cover the race between selection
    // and pickup.
    while let Some(work) = queue.pop() {
        let tenant = work.tenant.clone();
        let priority = work.priority;
        // Deadline enforcement, part 1: a job whose budget ran out
        // between selection and pickup is shed *here*, before any
        // engine or pipeline work — load shedding at its cheapest
        // point.
        // lint:allow(wall-clock-in-output): deadline shedding — load-shedding input, never serialized
        if work.expires.is_some_and(|d| Instant::now() >= d) {
            shared.expired.inc();
            work.core.finish(JobState::Expired);
            // Counters settle before the verdict is delivered, so a
            // client reading stats right after `wait()` sees them.
            queue.finished(tenant.as_deref(), JobState::Expired, None);
            let _ = work.outcome_tx.send(JobOutcome::Expired(None));
            continue;
        }
        // A job cancelled while queued is likewise discarded unrun.
        if work.core.cancel.is_cancelled() {
            shared.cancelled.inc();
            work.core.finish(JobState::Cancelled);
            queue.finished(tenant.as_deref(), JobState::Cancelled, None);
            let _ = work.outcome_tx.send(JobOutcome::Cancelled(None));
            continue;
        }
        work.core.set_running();
        // A panicking request must not kill the worker (the pool would
        // silently shrink and later requests would hang in the queue):
        // catch it, drop the outcome sender so the waiting client gets
        // `ServeError::Stopped` instead of blocking forever, and keep
        // serving.
        let QueuedJob {
            req,
            enqueued,
            expires,
            core,
            outcome_tx,
            ..
        } = work;
        let label = format!("{} on {:?}", req.kind(), req.target());
        let exec_core = Arc::clone(&core);
        // lint:allow(wall-clock-in-output): span-recorder telemetry anchor — timings are telemetry, not payload
        let exec_started = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(idx, shared, req, enqueued, &exec_core, expires)
        }));
        match result {
            // A dropped outcome receiver just means the client lost
            // interest.
            Ok(Ok(outcome)) => {
                let state = outcome.state();
                let counter = match state {
                    JobState::Done => &shared.served,
                    JobState::Cancelled => &shared.cancelled,
                    _ => &shared.expired,
                };
                counter.inc();
                let service_time = outcome.response().map(|r| r.telemetry.service_time);
                if let Some(st) = service_time {
                    if shared.obs.config.metrics {
                        shared.obs.service_by_class[usize::from(priority.level().min(2))]
                            .record_duration(st);
                    }
                }
                if shared.obs.config.spans {
                    shared.obs.recorder.record(
                        "serve.execute",
                        exec_started,
                        exec_started.elapsed(),
                    );
                    if let Some(tree) = outcome.response().and_then(|r| r.telemetry.spans.first()) {
                        shared.obs.job_trees.record(core.id, tree.clone());
                    }
                }
                core.finish(state);
                // Counters settle before the verdict is delivered, so
                // a client reading stats right after `wait()` sees
                // them.
                queue.finished(tenant.as_deref(), state, service_time);
                let _ = outcome_tx.send(outcome);
            }
            // An invariant breach surfaced as a typed error: abandon
            // the job (the waiter gets `ServeError::Stopped`) and keep
            // the worker alive.
            Ok(Err(err)) => {
                eprintln!("[maya-serve] worker {idx}: request {label} failed: {err}");
                core.abandon();
                drop(outcome_tx);
                queue.finished(tenant.as_deref(), JobState::Failed, None);
            }
            Err(panic) => {
                shared.panicked.inc();
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                eprintln!("[maya-serve] worker {idx}: request {label} panicked: {msg}");
                core.abandon();
                drop(outcome_tx);
                queue.finished(tenant.as_deref(), JobState::Failed, None);
            }
        }
    }
}

/// Streams a running search's commits out as [`SearchProgress`] events
/// and enforces the deadline at wave boundaries.
struct ProgressForwarder {
    core: Arc<JobCore>,
    engine: Arc<PredictionEngine>,
    last_cache: CacheStats,
    pending: Vec<TrialRecord>,
    best: Option<(ConfigPoint, TrialOutcome)>,
    expires: Option<Instant>,
    deadline_fired: Arc<AtomicBool>,
}

impl SearchObserver for ProgressForwarder {
    fn trial_committed(
        &mut self,
        record: &TrialRecord,
        best: Option<&(ConfigPoint, TrialOutcome)>,
    ) {
        self.pending.push(*record);
        self.best = best.cloned();
    }

    fn wave_committed(&mut self, committed: usize) {
        let cache = self.engine.cache_stats();
        let cache_delta = CacheStats {
            hits: cache.hits - self.last_cache.hits,
            misses: cache.misses - self.last_cache.misses,
            evictions: cache.evictions - self.last_cache.evictions,
        };
        self.last_cache = cache;
        self.core.emit_progress(SearchProgress {
            trials: std::mem::take(&mut self.pending),
            committed,
            best: self.best,
            cache_delta,
        });
        // Deadline enforcement, part 2: a search that outlives its
        // budget stops at the next commit boundary — promptly, but
        // without ever interrupting a trial mid-flight, so the partial
        // result is a deterministic prefix.
        // lint:allow(wall-clock-in-output): wave-boundary deadline enforcement — commit prefix stays deterministic
        if self.expires.is_some_and(|d| Instant::now() >= d) && !self.core.cancel.is_cancelled() {
            self.deadline_fired.store(true, Ordering::SeqCst);
            self.core.cancel.cancel();
        }
    }
}

/// Builds the job-lifecycle span tree carried on [`Telemetry::spans`]:
/// a `job` root spanning admission to response, with `queued` and
/// `execute` children, and the non-zero pipeline stage timings laid
/// end to end under `execute`. Stage children are *summed* wall times
/// over the request's predictions (they can overrun `execute` for
/// multi-job batches); `queued`/`execute` are exact, which is what the
/// wall-clock coverage accounting relies on.
fn job_span_tree(queue_wait: Duration, service_time: Duration, stages: &StageTimings) -> SpanNode {
    let mut execute = SpanNode::leaf("execute", queue_wait, service_time);
    let mut at = queue_wait;
    for (name, d) in [
        ("emulation", stages.emulation),
        ("collation", stages.collation),
        ("estimation", stages.estimation),
        ("simulation", stages.simulation),
    ] {
        if !d.is_zero() {
            execute.children.push(SpanNode::leaf(name, at, d));
            at += d;
        }
    }
    SpanNode::leaf("job", Duration::ZERO, queue_wait + service_time)
        .with_child(SpanNode::leaf("queued", Duration::ZERO, queue_wait))
        .with_child(execute)
}

/// Runs one request against its target's engine. `Err` is the typed
/// escape for invariant breaches (an unknown target slipping past
/// submit validation) — the worker maps it to an abandoned job rather
/// than letting a panicking index take down the request.
fn execute(
    worker: usize,
    shared: &Shared,
    req: Request,
    enqueued: Instant,
    core: &Arc<JobCore>,
    expires: Option<Instant>,
) -> Result<JobOutcome, ServeError> {
    // Queue wait ends the moment a worker picks the request up; the
    // (possibly expensive, first-use) lazy engine build that follows
    // is counted as service time, not congestion.
    let queue_wait = enqueued.elapsed();
    // lint:allow(wall-clock-in-output): service_time telemetry anchor — reported in Telemetry, not in predictions
    let started = Instant::now();
    // Target existence was validated at submit; the map is immutable
    // after build, so this miss is unreachable short of a bug — which
    // is exactly when a typed error beats a worker panic.
    let Some(spec) = shared.targets.get(req.target()) else {
        return Err(ServeError::UnknownTarget(req.target().to_string()));
    };
    let engine = shared.registry.engine(spec);
    let cache_before = engine.cache_stats();
    let target = req.target().to_string();
    let kind = req.kind();
    let deadline_fired = Arc::new(AtomicBool::new(false));
    let (payload, stages) = match req {
        Request::Predict { jobs, .. } => {
            let results = engine.predict_batch_with(&jobs, Some(&core.cancel));
            let mut stages = StageTimings::default();
            for p in results.iter().flatten() {
                stages.emulation += p.timings.emulation;
                stages.collation += p.timings.collation;
                stages.estimation += p.timings.estimation;
                stages.simulation += p.timings.simulation;
            }
            (Payload::Predict(results), stages)
        }
        Request::Search {
            template,
            space,
            algorithm,
            budget,
            seed,
            ..
        } => {
            let objective = Objective::new(&engine, template);
            let forwarder = ProgressForwarder {
                core: Arc::clone(core),
                engine: Arc::clone(&engine),
                last_cache: cache_before,
                pending: Vec::new(),
                best: None,
                expires,
                deadline_fired: Arc::clone(&deadline_fired),
            };
            let result = TrialScheduler::new(&objective)
                .with_space(space)
                .with_observer(Box::new(forwarder))
                .with_cancel(core.cancel.clone())
                .run_batched(algorithm, budget, seed);
            (Payload::Search(Box::new(result)), StageTimings::default())
        }
        Request::Measure { job, .. } => {
            let outcome = engine.measure_actual(&job).map(|inner| match inner {
                Ok(m) => MeasureOutcome::Completed(m),
                Err(peak_bytes) => MeasureOutcome::OutOfMemory { peak_bytes },
            });
            (Payload::Measure(outcome), StageTimings::default())
        }
    };
    let service_time = started.elapsed();
    let cache = engine.cache_stats();
    let spans = if shared.obs.config.spans {
        vec![job_span_tree(queue_wait, service_time, &stages)]
    } else {
        Vec::new()
    };
    let response = Response {
        target,
        kind,
        telemetry: Telemetry {
            queue_wait,
            service_time,
            worker,
            cache,
            cache_delta: CacheStats {
                hits: cache.hits - cache_before.hits,
                misses: cache.misses - cache_before.misses,
                evictions: cache.evictions - cache_before.evictions,
            },
            stages,
            spans,
        },
        payload,
    };
    Ok(if deadline_fired.load(Ordering::SeqCst) {
        JobOutcome::Expired(Some(response))
    } else if core.cancel.is_cancelled() {
        JobOutcome::Cancelled(Some(response))
    } else {
        JobOutcome::Done(response)
    })
}

/// The pre-job-API name for the submission ticket, kept for one
/// release.
#[deprecated(
    since = "0.3.0",
    note = "submit() now returns a JobHandle (poll/cancel/progress/deadline); \
            `wait()` behaves as before"
)]
pub type ResponseHandle = JobHandle;

/// Point-in-time service counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests fully served (responses produced).
    pub served: u64,
    /// Jobs that ended [`JobState::Cancelled`] — discarded from the
    /// queue the moment the cancellation was observed, or stopped at a
    /// commit boundary mid-run.
    pub cancelled: u64,
    /// Jobs that ended [`JobState::Expired`] — shed from the queue
    /// with their deadline already blown (never consuming a worker
    /// slot; counted as soon as any scheduling point observes the
    /// expiry), or stopped at a wave boundary when the budget ran out
    /// mid-search.
    pub expired: u64,
    /// Submissions shed with [`ServeError::QuotaExceeded`] (over a
    /// tenant's max-queued cap).
    pub quota_shed: u64,
    /// Of `expired`, the jobs shed *from the queue* (purge or sweeper)
    /// without ever reaching a worker.
    pub queue_shed_expired: u64,
    /// Of `cancelled`, the jobs discarded from the queue unrun.
    pub queue_shed_cancelled: u64,
    /// Requests that panicked during execution (no response; the
    /// client's `wait` returned [`ServeError::Stopped`], and the panic
    /// message went to stderr).
    pub panicked: u64,
    /// Progress events merged under backpressure (see
    /// [`ServiceBuilder::progress_high_water`]).
    pub progress_coalesced: u64,
    /// Engines built by the registry so far.
    pub engines_built: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Per-tenant counters (named tenants only, sorted by name; idle
    /// tenants beyond the account cap are evicted — see
    /// [`TenantStats`]).
    pub tenants: Vec<TenantStats>,
}

impl ServiceStats {
    /// The counters of one named tenant, if it has been seen.
    pub fn tenant(&self, name: &str) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.tenant == name)
    }

    /// Renders the counters as a JSON object — *every* [`ServiceStats`]
    /// field (the exhaustive destructuring below means a new field
    /// fails the compile here until it is emitted), plus a `tenants`
    /// array carrying each tenant's queue-wait percentiles (µs) — so
    /// operators can scrape stats without a JSON dependency.
    pub fn to_json(&self) -> String {
        use maya_trace::json::json_string;
        use std::fmt::Write as _;
        // No `..`: adding a ServiceStats field without deciding its
        // JSON shape must not compile.
        let ServiceStats {
            served,
            cancelled,
            expired,
            quota_shed,
            queue_shed_expired,
            queue_shed_cancelled,
            panicked,
            progress_coalesced,
            engines_built,
            workers,
            queue_capacity,
            tenants,
        } = self;
        let mut out = String::with_capacity(256 + 256 * tenants.len());
        let _ = write!(
            out,
            "{{\"served\":{served},\"cancelled\":{cancelled},\"expired\":{expired},\
             \"quota_shed\":{quota_shed},\"queue_shed_expired\":{queue_shed_expired},\
             \"queue_shed_cancelled\":{queue_shed_cancelled},\"panicked\":{panicked},\
             \"progress_coalesced\":{progress_coalesced},\"engines_built\":{engines_built},\
             \"workers\":{workers},\"queue_capacity\":{queue_capacity},\"tenants\":[",
        );
        for (i, t) in tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let TenantStats {
                tenant,
                queued,
                in_flight,
                admitted,
                served,
                quota_shed,
                expired,
                cancelled,
                wait_samples,
                queue_wait_p50,
                queue_wait_p99,
            } = t;
            let _ = write!(
                out,
                "{{\"tenant\":{},\"queued\":{queued},\"in_flight\":{in_flight},\
                 \"admitted\":{admitted},\"served\":{served},\"quota_shed\":{quota_shed},\
                 \"expired\":{expired},\"cancelled\":{cancelled},\
                 \"wait_samples\":{wait_samples},\"queue_wait_p50_us\":{},\
                 \"queue_wait_p99_us\":{}}}",
                json_string(tenant),
                queue_wait_p50.as_micros(),
                queue_wait_p99.as_micros(),
            );
        }
        out.push_str("]}");
        out
    }
}

/// The multi-tenant prediction service (see module docs).
pub struct MayaService {
    shared: Arc<Shared>,
    queue: Arc<AdmissionQueue>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
    queue_capacity: usize,
    snapshot_dir: Option<PathBuf>,
    restores: Vec<SnapshotRestore>,
}

impl MayaService {
    /// Starts configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::new()
    }

    /// Builds the linked handle/queue-entry pair for one admission.
    fn make_job(
        &self,
        req: Request,
        opts: JobOptions,
    ) -> Result<(JobHandle, QueuedJob), ServeError> {
        if !self.shared.targets.contains_key(req.target()) {
            return Err(ServeError::UnknownTarget(req.target().to_string()));
        }
        let id = self.shared.next_job_id.fetch_add(1, Ordering::Relaxed);
        let (handle, core, outcome_tx) = JobHandle::new(
            id,
            self.shared.progress_high_water,
            self.shared.progress_coalesced.clone(),
        );
        // Lets a cancel wake the scheduler so a still-queued job's
        // verdict is delivered promptly.
        core.attach_queue(Arc::downgrade(&self.queue));
        // lint:allow(wall-clock-in-output): queue_wait telemetry anchor and deadline base — never in payloads
        let enqueued = Instant::now();
        let JobOptions {
            deadline,
            priority,
            tenant,
        } = opts;
        Ok((
            handle,
            QueuedJob {
                req,
                enqueued,
                expires: deadline.map(|d| enqueued + d),
                priority,
                tenant,
                core,
                outcome_tx,
            },
        ))
    }

    /// Submits a request, blocking while the admission queue is full.
    /// Returns the job's [`JobHandle`] — poll it, stream its progress,
    /// cancel it, or block on [`JobHandle::wait`] exactly like the old
    /// one-shot API.
    pub fn submit(&self, req: Request) -> Result<JobHandle, ServeError> {
        self.submit_with(req, JobOptions::default())
    }

    /// [`MayaService::submit`] with per-job options (deadline,
    /// priority, tenant). An over-quota tenant is shed immediately
    /// with [`ServeError::QuotaExceeded`] — quota shedding never
    /// blocks.
    pub fn submit_with(&self, req: Request, opts: JobOptions) -> Result<JobHandle, ServeError> {
        let (handle, job) = self.make_job(req, opts)?;
        self.queue.push(job, true)?;
        Ok(handle)
    }

    /// Non-blocking submit: fails with [`ServeError::Overloaded`] when
    /// the admission queue is full.
    pub fn try_submit(&self, req: Request) -> Result<JobHandle, ServeError> {
        self.try_submit_with(req, JobOptions::default())
    }

    /// [`MayaService::try_submit`] with per-job options (deadline,
    /// priority, tenant).
    pub fn try_submit_with(&self, req: Request, opts: JobOptions) -> Result<JobHandle, ServeError> {
        let (handle, job) = self.make_job(req, opts)?;
        self.queue.push(job, false)?;
        Ok(handle)
    }

    /// Submit + wait in one call.
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Registered target names (sorted).
    pub fn targets(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.targets.keys().cloned().collect();
        names.sort();
        names
    }

    /// The spec a target resolves to.
    pub fn target_spec(&self, target: &str) -> Result<EmulationSpec, ServeError> {
        self.shared
            .targets
            .get(target)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTarget(target.to_string()))
    }

    /// The engine serving `target`, building it if needed. Useful for
    /// out-of-band inspection (cache stats, direct predictions in
    /// tests); requests go through [`MayaService::submit`].
    pub fn engine(&self, target: &str) -> Result<Arc<PredictionEngine>, ServeError> {
        Ok(self.shared.registry.engine(&self.target_spec(target)?))
    }

    /// Memo-cache counters of `target`'s engine ([`CacheStats::default`]
    /// when the engine has not been built yet).
    pub fn cache_stats(&self, target: &str) -> Result<CacheStats, ServeError> {
        let spec = self.target_spec(target)?;
        Ok(self
            .shared
            .registry
            .built_engine(&spec)
            .map(|e| e.cache_stats())
            .unwrap_or_default())
    }

    /// Service counters. Queue-shed verdicts (deadline blown or
    /// cancelled while queued) are counted the moment any scheduling
    /// point observes them, so `expired`/`cancelled` no longer lag
    /// behind dead entries waiting for a worker to dequeue them.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            served: self.shared.served.get(),
            cancelled: self.shared.cancelled.get() + self.queue.shed_cancelled(),
            expired: self.shared.expired.get() + self.queue.shed_expired(),
            quota_shed: self.queue.quota_shed(),
            queue_shed_expired: self.queue.shed_expired(),
            queue_shed_cancelled: self.queue.shed_cancelled(),
            panicked: self.shared.panicked.get(),
            progress_coalesced: self.shared.progress_coalesced.get(),
            engines_built: self.shared.registry.engines_built(),
            workers: self.workers.len(),
            queue_capacity: self.queue_capacity,
            tenants: self.queue.tenant_stats(),
        }
    }

    /// The observability configuration the service was built with.
    pub fn obs_config(&self) -> ObsConfig {
        self.shared.obs.config
    }

    /// A handle to the service's metrics registry (clones share the
    /// instrument set). Useful for registering extra instruments next
    /// to the built-in ones; they ride along in
    /// [`MayaService::obs_snapshot`].
    pub fn obs_registry(&self) -> Registry {
        self.shared.obs.registry.clone()
    }

    /// A handle to the service's span flight recorder.
    pub fn flight_recorder(&self) -> FlightRecorder {
        self.shared.obs.recorder.clone()
    }

    /// Records (or re-records, replacing in place) the span tree for
    /// job `id` in the recent-jobs ring. The wire server uses this to
    /// upsert a worker-recorded tree with the `reply` span appended.
    pub fn record_job_tree(&self, id: u64, tree: SpanNode) {
        if self.shared.obs.config.spans {
            self.shared.obs.job_trees.record(id, tree);
        }
    }

    /// The full observability snapshot a v5 `Scrape` frame answers
    /// with: every registry instrument, the per-tenant wait/service
    /// histograms (`serve.queue_wait_us.tenant.<name>` /
    /// `serve.service_time_us.tenant.<name>`), the aggregate engine
    /// memo-cache counters mirrored under `serve.cache.*`, and the
    /// recent job span trees. Deterministic for a quiesced service:
    /// instruments are sorted by name, trees are oldest first.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        if self.shared.obs.config.metrics {
            // Mirror the engines' memo-cache counters into the
            // registry so a scrape carries them. Targets sharing a
            // cluster share one cache; dedup by cache identity so a
            // shared memo is not double-counted.
            let mut caches: Vec<Arc<maya_estimator::CachingEstimator>> = Vec::new();
            for spec in self.shared.registry.built_specs() {
                if let Some(engine) = self.shared.registry.built_engine(&spec) {
                    let cache = Arc::clone(engine.cache());
                    if !caches.iter().any(|c| Arc::ptr_eq(c, &cache)) {
                        caches.push(cache);
                    }
                }
            }
            let total = caches.iter().fold(CacheStats::default(), |acc, c| {
                let s = c.stats();
                CacheStats {
                    hits: acc.hits + s.hits,
                    misses: acc.misses + s.misses,
                    evictions: acc.evictions + s.evictions,
                }
            });
            let reg = &self.shared.obs.registry;
            reg.counter("serve.cache.hits").store(total.hits);
            reg.counter("serve.cache.misses").store(total.misses);
            reg.counter("serve.cache.evictions").store(total.evictions);
        }
        let mut snap = self.shared.obs.registry.snapshot();
        if self.shared.obs.config.metrics {
            for (tenant, waits, service) in self.queue.tenant_histograms() {
                snap.histograms
                    .push((format!("serve.queue_wait_us.tenant.{tenant}"), waits));
                snap.histograms
                    .push((format!("serve.service_time_us.tenant.{tenant}"), service));
            }
            snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        }
        if self.shared.obs.config.spans {
            snap.recent_jobs = self.shared.obs.job_trees.trees();
        }
        snap
    }

    /// Renders the flight recorder's flat spans plus the recent job
    /// span trees as Chrome-trace JSON (load at `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        chrome_trace_json(
            &self.shared.obs.recorder.drain_sorted(),
            &self.shared.obs.job_trees.trees(),
        )
    }

    /// What happened to each target's memo snapshot at build time, in
    /// target-name order: how many entries each restore loaded, and
    /// which snapshots were skipped as incompatible (with the typed
    /// [`SnapshotError`] explaining why). Targets with no snapshot file
    /// do not appear. Empty when no snapshot directory is configured.
    pub fn snapshot_restores(&self) -> &[SnapshotRestore] {
        &self.restores
    }

    /// Writes every *built* engine's memo to the snapshot directory
    /// (one `<target>.memo` per target; targets sharing an engine write
    /// equal files). Returns how many files were written, or 0 when no
    /// snapshot directory is configured.
    pub fn persist_snapshots(&self) -> Result<usize, ServeError> {
        let Some(dir) = &self.snapshot_dir else {
            return Ok(0);
        };
        let mut written = 0;
        // Walk targets in name order: HashMap iteration order would
        // make the write sequence (and any partial-failure prefix)
        // differ run to run.
        let mut names: Vec<&String> = self.shared.targets.keys().collect();
        names.sort_unstable();
        for name in names {
            let Some(spec) = self.shared.targets.get(name) else {
                continue;
            };
            if let Some(engine) = self.shared.registry.built_engine(spec) {
                let scope = self
                    .shared
                    .registry
                    .estimator_choice()
                    .memo_scope(&spec.cluster);
                engine
                    .cache()
                    .write_snapshot(&snapshot_file(dir, name), &scope)?;
                written += 1;
            }
        }
        Ok(written)
    }

    /// Drains and stops the worker pool: queued requests are still
    /// served, new submits fail with [`ServeError::Stopped`].
    pub fn shutdown(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(sweeper) = self.sweeper.take() {
            let _ = sweeper.join();
        }
    }
}

impl Drop for MayaService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_file_names_are_injective() {
        let dir = Path::new("/snap");
        // The review case: lossy '_' mapping used to collide these.
        let pairs = [
            ("eu/h100", "eu_h100"),
            ("a.40", "a_40"),
            ("x y", "x_y"),
            ("pct%", "pct_"),
        ];
        for (a, b) in pairs {
            assert_ne!(
                snapshot_file(dir, a),
                snapshot_file(dir, b),
                "{a:?} vs {b:?} must not share a memo file"
            );
        }
        // Plain lowercase names stay readable.
        assert_eq!(
            snapshot_file(dir, "h100-node"),
            Path::new("/snap/h100-node.memo")
        );
        // Case-only differences survive case-insensitive filesystems:
        // the escaped output alphabet is all-lowercase, so comparing
        // the lowercased paths is what APFS/NTFS would do.
        let upper = snapshot_file(dir, "EU-node");
        let lower = snapshot_file(dir, "eu-node");
        assert_ne!(
            upper.to_string_lossy().to_lowercase(),
            lower.to_string_lossy().to_lowercase(),
            "case-insensitive collision"
        );
    }
}
