//! Service-level errors (distinct from pipeline errors, which travel
//! inside [`Payload`](crate::request::Payload) variants).

use std::fmt;

use maya_estimator::SnapshotError;

/// Failure at the service boundary: admission, routing, lifecycle.
#[derive(Debug)]
pub enum ServeError {
    /// The request named a cluster target the service does not know.
    UnknownTarget(String),
    /// The bounded admission queue is full (only from
    /// [`try_submit`](crate::MayaService::try_submit); `submit` blocks).
    Overloaded,
    /// The submission's tenant is over its admission quota (max queued
    /// jobs per tenant, see
    /// [`ServiceBuilder::tenant_max_queued`](crate::ServiceBuilder::tenant_max_queued)).
    /// Shed immediately by both `submit` and `try_submit` — unlike
    /// [`ServeError::Overloaded`], waiting alone will not help until
    /// this tenant's own queued jobs drain.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: String,
    },
    /// The service has shut down (or a worker died) before the request
    /// could be accepted or answered.
    Stopped,
    /// Two targets were registered under the same name.
    DuplicateTarget(String),
    /// A service needs at least one registered target.
    NoTargets,
    /// The job was cancelled (via
    /// [`JobHandle::cancel`](crate::JobHandle::cancel)) before
    /// completing. Only reported by the blocking
    /// [`JobHandle::wait`](crate::JobHandle::wait) shim —
    /// [`wait_outcome`](crate::JobHandle::wait_outcome) returns the
    /// typed [`JobOutcome::Cancelled`](crate::JobOutcome::Cancelled)
    /// with any committed-prefix response instead.
    Cancelled,
    /// The job's deadline elapsed (while queued, or at a search wave
    /// boundary). Only reported by the blocking
    /// [`JobHandle::wait`](crate::JobHandle::wait) shim — see
    /// [`ServeError::Cancelled`].
    Expired,
    /// `EstimatorChoice::Custom` holds one fixed estimator instance,
    /// which cannot be correct for more than one cluster; a service
    /// whose targets span distinct clusters must use a cluster-aware
    /// choice (`Oracle`, `Forest`, or `Factory`).
    CustomEstimatorSpansClusters,
    /// Persisting or restoring an estimator memo snapshot failed.
    Snapshot(SnapshotError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTarget(t) => write!(f, "unknown cluster target {t:?}"),
            ServeError::Overloaded => write!(f, "admission queue full"),
            ServeError::QuotaExceeded { tenant } => {
                write!(f, "tenant {tenant:?} is over its admission quota")
            }
            ServeError::Stopped => write!(f, "service stopped"),
            ServeError::DuplicateTarget(t) => write!(f, "target {t:?} registered twice"),
            ServeError::NoTargets => write!(f, "service built with no cluster targets"),
            ServeError::Cancelled => write!(f, "job cancelled"),
            ServeError::Expired => write!(f, "job deadline expired"),
            ServeError::CustomEstimatorSpansClusters => write!(
                f,
                "EstimatorChoice::Custom is one fixed instance and cannot serve multiple \
                 distinct clusters; use EstimatorChoice::Factory instead"
            ),
            ServeError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}
