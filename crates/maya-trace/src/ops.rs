//! Device operations recorded at the CUDA API boundary.

use crate::kernel::KernelKind;

/// Identifier of a CUDA stream within one device context.
///
/// Stream 0 is the default (legacy) stream.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The default CUDA stream.
    pub const DEFAULT: StreamId = StreamId(0);
}

/// Direction of a `cudaMemcpy` operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum MemcpyKind {
    /// Host to device (`cudaMemcpyHostToDevice`).
    HostToDevice,
    /// Device to host (`cudaMemcpyDeviceToHost`).
    DeviceToHost,
    /// Device to device (`cudaMemcpyDeviceToDevice`).
    DeviceToDevice,
    /// Host to host (pageable staging; the emulator may actually copy
    /// small buffers here to satisfy framework verification checks, §7.2).
    HostToHost,
}

impl MemcpyKind {
    /// Trace-export name matching real CUPTI activity names.
    pub const fn name(self) -> &'static str {
        match self {
            MemcpyKind::HostToDevice => "MemcpyHtoD",
            MemcpyKind::DeviceToHost => "MemcpyDtoH",
            MemcpyKind::DeviceToDevice => "MemcpyDtoD",
            MemcpyKind::HostToHost => "MemcpyHtoH",
        }
    }
}

/// The collective-communication primitives NCCL exposes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum CollectiveKind {
    /// `ncclAllReduce`.
    AllReduce,
    /// `ncclAllGather`.
    AllGather,
    /// `ncclReduceScatter`.
    ReduceScatter,
    /// `ncclBroadcast`.
    Broadcast,
    /// `ncclReduce` (to root).
    Reduce,
    /// Point-to-point send (`ncclSend`); pairs with a matching `Recv`.
    Send {
        /// Peer rank *within the communicator*.
        peer: u32,
    },
    /// Point-to-point receive (`ncclRecv`).
    Recv {
        /// Peer rank within the communicator.
        peer: u32,
    },
    /// `ncclAllToAll` (expert parallelism).
    AllToAll,
}

impl CollectiveKind {
    /// NCCL API name for trace export.
    pub const fn name(self) -> &'static str {
        match self {
            CollectiveKind::AllReduce => "ncclAllReduce",
            CollectiveKind::AllGather => "ncclAllGather",
            CollectiveKind::ReduceScatter => "ncclReduceScatter",
            CollectiveKind::Broadcast => "ncclBroadcast",
            CollectiveKind::Reduce => "ncclReduce",
            CollectiveKind::Send { .. } => "ncclSend",
            CollectiveKind::Recv { .. } => "ncclRecv",
            CollectiveKind::AllToAll => "ncclAllToAll",
        }
    }

    /// Number of participants required before the operation can proceed.
    ///
    /// Point-to-point operations involve exactly two ranks; all other
    /// collectives require every communicator member.
    pub fn required_participants(self, comm_size: u32) -> u32 {
        match self {
            CollectiveKind::Send { .. } | CollectiveKind::Recv { .. } => 2,
            _ => comm_size,
        }
    }

    /// Stable small id used in worker signatures.
    pub const fn id(self) -> u8 {
        match self {
            CollectiveKind::AllReduce => 0,
            CollectiveKind::AllGather => 1,
            CollectiveKind::ReduceScatter => 2,
            CollectiveKind::Broadcast => 3,
            CollectiveKind::Reduce => 4,
            CollectiveKind::Send { .. } => 5,
            CollectiveKind::Recv { .. } => 6,
            CollectiveKind::AllToAll => 7,
        }
    }
}

/// Fully-resolved description of one rank's participation in a collective.
///
/// The `(comm_id, seq)` pair is the key the trace collator uses to match
/// the same logical collective across workers (§4.2), and the key the
/// simulator's network wait-map blocks on (Algorithm 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct CollectiveDesc {
    /// Which primitive this is.
    pub kind: CollectiveKind,
    /// Globally-unique communicator id (from `ncclCommInitRank`'s unique id).
    pub comm_id: u64,
    /// Per-communicator call sequence number.
    pub seq: u32,
    /// Payload bytes contributed by this rank.
    pub bytes: u64,
    /// Communicator size.
    pub nranks: u32,
    /// This rank's position within the communicator.
    pub rank_in_comm: u32,
}

/// One operation recorded at the device-API boundary.
///
/// Compute kernels carry full [`KernelKind`] metadata; management calls
/// (`cudaMalloc`, event APIs, synchronization) are recorded so that the
/// simulator can reproduce the dependency structure the training framework
/// created.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum DeviceOp {
    /// A compute-kernel launch (async on its stream).
    KernelLaunch {
        /// Kernel metadata.
        kernel: KernelKind,
    },
    /// `cudaMemcpyAsync`.
    MemcpyAsync {
        /// Bytes transferred.
        bytes: u64,
        /// Transfer direction.
        kind: MemcpyKind,
        /// Whether the call is synchronous w.r.t. the host
        /// (`cudaMemcpy` rather than `cudaMemcpyAsync`).
        sync: bool,
    },
    /// `cudaMalloc`; the emulator's allocator assigned `ptr`.
    Malloc {
        /// Bytes requested.
        bytes: u64,
        /// Virtual device pointer returned.
        ptr: u64,
    },
    /// `cudaFree`.
    Free {
        /// Pointer being released.
        ptr: u64,
    },
    /// `cudaEventRecord` on this stream.
    EventRecord {
        /// Event handle.
        event: u64,
        /// Re-use version of the handle (paper Algorithm 3 keys the wait
        /// map on `(event, version)` pairs).
        version: u32,
    },
    /// `cudaStreamWaitEvent`: this stream blocks until the event fires.
    StreamWaitEvent {
        /// Event handle.
        event: u64,
        /// Handle version.
        version: u32,
    },
    /// `cudaEventSynchronize`: the *host* blocks until the event fires.
    EventSynchronize {
        /// Event handle.
        event: u64,
        /// Handle version.
        version: u32,
    },
    /// `cudaStreamSynchronize`: host blocks until this stream drains.
    StreamSynchronize,
    /// `cudaDeviceSynchronize`: host blocks until all streams drain.
    DeviceSynchronize,
    /// An NCCL collective kernel enqueued on this stream.
    Collective {
        /// Matched collective descriptor.
        desc: CollectiveDesc,
    },
}

impl DeviceOp {
    /// Trace-export operation name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceOp::KernelLaunch { kernel } => kernel.name(),
            DeviceOp::MemcpyAsync { kind, .. } => kind.name(),
            DeviceOp::Malloc { .. } => "cudaMalloc",
            DeviceOp::Free { .. } => "cudaFree",
            DeviceOp::EventRecord { .. } => "cudaEventRecord",
            DeviceOp::StreamWaitEvent { .. } => "cudaStreamWaitEvent",
            DeviceOp::EventSynchronize { .. } => "cudaEventSynchronize",
            DeviceOp::StreamSynchronize => "cudaStreamSynchronize",
            DeviceOp::DeviceSynchronize => "cudaDeviceSynchronize",
            DeviceOp::Collective { desc } => desc.kind.name(),
        }
    }

    /// Whether this op occupies device execution resources (has a duration
    /// on a stream), as opposed to being pure bookkeeping.
    pub fn is_timed(&self) -> bool {
        matches!(
            self,
            DeviceOp::KernelLaunch { .. }
                | DeviceOp::MemcpyAsync { .. }
                | DeviceOp::Collective { .. }
        )
    }

    /// Kernel metadata if this is a compute launch.
    pub fn as_kernel(&self) -> Option<&KernelKind> {
        match self {
            DeviceOp::KernelLaunch { kernel } => Some(kernel),
            _ => None,
        }
    }

    /// Collective descriptor if this is a collective.
    pub fn as_collective(&self) -> Option<&CollectiveDesc> {
        match self {
            DeviceOp::Collective { desc } => Some(desc),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::Dtype;

    #[test]
    fn op_names() {
        let k = DeviceOp::KernelLaunch {
            kernel: KernelKind::Gemm {
                m: 1,
                n: 1,
                k: 1,
                dtype: Dtype::Fp32,
            },
        };
        assert_eq!(k.name(), "cublasSgemm_v2");
        assert_eq!(DeviceOp::DeviceSynchronize.name(), "cudaDeviceSynchronize");
        assert_eq!(
            DeviceOp::MemcpyAsync {
                bytes: 1,
                kind: MemcpyKind::HostToDevice,
                sync: false
            }
            .name(),
            "MemcpyHtoD"
        );
    }

    #[test]
    fn timed_classification() {
        assert!(DeviceOp::MemcpyAsync {
            bytes: 1,
            kind: MemcpyKind::DeviceToHost,
            sync: true
        }
        .is_timed());
        assert!(!DeviceOp::Malloc { bytes: 1, ptr: 0 }.is_timed());
        assert!(!DeviceOp::StreamSynchronize.is_timed());
    }

    #[test]
    fn collective_participants() {
        assert_eq!(CollectiveKind::AllReduce.required_participants(8), 8);
        assert_eq!(CollectiveKind::Send { peer: 3 }.required_participants(8), 2);
        assert_eq!(
            CollectiveKind::Recv { peer: 1 }.required_participants(16),
            2
        );
    }

    #[test]
    fn accessors() {
        let desc = CollectiveDesc {
            kind: CollectiveKind::AllReduce,
            comm_id: 7,
            seq: 0,
            bytes: 1024,
            nranks: 4,
            rank_in_comm: 2,
        };
        let op = DeviceOp::Collective { desc };
        assert_eq!(op.as_collective().unwrap().comm_id, 7);
        assert!(op.as_kernel().is_none());
    }
}
