//! Integer-nanosecond time type used throughout the simulator stack.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, stored as integer nanoseconds.
///
/// A single type is used for both instants and durations, mirroring how the
/// discrete-event simulator in the paper advances a scalar clock
/// (Algorithm 1). Arithmetic saturates on underflow so that ill-ordered
/// subtractions surface as zero rather than panicking inside the simulator.
///
/// # Examples
///
/// ```
/// use maya_trace::SimTime;
/// let t = SimTime::from_us(3.0) + SimTime::from_us(2.0);
/// assert_eq!(t.as_us(), 5.0);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant / empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds a time from fractional microseconds.
    pub fn from_us(us: f64) -> Self {
        SimTime((us * 1e3).max(0.0).round() as u64)
    }

    /// Builds a time from fractional milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms * 1e6).max(0.0).round() as u64)
    }

    /// Builds a time from fractional seconds.
    pub fn from_secs(s: f64) -> Self {
        SimTime((s * 1e9).max(0.0).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; never underflows.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Scales the time by a dimensionless factor, rounding to nanoseconds.
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime((self.0 as f64 * factor).max(0.0).round() as u64)
    }

    /// The larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs.max(1))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_us(1.0).as_ns(), 1_000);
        assert_eq!(SimTime::from_ms(1.0).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_secs(1.0).as_ns(), 1_000_000_000);
        assert!((SimTime::from_ms(2.5).as_ms() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn saturating_arithmetic() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(9);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_ns(4));
        assert_eq!(SimTime::MAX + a, SimTime::MAX);
    }

    #[test]
    fn scaling_and_ordering() {
        let t = SimTime::from_us(10.0);
        assert_eq!(t.scale(2.0), SimTime::from_us(20.0));
        assert_eq!(t.scale(0.5), SimTime::from_us(5.0));
        assert_eq!(t.max(SimTime::from_us(3.0)), t);
        assert_eq!(t.min(SimTime::from_us(3.0)), SimTime::from_us(3.0));
    }

    #[test]
    fn sum_and_display() {
        let total: SimTime = [1.0, 2.0, 3.0].iter().map(|&u| SimTime::from_us(u)).sum();
        assert_eq!(total, SimTime::from_us(6.0));
        assert_eq!(format!("{}", SimTime::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_us(12.0)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
    }
}
