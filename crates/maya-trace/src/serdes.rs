//! Hand-written [`serde::Serialize`] / [`serde::Deserialize`] codecs for
//! the trace vocabulary, over the vendored serde's compact token format.
//!
//! These power the persistence features downstream — most importantly
//! the estimator memo snapshots in `maya-estimator`, which serialize
//! `(KernelKind, SimTime)`-style pairs so a service process can
//! warm-start the next one. The no-op `#[derive(serde::Serialize)]`
//! annotations on the types themselves are registry-serde compatibility
//! markers; the real token-level codecs live here (see
//! `vendor/README.md` for why).
//!
//! Every codec is a plain tag-plus-fields scheme: enum variants write a
//! short stable tag token followed by their fields in declaration order.
//! Tags are part of the on-disk format — renaming one invalidates
//! existing snapshots, which the snapshot header version accounts for.

use serde::{compact, Deserialize, Serialize};

use crate::dtype::Dtype;
use crate::kernel::KernelKind;
use crate::ops::{CollectiveKind, MemcpyKind};
use crate::time::SimTime;

impl Serialize for SimTime {
    fn serialize(&self, w: &mut compact::Writer) {
        self.0.serialize(w);
    }
}

impl<'de> Deserialize<'de> for SimTime {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(SimTime(u64::deserialize(r)?))
    }
}

impl Serialize for Dtype {
    fn serialize(&self, w: &mut compact::Writer) {
        w.tag(self.name());
    }
}

impl<'de> Deserialize<'de> for Dtype {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let t = r.raw_token()?;
        [
            Dtype::Fp32,
            Dtype::Fp16,
            Dtype::Bf16,
            Dtype::Tf32,
            Dtype::Int64,
            Dtype::Int32,
            Dtype::Int8,
        ]
        .into_iter()
        .find(|d| d.name() == t)
        .ok_or_else(|| compact::Error::parse(t, "dtype"))
    }
}

impl Serialize for MemcpyKind {
    fn serialize(&self, w: &mut compact::Writer) {
        w.tag(self.name());
    }
}

impl<'de> Deserialize<'de> for MemcpyKind {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let t = r.raw_token()?;
        [
            MemcpyKind::HostToDevice,
            MemcpyKind::DeviceToHost,
            MemcpyKind::DeviceToDevice,
            MemcpyKind::HostToHost,
        ]
        .into_iter()
        .find(|k| k.name() == t)
        .ok_or_else(|| compact::Error::parse(t, "memcpy kind"))
    }
}

impl Serialize for CollectiveKind {
    fn serialize(&self, w: &mut compact::Writer) {
        match self {
            CollectiveKind::AllReduce => w.tag("all_reduce"),
            CollectiveKind::AllGather => w.tag("all_gather"),
            CollectiveKind::ReduceScatter => w.tag("reduce_scatter"),
            CollectiveKind::Broadcast => w.tag("broadcast"),
            CollectiveKind::Reduce => w.tag("reduce"),
            CollectiveKind::Send { peer } => {
                w.tag("send");
                peer.serialize(w);
            }
            CollectiveKind::Recv { peer } => {
                w.tag("recv");
                peer.serialize(w);
            }
            CollectiveKind::AllToAll => w.tag("all_to_all"),
        }
    }
}

impl<'de> Deserialize<'de> for CollectiveKind {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "all_reduce" => CollectiveKind::AllReduce,
            "all_gather" => CollectiveKind::AllGather,
            "reduce_scatter" => CollectiveKind::ReduceScatter,
            "broadcast" => CollectiveKind::Broadcast,
            "reduce" => CollectiveKind::Reduce,
            "send" => CollectiveKind::Send {
                peer: u32::deserialize(r)?,
            },
            "recv" => CollectiveKind::Recv {
                peer: u32::deserialize(r)?,
            },
            "all_to_all" => CollectiveKind::AllToAll,
            t => return Err(compact::Error::parse(t, "collective kind")),
        })
    }
}

impl Serialize for KernelKind {
    fn serialize(&self, w: &mut compact::Writer) {
        match *self {
            KernelKind::Gemm { m, n, k, dtype } => {
                w.tag("gemm");
                (m, n, k).serialize(w);
                dtype.serialize(w);
            }
            KernelKind::GemmStridedBatched {
                m,
                n,
                k,
                batch,
                dtype,
            } => {
                w.tag("gemm_sb");
                (m, n, k).serialize(w);
                batch.serialize(w);
                dtype.serialize(w);
            }
            KernelKind::LtMatmul { m, n, k, dtype } => {
                w.tag("lt_matmul");
                (m, n, k).serialize(w);
                dtype.serialize(w);
            }
            KernelKind::ConvForward {
                n,
                c,
                h,
                w: width,
                k,
                r,
                stride,
                dtype,
            } => {
                w.tag("conv_fwd");
                (n, c, h).serialize(w);
                (width, k, r).serialize(w);
                stride.serialize(w);
                dtype.serialize(w);
            }
            KernelKind::ConvBackwardData {
                n,
                c,
                h,
                w: width,
                k,
                r,
                stride,
                dtype,
            } => {
                w.tag("conv_bwd_data");
                (n, c, h).serialize(w);
                (width, k, r).serialize(w);
                stride.serialize(w);
                dtype.serialize(w);
            }
            KernelKind::ConvBackwardFilter {
                n,
                c,
                h,
                w: width,
                k,
                r,
                stride,
                dtype,
            } => {
                w.tag("conv_bwd_filt");
                (n, c, h).serialize(w);
                (width, k, r).serialize(w);
                stride.serialize(w);
                dtype.serialize(w);
            }
            KernelKind::Elementwise {
                numel,
                arity,
                dtype,
            } => {
                w.tag("elementwise");
                numel.serialize(w);
                arity.serialize(w);
                dtype.serialize(w);
            }
            KernelKind::VectorizedElementwise { numel, dtype } => {
                w.tag("vec_elementwise");
                numel.serialize(w);
                dtype.serialize(w);
            }
            KernelKind::FusedDropout { numel } => {
                w.tag("fused_dropout");
                numel.serialize(w);
            }
            KernelKind::SoftmaxForward { rows, cols, masked } => {
                w.tag("softmax_fwd");
                (rows, cols, masked).serialize(w);
            }
            KernelKind::SoftmaxBackward { rows, cols, masked } => {
                w.tag("softmax_bwd");
                (rows, cols, masked).serialize(w);
            }
            KernelKind::LayerNormForward { rows, cols } => {
                w.tag("ln_fwd");
                (rows, cols).serialize(w);
            }
            KernelKind::LayerNormBackwardGamma { rows, cols } => {
                w.tag("ln_bwd_gamma");
                (rows, cols).serialize(w);
            }
            KernelKind::LayerNormBackwardInput { rows, cols } => {
                w.tag("ln_bwd_input");
                (rows, cols).serialize(w);
            }
            KernelKind::EmbeddingForward { tokens, hidden } => {
                w.tag("emb_fwd");
                (tokens, hidden).serialize(w);
            }
            KernelKind::EmbeddingBackward { tokens, hidden } => {
                w.tag("emb_bwd");
                (tokens, hidden).serialize(w);
            }
            KernelKind::CrossEntropyForward { tokens, vocab } => {
                w.tag("ce_fwd");
                (tokens, vocab).serialize(w);
            }
            KernelKind::CrossEntropyBackward { tokens, vocab } => {
                w.tag("ce_bwd");
                (tokens, vocab).serialize(w);
            }
            KernelKind::MultiTensorApply {
                numel,
                ops_per_elem,
            } => {
                w.tag("multi_tensor");
                numel.serialize(w);
                ops_per_elem.serialize(w);
            }
            KernelKind::Reduce { numel, dtype } => {
                w.tag("reduce");
                numel.serialize(w);
                dtype.serialize(w);
            }
            KernelKind::CatCopy { numel, aligned } => {
                w.tag("cat_copy");
                (numel, aligned).serialize(w);
            }
            KernelKind::Memset { bytes } => {
                w.tag("memset");
                bytes.serialize(w);
            }
            KernelKind::TriuTril { numel } => {
                w.tag("triu_tril");
                numel.serialize(w);
            }
            KernelKind::BatchNorm {
                numel,
                channels,
                forward,
            } => {
                w.tag("batchnorm");
                (numel, channels, forward).serialize(w);
            }
            KernelKind::Pool {
                numel,
                window,
                forward,
            } => {
                w.tag("pool");
                (numel, window, forward).serialize(w);
            }
            KernelKind::FusedTriton {
                numel,
                num_instrs,
                dtype,
            } => {
                w.tag("fused_triton");
                numel.serialize(w);
                num_instrs.serialize(w);
                dtype.serialize(w);
            }
        }
    }
}

impl<'de> Deserialize<'de> for KernelKind {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "gemm" => {
                let (m, n, k) = Deserialize::deserialize(r)?;
                KernelKind::Gemm {
                    m,
                    n,
                    k,
                    dtype: Dtype::deserialize(r)?,
                }
            }
            "gemm_sb" => {
                let (m, n, k) = Deserialize::deserialize(r)?;
                KernelKind::GemmStridedBatched {
                    m,
                    n,
                    k,
                    batch: u64::deserialize(r)?,
                    dtype: Dtype::deserialize(r)?,
                }
            }
            "lt_matmul" => {
                let (m, n, k) = Deserialize::deserialize(r)?;
                KernelKind::LtMatmul {
                    m,
                    n,
                    k,
                    dtype: Dtype::deserialize(r)?,
                }
            }
            tag @ ("conv_fwd" | "conv_bwd_data" | "conv_bwd_filt") => {
                let (n, c, h) = Deserialize::deserialize(r)?;
                let (w, k, rr) = Deserialize::deserialize(r)?;
                let stride = u64::deserialize(r)?;
                let dtype = Dtype::deserialize(r)?;
                match tag {
                    "conv_fwd" => KernelKind::ConvForward {
                        n,
                        c,
                        h,
                        w,
                        k,
                        r: rr,
                        stride,
                        dtype,
                    },
                    "conv_bwd_data" => KernelKind::ConvBackwardData {
                        n,
                        c,
                        h,
                        w,
                        k,
                        r: rr,
                        stride,
                        dtype,
                    },
                    _ => KernelKind::ConvBackwardFilter {
                        n,
                        c,
                        h,
                        w,
                        k,
                        r: rr,
                        stride,
                        dtype,
                    },
                }
            }
            "elementwise" => KernelKind::Elementwise {
                numel: u64::deserialize(r)?,
                arity: u8::deserialize(r)?,
                dtype: Dtype::deserialize(r)?,
            },
            "vec_elementwise" => KernelKind::VectorizedElementwise {
                numel: u64::deserialize(r)?,
                dtype: Dtype::deserialize(r)?,
            },
            "fused_dropout" => KernelKind::FusedDropout {
                numel: u64::deserialize(r)?,
            },
            "softmax_fwd" => {
                let (rows, cols, masked) = Deserialize::deserialize(r)?;
                KernelKind::SoftmaxForward { rows, cols, masked }
            }
            "softmax_bwd" => {
                let (rows, cols, masked) = Deserialize::deserialize(r)?;
                KernelKind::SoftmaxBackward { rows, cols, masked }
            }
            "ln_fwd" => {
                let (rows, cols) = Deserialize::deserialize(r)?;
                KernelKind::LayerNormForward { rows, cols }
            }
            "ln_bwd_gamma" => {
                let (rows, cols) = Deserialize::deserialize(r)?;
                KernelKind::LayerNormBackwardGamma { rows, cols }
            }
            "ln_bwd_input" => {
                let (rows, cols) = Deserialize::deserialize(r)?;
                KernelKind::LayerNormBackwardInput { rows, cols }
            }
            "emb_fwd" => {
                let (tokens, hidden) = Deserialize::deserialize(r)?;
                KernelKind::EmbeddingForward { tokens, hidden }
            }
            "emb_bwd" => {
                let (tokens, hidden) = Deserialize::deserialize(r)?;
                KernelKind::EmbeddingBackward { tokens, hidden }
            }
            "ce_fwd" => {
                let (tokens, vocab) = Deserialize::deserialize(r)?;
                KernelKind::CrossEntropyForward { tokens, vocab }
            }
            "ce_bwd" => {
                let (tokens, vocab) = Deserialize::deserialize(r)?;
                KernelKind::CrossEntropyBackward { tokens, vocab }
            }
            "multi_tensor" => KernelKind::MultiTensorApply {
                numel: u64::deserialize(r)?,
                ops_per_elem: u8::deserialize(r)?,
            },
            "reduce" => KernelKind::Reduce {
                numel: u64::deserialize(r)?,
                dtype: Dtype::deserialize(r)?,
            },
            "cat_copy" => {
                let (numel, aligned) = Deserialize::deserialize(r)?;
                KernelKind::CatCopy { numel, aligned }
            }
            "memset" => KernelKind::Memset {
                bytes: u64::deserialize(r)?,
            },
            "triu_tril" => KernelKind::TriuTril {
                numel: u64::deserialize(r)?,
            },
            "batchnorm" => {
                let (numel, channels, forward) = Deserialize::deserialize(r)?;
                KernelKind::BatchNorm {
                    numel,
                    channels,
                    forward,
                }
            }
            "pool" => {
                let (numel, window, forward) = Deserialize::deserialize(r)?;
                KernelKind::Pool {
                    numel,
                    window,
                    forward,
                }
            }
            "fused_triton" => KernelKind::FusedTriton {
                numel: u64::deserialize(r)?,
                num_instrs: u32::deserialize(r)?,
                dtype: Dtype::deserialize(r)?,
            },
            t => return Err(compact::Error::parse(t, "kernel kind")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(v: T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        serde::from_str(&serde::to_string(&v)).expect("round trip")
    }

    #[test]
    fn sim_time_round_trips() {
        for t in [SimTime::ZERO, SimTime::from_ns(1), SimTime::MAX] {
            assert_eq!(round_trip(t), t);
        }
    }

    #[test]
    fn dtype_round_trips() {
        for d in [
            Dtype::Fp32,
            Dtype::Fp16,
            Dtype::Bf16,
            Dtype::Tf32,
            Dtype::Int64,
            Dtype::Int32,
            Dtype::Int8,
        ] {
            assert_eq!(round_trip(d), d);
        }
    }

    #[test]
    fn memcpy_kind_round_trips() {
        for k in [
            MemcpyKind::HostToDevice,
            MemcpyKind::DeviceToHost,
            MemcpyKind::DeviceToDevice,
            MemcpyKind::HostToHost,
        ] {
            assert_eq!(round_trip(k), k);
        }
    }

    #[test]
    fn collective_kind_round_trips() {
        for k in [
            CollectiveKind::AllReduce,
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::Broadcast,
            CollectiveKind::Reduce,
            CollectiveKind::Send { peer: 3 },
            CollectiveKind::Recv { peer: 7 },
            CollectiveKind::AllToAll,
        ] {
            assert_eq!(round_trip(k), k);
        }
    }

    #[test]
    fn every_kernel_family_round_trips() {
        let d = Dtype::Bf16;
        let kinds = [
            KernelKind::Gemm {
                m: 1024,
                n: 512,
                k: 2048,
                dtype: d,
            },
            KernelKind::GemmStridedBatched {
                m: 64,
                n: 64,
                k: 64,
                batch: 12,
                dtype: d,
            },
            KernelKind::LtMatmul {
                m: 8,
                n: 8,
                k: 8,
                dtype: d,
            },
            KernelKind::ConvForward {
                n: 32,
                c: 64,
                h: 56,
                w: 56,
                k: 128,
                r: 3,
                stride: 2,
                dtype: d,
            },
            KernelKind::ConvBackwardData {
                n: 1,
                c: 3,
                h: 8,
                w: 8,
                k: 4,
                r: 3,
                stride: 1,
                dtype: d,
            },
            KernelKind::ConvBackwardFilter {
                n: 1,
                c: 3,
                h: 8,
                w: 8,
                k: 4,
                r: 3,
                stride: 1,
                dtype: d,
            },
            KernelKind::Elementwise {
                numel: 1 << 20,
                arity: 2,
                dtype: d,
            },
            KernelKind::VectorizedElementwise {
                numel: 77,
                dtype: d,
            },
            KernelKind::FusedDropout { numel: 5 },
            KernelKind::SoftmaxForward {
                rows: 9,
                cols: 4,
                masked: true,
            },
            KernelKind::SoftmaxBackward {
                rows: 9,
                cols: 4,
                masked: false,
            },
            KernelKind::LayerNormForward { rows: 2, cols: 3 },
            KernelKind::LayerNormBackwardGamma { rows: 2, cols: 3 },
            KernelKind::LayerNormBackwardInput { rows: 2, cols: 3 },
            KernelKind::EmbeddingForward {
                tokens: 10,
                hidden: 20,
            },
            KernelKind::EmbeddingBackward {
                tokens: 10,
                hidden: 20,
            },
            KernelKind::CrossEntropyForward {
                tokens: 4,
                vocab: 50000,
            },
            KernelKind::CrossEntropyBackward {
                tokens: 4,
                vocab: 50000,
            },
            KernelKind::MultiTensorApply {
                numel: 100,
                ops_per_elem: 4,
            },
            KernelKind::Reduce {
                numel: 33,
                dtype: d,
            },
            KernelKind::CatCopy {
                numel: 44,
                aligned: true,
            },
            KernelKind::Memset { bytes: 4096 },
            KernelKind::TriuTril { numel: 55 },
            KernelKind::BatchNorm {
                numel: 66,
                channels: 11,
                forward: false,
            },
            KernelKind::Pool {
                numel: 88,
                window: 2,
                forward: true,
            },
            KernelKind::FusedTriton {
                numel: 99,
                num_instrs: 17,
                dtype: d,
            },
        ];
        for k in kinds {
            assert_eq!(round_trip(k), k, "{k:?}");
        }
    }
}
