//! Per-worker and job-level trace containers.

use std::collections::BTreeMap;

use crate::ops::{DeviceOp, StreamId};
use crate::time::SimTime;

/// One entry in a worker's emulation trace.
///
/// `host_delay` is the CPU-side gap between the previous API call and this
/// one — the paper measures these as "wall-clock deltas between API calls
/// during emulation" (§4.2) and replays them as blocking host dispatch
/// work in the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub struct TraceEvent {
    /// Stream the operation targets (ignored for host-blocking ops).
    pub stream: StreamId,
    /// The recorded operation.
    pub op: DeviceOp,
    /// Host time spent since the previous API call (dispatch overhead,
    /// Python/framework work, etc.).
    pub host_delay: SimTime,
}

/// Summary statistics the emulator computes while tracing one worker.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct WorkerTraceSummary {
    /// Peak bytes simultaneously allocated on the device.
    pub peak_mem_bytes: u64,
    /// Bytes allocated at the end of the trace (steady-state footprint).
    pub final_mem_bytes: u64,
    /// Number of allocations performed.
    pub num_allocs: u64,
    /// Number of kernel launches recorded.
    pub num_kernels: u64,
    /// Number of collective operations recorded.
    pub num_collectives: u64,
    /// Whether the worker ran out of device memory during emulation.
    pub oom: bool,
}

/// The complete trace of one emulated worker (one GPU rank).
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct WorkerTrace {
    /// Global rank of this worker within the job.
    pub rank: u32,
    /// Ordered API-call records.
    pub events: Vec<TraceEvent>,
    /// Emulator-computed summary.
    pub summary: WorkerTraceSummary,
}

impl WorkerTrace {
    /// Creates an empty trace for `rank`.
    pub fn new(rank: u32) -> Self {
        WorkerTrace {
            rank,
            events: Vec::new(),
            summary: WorkerTraceSummary::default(),
        }
    }

    /// Total host-side time recorded across all events.
    pub fn total_host_time(&self) -> SimTime {
        self.events.iter().map(|e| e.host_delay).sum()
    }

    /// Iterator over kernel launches only.
    pub fn kernels(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.op, DeviceOp::KernelLaunch { .. }))
    }

    /// Distinct stream ids used by this worker.
    pub fn streams_used(&self) -> Vec<StreamId> {
        let mut s: Vec<StreamId> = self.events.iter().map(|e| e.stream).collect();
        s.sort_unstable();
        s.dedup();
        s
    }
}

/// A collated, job-level trace: worker traces plus the
/// communicator-group structure the collator reconstructed.
///
/// A job may be *sparse*: after worker deduplication (§4.2) only one
/// representative per equivalence class remains, while `nranks` and
/// `comm_groups` still describe the full job. Consumers use
/// [`JobTrace::is_present`] to adjust collective rendezvous counts.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct JobTrace {
    /// Number of ranks in the full job.
    pub nranks: u32,
    /// Per-rank traces, sorted by rank; possibly a subset of all ranks.
    pub workers: Vec<WorkerTrace>,
    /// Communicator membership: `comm_id -> global ranks`, indexed by the
    /// rank's position *within* the communicator (`members[i]` is the
    /// global rank whose `rank_in_comm == i`).
    pub comm_groups: BTreeMap<u64, Vec<u32>>,
}

impl JobTrace {
    /// Total kernel launches across the job.
    pub fn total_kernels(&self) -> u64 {
        self.workers.iter().map(|w| w.summary.num_kernels).sum()
    }

    /// Total events across the job.
    pub fn total_events(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// Peak device memory across ranks.
    pub fn peak_mem_bytes(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.summary.peak_mem_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Whether any rank hit an out-of-memory condition during emulation.
    pub fn any_oom(&self) -> bool {
        self.workers.iter().any(|w| w.summary.oom)
    }

    /// Index of the worker trace for `rank`, if it is present.
    pub fn worker_index(&self, rank: u32) -> Option<usize> {
        self.workers.binary_search_by_key(&rank, |w| w.rank).ok()
    }

    /// Whether `rank` was emulated (false for deduplicated ranks).
    pub fn is_present(&self, rank: u32) -> bool {
        self.worker_index(rank).is_some()
    }

    /// How many of `members` are present in this (possibly sparse) job.
    pub fn present_count(&self, members: &[u32]) -> u32 {
        members.iter().filter(|&&m| self.is_present(m)).count() as u32
    }

    /// Whether every rank of the job was emulated.
    pub fn is_dense(&self) -> bool {
        self.workers.len() == self.nranks as usize
    }

    /// Validates internal consistency: sorted unique ranks in range,
    /// communicator members in range, and collective descriptors that
    /// agree with the group map.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers.len() > self.nranks as usize {
            return Err(format!(
                "job declares {} ranks but holds {} worker traces",
                self.nranks,
                self.workers.len()
            ));
        }
        for pair in self.workers.windows(2) {
            if pair[0].rank >= pair[1].rank {
                return Err(format!(
                    "worker ranks not strictly increasing: {} then {}",
                    pair[0].rank, pair[1].rank
                ));
            }
        }
        for w in &self.workers {
            if w.rank >= self.nranks {
                return Err(format!(
                    "worker rank {} out of range {}",
                    w.rank, self.nranks
                ));
            }
        }
        for (comm, members) in &self.comm_groups {
            for &m in members {
                if m >= self.nranks {
                    return Err(format!("comm {comm:#x} references out-of-range rank {m}"));
                }
            }
        }
        for w in &self.workers {
            for e in &w.events {
                if let DeviceOp::Collective { desc } = e.op {
                    match self.comm_groups.get(&desc.comm_id) {
                        None => {
                            return Err(format!(
                                "rank {} uses unknown communicator {:#x}",
                                w.rank, desc.comm_id
                            ))
                        }
                        Some(members) => {
                            if members.len() != desc.nranks as usize {
                                return Err(format!(
                                    "comm {:#x} has {} members but desc says {}",
                                    desc.comm_id,
                                    members.len(),
                                    desc.nranks
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;
    use crate::ops::{CollectiveDesc, CollectiveKind};
    use crate::Dtype;

    fn kernel_event() -> TraceEvent {
        TraceEvent {
            stream: StreamId::DEFAULT,
            op: DeviceOp::KernelLaunch {
                kernel: KernelKind::Gemm {
                    m: 2,
                    n: 2,
                    k: 2,
                    dtype: Dtype::Fp32,
                },
            },
            host_delay: SimTime::from_us(1.0),
        }
    }

    #[test]
    fn worker_trace_accessors() {
        let mut w = WorkerTrace::new(3);
        w.events.push(kernel_event());
        w.events.push(TraceEvent {
            stream: StreamId(2),
            op: DeviceOp::DeviceSynchronize,
            host_delay: SimTime::from_us(2.0),
        });
        assert_eq!(w.rank, 3);
        assert_eq!(w.total_host_time(), SimTime::from_us(3.0));
        assert_eq!(w.kernels().count(), 1);
        assert_eq!(w.streams_used(), vec![StreamId(0), StreamId(2)]);
    }

    #[test]
    fn job_trace_validation_catches_bad_ranks() {
        // Sparse jobs are fine...
        let sparse = JobTrace {
            nranks: 2,
            workers: vec![WorkerTrace::new(0)],
            comm_groups: BTreeMap::new(),
        };
        assert!(sparse.validate().is_ok());
        assert!(!sparse.is_dense());
        assert!(sparse.is_present(0) && !sparse.is_present(1));
        assert_eq!(sparse.present_count(&[0, 1]), 1);
        // ...but out-of-range or duplicate ranks are not.
        let out_of_range = JobTrace {
            nranks: 2,
            workers: vec![WorkerTrace::new(5)],
            comm_groups: BTreeMap::new(),
        };
        assert!(out_of_range.validate().is_err());
        let dup = JobTrace {
            nranks: 2,
            workers: vec![WorkerTrace::new(0), WorkerTrace::new(0)],
            comm_groups: BTreeMap::new(),
        };
        assert!(dup.validate().is_err());
    }

    #[test]
    fn job_trace_validation_catches_unknown_comm() {
        let mut w = WorkerTrace::new(0);
        w.events.push(TraceEvent {
            stream: StreamId::DEFAULT,
            op: DeviceOp::Collective {
                desc: CollectiveDesc {
                    kind: CollectiveKind::AllReduce,
                    comm_id: 99,
                    seq: 0,
                    bytes: 8,
                    nranks: 1,
                    rank_in_comm: 0,
                },
            },
            host_delay: SimTime::ZERO,
        });
        let job = JobTrace {
            nranks: 1,
            workers: vec![w],
            comm_groups: BTreeMap::new(),
        };
        let err = job.validate().unwrap_err();
        assert!(err.contains("unknown communicator"), "{err}");
    }

    #[test]
    fn job_trace_validation_accepts_consistent_job() {
        let mut w = WorkerTrace::new(0);
        w.summary.num_kernels = 1;
        w.events.push(kernel_event());
        let mut groups = BTreeMap::new();
        groups.insert(1u64, vec![0u32]);
        let job = JobTrace {
            nranks: 1,
            workers: vec![w],
            comm_groups: groups,
        };
        assert!(job.validate().is_ok());
        assert_eq!(job.total_kernels(), 1);
        assert_eq!(job.total_events(), 1);
        assert!(!job.any_oom());
    }
}
