//! Trace schema for the Maya GPU-runtime-emulation reproduction.
//!
//! This crate defines the vocabulary shared by every stage of the Maya
//! pipeline: the kinds of device operations a training workload issues
//! ([`DeviceOp`]), the metadata captured for compute kernels
//! ([`KernelKind`]), per-worker traces recorded by the emulator
//! ([`WorkerTrace`]), and the collated job-level trace consumed by the
//! simulator ([`JobTrace`]).
//!
//! The paper's emulator records "compute kernels, memory operations, and
//! synchronization events" together with "essential metadata including
//! input/output tensor shapes, data types, and memory layouts" (§4.2). The
//! types here encode exactly that metadata, at CUDA-API granularity.

pub mod dtype;
pub mod event;
pub mod json;
pub mod kernel;
pub mod ops;
pub mod serdes;
pub mod time;

pub use dtype::Dtype;
pub use event::{JobTrace, TraceEvent, WorkerTrace, WorkerTraceSummary};
pub use kernel::KernelKind;
pub use ops::{CollectiveDesc, CollectiveKind, DeviceOp, MemcpyKind, StreamId};
pub use time::SimTime;
