//! Compute-kernel metadata captured by the emulator.
//!
//! Each variant of [`KernelKind`] corresponds to a family of CUDA kernels
//! observed in real traces; the names returned by [`KernelKind::name`]
//! match the kernel symbol families reported in the paper's Tables 7-9
//! (e.g. `cublasSgemm_v2`, `cuApplyLayerNorm`,
//! `masked_softmax_warp_forward`, `cudnnConvolutionForward`).
//!
//! Variants carry the operand metadata that the runtime predictors need:
//! problem shapes, data types and element counts. Memory-transfer
//! operations (`cudaMemcpyAsync`) are *not* kernels — they are separate
//! [`crate::DeviceOp`] variants, as in the paper ("These cudaMemCpy
//! operations are treated as separate kernels in Maya", §7.2).

use crate::dtype::Dtype;

/// Metadata for a single compute kernel launch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum KernelKind {
    /// Dense matrix multiply `C[m,n] += A[m,k] * B[k,n]` (cuBLAS GEMM).
    Gemm {
        /// Rows of the output.
        m: u64,
        /// Columns of the output.
        n: u64,
        /// Inner (reduction) dimension.
        k: u64,
        /// Operand/accumulator dtype.
        dtype: Dtype,
    },
    /// Strided-batched GEMM (attention score/context matmuls).
    GemmStridedBatched {
        /// Rows of each output.
        m: u64,
        /// Columns of each output.
        n: u64,
        /// Inner dimension.
        k: u64,
        /// Number of independent GEMMs in the batch.
        batch: u64,
        /// Operand dtype.
        dtype: Dtype,
    },
    /// cublasLt epilogue-fused matmul (bias/GELU fusion).
    LtMatmul {
        /// Rows of the output.
        m: u64,
        /// Columns of the output.
        n: u64,
        /// Inner dimension.
        k: u64,
        /// Operand dtype.
        dtype: Dtype,
    },
    /// cuDNN convolution forward.
    ConvForward {
        /// Batch size.
        n: u64,
        /// Input channels.
        c: u64,
        /// Input height.
        h: u64,
        /// Input width.
        w: u64,
        /// Output channels.
        k: u64,
        /// Filter height/width (square filters).
        r: u64,
        /// Stride.
        stride: u64,
        /// Operand dtype.
        dtype: Dtype,
    },
    /// cuDNN convolution backward w.r.t. data.
    ConvBackwardData {
        /// Batch size.
        n: u64,
        /// Input channels.
        c: u64,
        /// Input height.
        h: u64,
        /// Input width.
        w: u64,
        /// Output channels.
        k: u64,
        /// Filter size.
        r: u64,
        /// Stride.
        stride: u64,
        /// Operand dtype.
        dtype: Dtype,
    },
    /// cuDNN convolution backward w.r.t. filters.
    ConvBackwardFilter {
        /// Batch size.
        n: u64,
        /// Input channels.
        c: u64,
        /// Input height.
        h: u64,
        /// Input width.
        w: u64,
        /// Output channels.
        k: u64,
        /// Filter size.
        r: u64,
        /// Stride.
        stride: u64,
        /// Operand dtype.
        dtype: Dtype,
    },
    /// Generic pointwise kernel over `numel` elements reading `arity` inputs.
    Elementwise {
        /// Total elements processed.
        numel: u64,
        /// Number of input operands (1 = unary, 2 = binary, ...).
        arity: u8,
        /// Operand dtype.
        dtype: Dtype,
    },
    /// Vectorized pointwise kernel (contiguous fast path).
    VectorizedElementwise {
        /// Total elements processed.
        numel: u64,
        /// Operand dtype.
        dtype: Dtype,
    },
    /// Fused dropout (mask generation + scale).
    FusedDropout {
        /// Total elements processed.
        numel: u64,
    },
    /// (Masked/scaled) softmax forward over `rows` rows of `cols` columns.
    SoftmaxForward {
        /// Number of softmax rows.
        rows: u64,
        /// Row width.
        cols: u64,
        /// Whether an attention mask is applied in the same kernel.
        masked: bool,
    },
    /// Softmax backward.
    SoftmaxBackward {
        /// Number of softmax rows.
        rows: u64,
        /// Row width.
        cols: u64,
        /// Whether an attention mask is applied.
        masked: bool,
    },
    /// LayerNorm forward (`cuApplyLayerNorm`).
    LayerNormForward {
        /// Number of normalized rows.
        rows: u64,
        /// Hidden size.
        cols: u64,
    },
    /// LayerNorm backward, gamma/beta gradient part.
    LayerNormBackwardGamma {
        /// Number of normalized rows.
        rows: u64,
        /// Hidden size.
        cols: u64,
    },
    /// LayerNorm backward, input gradient part (`cuComputeGradInput`).
    LayerNormBackwardInput {
        /// Number of normalized rows.
        rows: u64,
        /// Hidden size.
        cols: u64,
    },
    /// Embedding lookup (`indexSelectLargeIndex`).
    EmbeddingForward {
        /// Number of looked-up tokens.
        tokens: u64,
        /// Embedding width.
        hidden: u64,
    },
    /// Embedding gradient scatter (`compute_grad_weight` + sort pipeline).
    EmbeddingBackward {
        /// Number of scattered tokens.
        tokens: u64,
        /// Embedding width.
        hidden: u64,
    },
    /// Fused cross-entropy forward over the vocabulary projection.
    CrossEntropyForward {
        /// Number of token positions.
        tokens: u64,
        /// Vocabulary size (row width).
        vocab: u64,
    },
    /// Cross-entropy backward.
    CrossEntropyBackward {
        /// Number of token positions.
        tokens: u64,
        /// Vocabulary size.
        vocab: u64,
    },
    /// Optimizer update over flattened parameters (`multi_tensor_apply`).
    MultiTensorApply {
        /// Total parameter elements touched.
        numel: u64,
        /// Number of tensor operands read+written per element (Adam ~ 4).
        ops_per_elem: u8,
    },
    /// Reduction kernel (sum/mean over a tensor).
    Reduce {
        /// Elements reduced.
        numel: u64,
        /// Operand dtype.
        dtype: Dtype,
    },
    /// Concat/copy batch kernel (`CatArrayBatchedCopy`).
    CatCopy {
        /// Elements copied.
        numel: u64,
        /// Whether the 16-byte-aligned contiguous fast path is taken.
        aligned: bool,
    },
    /// Device memset.
    Memset {
        /// Bytes cleared.
        bytes: u64,
    },
    /// Upper/lower-triangular mask materialization (`triu_tril_kernel`).
    TriuTril {
        /// Elements written.
        numel: u64,
    },
    /// BatchNorm forward or backward (vision models).
    BatchNorm {
        /// Total elements (N*C*H*W).
        numel: u64,
        /// Channels.
        channels: u64,
        /// True for forward, false for backward.
        forward: bool,
    },
    /// Max pooling forward or backward.
    Pool {
        /// Total output elements.
        numel: u64,
        /// Pooling window size.
        window: u64,
        /// True for forward, false for backward.
        forward: bool,
    },
    /// Compiler-generated fused kernel (torch.compile / Triton).
    ///
    /// Per the paper's Appendix B, prediction features for these include
    /// the number of primitive instructions in the kernel body, not just
    /// operand shapes.
    FusedTriton {
        /// Elements processed.
        numel: u64,
        /// Primitive Triton-language instruction count in the kernel body.
        num_instrs: u32,
        /// Operand dtype.
        dtype: Dtype,
    },
}

impl KernelKind {
    /// CUDA kernel symbol family this metadata corresponds to.
    ///
    /// Names match the families in the paper's Tables 7-9 so that the
    /// per-kernel MAPE tables can be reproduced verbatim.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Gemm { dtype, .. } => {
                if dtype.uses_tensor_cores() {
                    "cublasGemmEx"
                } else {
                    "cublasSgemm_v2"
                }
            }
            KernelKind::GemmStridedBatched { .. } => "cublasSgemmStridedBatched",
            KernelKind::LtMatmul { .. } => "cublasLtMatmul",
            KernelKind::ConvForward { .. } => "cudnnConvolutionForward",
            KernelKind::ConvBackwardData { .. } => "cudnnConvolutionBackwardData",
            KernelKind::ConvBackwardFilter { .. } => "cudnnConvolutionBackwardFilter",
            KernelKind::Elementwise { arity, .. } => {
                if *arity <= 1 {
                    "unrolled_elementwise_kernel"
                } else {
                    "elementwise_kernel"
                }
            }
            KernelKind::VectorizedElementwise { .. } => "vectorized_elementwise_kernel",
            KernelKind::FusedDropout { .. } => "fused_dropout_kernel_vec",
            KernelKind::SoftmaxForward { masked: true, .. } => "masked_softmax_warp_forward",
            KernelKind::SoftmaxForward { masked: false, .. } => "softmax_warp_forward",
            KernelKind::SoftmaxBackward { masked: true, .. } => "masked_softmax_warp_backward",
            KernelKind::SoftmaxBackward { masked: false, .. } => "softmax_warp_backward",
            KernelKind::LayerNormForward { .. } => "cuApplyLayerNorm",
            KernelKind::LayerNormBackwardGamma { .. } => "cuComputeGradGammaBeta",
            KernelKind::LayerNormBackwardInput { .. } => "cuComputeGradInput",
            KernelKind::EmbeddingForward { .. } => "indexSelectLargeIndex",
            KernelKind::EmbeddingBackward { .. } => "compute_grad_weight",
            KernelKind::CrossEntropyForward { .. } => "nll_loss_forward_reduce_cuda_kernel_2d",
            KernelKind::CrossEntropyBackward { .. } => "nll_loss_backward_reduce_cuda_kernel_2d",
            KernelKind::MultiTensorApply { .. } => "multi_tensor_apply_kernel",
            KernelKind::Reduce { .. } => "reduce_kernel",
            KernelKind::CatCopy { aligned: true, .. } => "CatArrayBatchedCopy_aligned16_contig",
            KernelKind::CatCopy { aligned: false, .. } => "CatArrayBatchedCopy",
            KernelKind::Memset { .. } => "Memset",
            KernelKind::TriuTril { .. } => "triu_tril_kernel",
            KernelKind::BatchNorm { .. } => "cudnnBatchNormalizationForwardTraining",
            KernelKind::Pool { .. } => "max_pool_backward_nhwc",
            KernelKind::FusedTriton { .. } => "triton",
        }
    }

    /// Floating-point operations performed by this kernel.
    pub fn flops(&self) -> f64 {
        match *self {
            KernelKind::Gemm { m, n, k, .. } | KernelKind::LtMatmul { m, n, k, .. } => {
                2.0 * m as f64 * n as f64 * k as f64
            }
            KernelKind::GemmStridedBatched { m, n, k, batch, .. } => {
                2.0 * m as f64 * n as f64 * k as f64 * batch as f64
            }
            KernelKind::ConvForward {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                ..
            } => {
                let oh = (h / stride.max(1)).max(1) as f64;
                let ow = (w / stride.max(1)).max(1) as f64;
                2.0 * n as f64 * k as f64 * oh * ow * c as f64 * (r * r) as f64
            }
            KernelKind::ConvBackwardData {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                ..
            }
            | KernelKind::ConvBackwardFilter {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                ..
            } => {
                let oh = (h / stride.max(1)).max(1) as f64;
                let ow = (w / stride.max(1)).max(1) as f64;
                2.0 * n as f64 * k as f64 * oh * ow * c as f64 * (r * r) as f64
            }
            KernelKind::Elementwise { numel, arity, .. } => numel as f64 * arity as f64,
            KernelKind::VectorizedElementwise { numel, .. } => numel as f64,
            KernelKind::FusedDropout { numel } => 2.0 * numel as f64,
            KernelKind::SoftmaxForward { rows, cols, .. } => 5.0 * rows as f64 * cols as f64,
            KernelKind::SoftmaxBackward { rows, cols, .. } => 7.0 * rows as f64 * cols as f64,
            KernelKind::LayerNormForward { rows, cols } => 8.0 * rows as f64 * cols as f64,
            KernelKind::LayerNormBackwardGamma { rows, cols } => 4.0 * rows as f64 * cols as f64,
            KernelKind::LayerNormBackwardInput { rows, cols } => 9.0 * rows as f64 * cols as f64,
            KernelKind::EmbeddingForward { tokens, hidden } => tokens as f64 * hidden as f64,
            KernelKind::EmbeddingBackward { tokens, hidden } => 2.0 * tokens as f64 * hidden as f64,
            KernelKind::CrossEntropyForward { tokens, vocab } => 5.0 * tokens as f64 * vocab as f64,
            KernelKind::CrossEntropyBackward { tokens, vocab } => {
                3.0 * tokens as f64 * vocab as f64
            }
            KernelKind::MultiTensorApply {
                numel,
                ops_per_elem,
            } => numel as f64 * ops_per_elem as f64 * 2.0,
            KernelKind::Reduce { numel, .. } => numel as f64,
            KernelKind::CatCopy { .. } | KernelKind::Memset { .. } => 0.0,
            KernelKind::TriuTril { numel } => numel as f64,
            KernelKind::BatchNorm { numel, .. } => 6.0 * numel as f64,
            KernelKind::Pool { numel, window, .. } => numel as f64 * (window * window) as f64,
            KernelKind::FusedTriton {
                numel, num_instrs, ..
            } => numel as f64 * num_instrs as f64,
        }
    }

    /// Bytes of device memory traffic generated by this kernel (reads+writes).
    pub fn bytes_accessed(&self) -> f64 {
        let e = |d: Dtype| d.size_bytes() as f64;
        match *self {
            KernelKind::Gemm { m, n, k, dtype } | KernelKind::LtMatmul { m, n, k, dtype } => {
                (m * k + k * n + 2 * m * n) as f64 * e(dtype)
            }
            KernelKind::GemmStridedBatched {
                m,
                n,
                k,
                batch,
                dtype,
            } => (m * k + k * n + 2 * m * n) as f64 * batch as f64 * e(dtype),
            KernelKind::ConvForward {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                dtype,
            }
            | KernelKind::ConvBackwardData {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                dtype,
            }
            | KernelKind::ConvBackwardFilter {
                n,
                c,
                h,
                w,
                k,
                r,
                stride,
                dtype,
            } => {
                let oh = (h / stride.max(1)).max(1);
                let ow = (w / stride.max(1)).max(1);
                let input = n * c * h * w;
                let output = n * k * oh * ow;
                let filt = k * c * r * r;
                (input + output + filt) as f64 * e(dtype)
            }
            KernelKind::Elementwise {
                numel,
                arity,
                dtype,
            } => numel as f64 * (arity as f64 + 1.0) * e(dtype),
            KernelKind::VectorizedElementwise { numel, dtype } => 2.0 * numel as f64 * e(dtype),
            KernelKind::FusedDropout { numel } => 5.0 * numel as f64,
            KernelKind::SoftmaxForward { rows, cols, masked } => {
                let m = if masked { 1.0 } else { 0.0 };
                (2.0 + m) * (rows * cols) as f64 * 2.0
            }
            KernelKind::SoftmaxBackward { rows, cols, .. } => 3.0 * (rows * cols) as f64 * 2.0,
            KernelKind::LayerNormForward { rows, cols } => 2.0 * (rows * cols) as f64 * 2.0,
            KernelKind::LayerNormBackwardGamma { rows, cols } => 2.0 * (rows * cols) as f64 * 2.0,
            KernelKind::LayerNormBackwardInput { rows, cols } => 3.0 * (rows * cols) as f64 * 2.0,
            KernelKind::EmbeddingForward { tokens, hidden } => 2.0 * (tokens * hidden) as f64 * 2.0,
            KernelKind::EmbeddingBackward { tokens, hidden } => {
                3.0 * (tokens * hidden) as f64 * 4.0
            }
            KernelKind::CrossEntropyForward { tokens, vocab }
            | KernelKind::CrossEntropyBackward { tokens, vocab } => {
                2.0 * (tokens * vocab) as f64 * 2.0
            }
            KernelKind::MultiTensorApply {
                numel,
                ops_per_elem,
            } => numel as f64 * ops_per_elem as f64 * 4.0,
            KernelKind::Reduce { numel, dtype } => numel as f64 * e(dtype),
            KernelKind::CatCopy { numel, .. } => 2.0 * numel as f64 * 2.0,
            KernelKind::Memset { bytes } => bytes as f64,
            KernelKind::TriuTril { numel } => numel as f64 * 2.0,
            KernelKind::BatchNorm { numel, .. } => 4.0 * numel as f64 * 2.0,
            KernelKind::Pool { numel, window, .. } => (numel * (window * window + 1)) as f64 * 2.0,
            KernelKind::FusedTriton { numel, dtype, .. } => 3.0 * numel as f64 * e(dtype),
        }
    }

    /// Operand dtype, when the kernel family tracks one.
    pub fn dtype(&self) -> Option<Dtype> {
        match *self {
            KernelKind::Gemm { dtype, .. }
            | KernelKind::GemmStridedBatched { dtype, .. }
            | KernelKind::LtMatmul { dtype, .. }
            | KernelKind::ConvForward { dtype, .. }
            | KernelKind::ConvBackwardData { dtype, .. }
            | KernelKind::ConvBackwardFilter { dtype, .. }
            | KernelKind::Elementwise { dtype, .. }
            | KernelKind::VectorizedElementwise { dtype, .. }
            | KernelKind::Reduce { dtype, .. }
            | KernelKind::FusedTriton { dtype, .. } => Some(dtype),
            _ => None,
        }
    }

    /// Stable small id for the kernel *family* (used for model features
    /// and rolling-hash worker signatures).
    pub fn family_id(&self) -> u8 {
        match self {
            KernelKind::Gemm { .. } => 0,
            KernelKind::GemmStridedBatched { .. } => 1,
            KernelKind::LtMatmul { .. } => 2,
            KernelKind::ConvForward { .. } => 3,
            KernelKind::ConvBackwardData { .. } => 4,
            KernelKind::ConvBackwardFilter { .. } => 5,
            KernelKind::Elementwise { .. } => 6,
            KernelKind::VectorizedElementwise { .. } => 7,
            KernelKind::FusedDropout { .. } => 8,
            KernelKind::SoftmaxForward { .. } => 9,
            KernelKind::SoftmaxBackward { .. } => 10,
            KernelKind::LayerNormForward { .. } => 11,
            KernelKind::LayerNormBackwardGamma { .. } => 12,
            KernelKind::LayerNormBackwardInput { .. } => 13,
            KernelKind::EmbeddingForward { .. } => 14,
            KernelKind::EmbeddingBackward { .. } => 15,
            KernelKind::CrossEntropyForward { .. } => 16,
            KernelKind::CrossEntropyBackward { .. } => 17,
            KernelKind::MultiTensorApply { .. } => 18,
            KernelKind::Reduce { .. } => 19,
            KernelKind::CatCopy { .. } => 20,
            KernelKind::Memset { .. } => 21,
            KernelKind::TriuTril { .. } => 22,
            KernelKind::BatchNorm { .. } => 23,
            KernelKind::Pool { .. } => 24,
            KernelKind::FusedTriton { .. } => 25,
        }
    }

    /// Number of distinct kernel families (for one-hot feature vectors).
    pub const NUM_FAMILIES: usize = 26;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_and_bytes() {
        let k = KernelKind::Gemm {
            m: 128,
            n: 256,
            k: 64,
            dtype: Dtype::Bf16,
        };
        assert_eq!(k.flops(), 2.0 * 128.0 * 256.0 * 64.0);
        assert!(k.bytes_accessed() > 0.0);
        assert_eq!(k.name(), "cublasGemmEx");
        let k32 = KernelKind::Gemm {
            m: 128,
            n: 256,
            k: 64,
            dtype: Dtype::Fp32,
        };
        assert_eq!(k32.name(), "cublasSgemm_v2");
    }

    #[test]
    fn batched_gemm_scales_with_batch() {
        let single = KernelKind::GemmStridedBatched {
            m: 64,
            n: 64,
            k: 64,
            batch: 1,
            dtype: Dtype::Fp16,
        };
        let many = KernelKind::GemmStridedBatched {
            m: 64,
            n: 64,
            k: 64,
            batch: 8,
            dtype: Dtype::Fp16,
        };
        assert_eq!(many.flops(), 8.0 * single.flops());
    }

    #[test]
    fn conv_flops_positive() {
        let k = KernelKind::ConvForward {
            n: 32,
            c: 64,
            h: 56,
            w: 56,
            k: 128,
            r: 3,
            stride: 1,
            dtype: Dtype::Fp32,
        };
        assert!(k.flops() > 1e9);
        assert_eq!(k.name(), "cudnnConvolutionForward");
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(
            KernelKind::SoftmaxForward {
                rows: 1,
                cols: 1,
                masked: true
            }
            .name(),
            "masked_softmax_warp_forward"
        );
        assert_eq!(
            KernelKind::LayerNormForward { rows: 1, cols: 1 }.name(),
            "cuApplyLayerNorm"
        );
        assert_eq!(
            KernelKind::MultiTensorApply {
                numel: 1,
                ops_per_elem: 4
            }
            .name(),
            "multi_tensor_apply_kernel"
        );
        assert_eq!(
            KernelKind::CatCopy {
                numel: 1,
                aligned: true
            }
            .name(),
            "CatArrayBatchedCopy_aligned16_contig"
        );
        assert_eq!(
            KernelKind::FusedTriton {
                numel: 1,
                num_instrs: 4,
                dtype: Dtype::Fp32
            }
            .name(),
            "triton"
        );
    }

    #[test]
    fn family_ids_are_unique_and_bounded() {
        let kinds = sample_kinds();
        let mut ids: Vec<u8> = kinds.iter().map(|k| k.family_id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), kinds.len());
        assert!(ids.iter().all(|&i| (i as usize) < KernelKind::NUM_FAMILIES));
    }

    #[test]
    fn all_kinds_have_nonnegative_costs() {
        for k in sample_kinds() {
            assert!(k.flops() >= 0.0, "{:?}", k);
            assert!(k.bytes_accessed() >= 0.0, "{:?}", k);
            assert!(!k.name().is_empty());
        }
    }

    /// One representative of every kernel family.
    fn sample_kinds() -> Vec<KernelKind> {
        let d = Dtype::Bf16;
        vec![
            KernelKind::Gemm {
                m: 4,
                n: 4,
                k: 4,
                dtype: d,
            },
            KernelKind::GemmStridedBatched {
                m: 4,
                n: 4,
                k: 4,
                batch: 2,
                dtype: d,
            },
            KernelKind::LtMatmul {
                m: 4,
                n: 4,
                k: 4,
                dtype: d,
            },
            KernelKind::ConvForward {
                n: 1,
                c: 3,
                h: 8,
                w: 8,
                k: 4,
                r: 3,
                stride: 1,
                dtype: d,
            },
            KernelKind::ConvBackwardData {
                n: 1,
                c: 3,
                h: 8,
                w: 8,
                k: 4,
                r: 3,
                stride: 1,
                dtype: d,
            },
            KernelKind::ConvBackwardFilter {
                n: 1,
                c: 3,
                h: 8,
                w: 8,
                k: 4,
                r: 3,
                stride: 1,
                dtype: d,
            },
            KernelKind::Elementwise {
                numel: 16,
                arity: 2,
                dtype: d,
            },
            KernelKind::VectorizedElementwise {
                numel: 16,
                dtype: d,
            },
            KernelKind::FusedDropout { numel: 16 },
            KernelKind::SoftmaxForward {
                rows: 4,
                cols: 4,
                masked: true,
            },
            KernelKind::SoftmaxBackward {
                rows: 4,
                cols: 4,
                masked: true,
            },
            KernelKind::LayerNormForward { rows: 4, cols: 4 },
            KernelKind::LayerNormBackwardGamma { rows: 4, cols: 4 },
            KernelKind::LayerNormBackwardInput { rows: 4, cols: 4 },
            KernelKind::EmbeddingForward {
                tokens: 4,
                hidden: 4,
            },
            KernelKind::EmbeddingBackward {
                tokens: 4,
                hidden: 4,
            },
            KernelKind::CrossEntropyForward {
                tokens: 4,
                vocab: 16,
            },
            KernelKind::CrossEntropyBackward {
                tokens: 4,
                vocab: 16,
            },
            KernelKind::MultiTensorApply {
                numel: 16,
                ops_per_elem: 4,
            },
            KernelKind::Reduce {
                numel: 16,
                dtype: d,
            },
            KernelKind::CatCopy {
                numel: 16,
                aligned: false,
            },
            KernelKind::Memset { bytes: 64 },
            KernelKind::TriuTril { numel: 16 },
            KernelKind::BatchNorm {
                numel: 16,
                channels: 4,
                forward: true,
            },
            KernelKind::Pool {
                numel: 16,
                window: 2,
                forward: false,
            },
            KernelKind::FusedTriton {
                numel: 16,
                num_instrs: 3,
                dtype: d,
            },
        ]
    }
}
