//! Minimal JSON export for traces.
//!
//! The paper's emulator writes traces as JSON event lists (Figure 3 shows
//! `{"events": [{"dev": "gpu0-stream0", "op": "cublasSgemm_v2"}, ...]}`).
//! This module provides a small hand-rolled writer with the same shape, so
//! the repository avoids a `serde_json` dependency while still producing
//! inspectable artifacts.

use std::fmt::Write as _;

use crate::event::{JobTrace, WorkerTrace};
use crate::ops::DeviceOp;

/// Escapes a string for inclusion in a JSON document. Public so the
/// downstream `to_json` exporters (predictions in `maya`, search
/// results in `maya-search`, wire responses in `maya-wire`) share one
/// correct escaper instead of five.
pub fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a string as a quoted, escaped JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape(s, &mut out);
    out.push('"');
    out
}

/// Serializes one worker trace into the paper's event-list JSON shape.
pub fn worker_trace_to_json(trace: &WorkerTrace) -> String {
    let mut out = String::with_capacity(trace.events.len() * 64 + 128);
    let _ = write!(out, "{{\"rank\":{},\"events\":[", trace.rank);
    for (i, e) in trace.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"dev\":\"gpu{}-stream{}\",\"op\":\"",
            trace.rank, e.stream.0
        );
        escape(e.op.name(), &mut out);
        let _ = write!(out, "\",\"host_delay_ns\":{}", e.host_delay.as_ns());
        match e.op {
            DeviceOp::KernelLaunch { kernel } => {
                let _ = write!(
                    out,
                    ",\"flops\":{},\"bytes\":{}",
                    kernel.flops() as u64,
                    kernel.bytes_accessed() as u64
                );
            }
            DeviceOp::MemcpyAsync { bytes, .. } => {
                let _ = write!(out, ",\"bytes\":{bytes}");
            }
            DeviceOp::Collective { desc } => {
                let _ = write!(
                    out,
                    ",\"comm\":{},\"seq\":{},\"bytes\":{},\"nranks\":{}",
                    desc.comm_id, desc.seq, desc.bytes, desc.nranks
                );
            }
            DeviceOp::Malloc { bytes, ptr } => {
                let _ = write!(out, ",\"bytes\":{bytes},\"ptr\":{ptr}");
            }
            _ => {}
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "],\"peak_mem_bytes\":{},\"oom\":{}}}",
        trace.summary.peak_mem_bytes, trace.summary.oom
    );
    out
}

/// Serializes a collated job trace (workers + communicator groups).
pub fn job_trace_to_json(job: &JobTrace) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"nranks\":{},\"comm_groups\":{{", job.nranks);
    for (i, (comm, members)) in job.comm_groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{comm}\":[");
        for (j, m) in members.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{m}");
        }
        out.push(']');
    }
    out.push_str("},\"workers\":[");
    for (i, w) in job.workers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&worker_trace_to_json(w));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::kernel::KernelKind;
    use crate::ops::StreamId;
    use crate::{Dtype, SimTime};
    use std::collections::BTreeMap;

    #[test]
    fn escaping() {
        let mut s = String::new();
        escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn worker_json_shape() {
        let mut w = WorkerTrace::new(0);
        w.events.push(TraceEvent {
            stream: StreamId::DEFAULT,
            op: DeviceOp::KernelLaunch {
                kernel: KernelKind::Gemm {
                    m: 4,
                    n: 4,
                    k: 4,
                    dtype: Dtype::Fp32,
                },
            },
            host_delay: SimTime::from_us(5.0),
        });
        let json = worker_trace_to_json(&w);
        assert!(json.contains("\"dev\":\"gpu0-stream0\""), "{json}");
        assert!(json.contains("\"op\":\"cublasSgemm_v2\""), "{json}");
        assert!(json.contains("\"host_delay_ns\":5000"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn job_json_contains_groups() {
        let mut groups = BTreeMap::new();
        groups.insert(42u64, vec![0u32, 1u32]);
        let job = JobTrace {
            nranks: 2,
            workers: vec![WorkerTrace::new(0), WorkerTrace::new(1)],
            comm_groups: groups,
        };
        let json = job_trace_to_json(&job);
        assert!(json.contains("\"42\":[0,1]"), "{json}");
        assert!(json.contains("\"nranks\":2"), "{json}");
    }
}
