//! Element data types seen at the device API boundary.

use std::fmt;

/// Numeric element type of a tensor or kernel operand.
///
/// The emulator records dtypes because they determine both memory traffic
/// (bytes per element) and which hardware pipeline a kernel uses (e.g.
/// tensor cores for [`Dtype::Bf16`]/[`Dtype::Fp16`] GEMMs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum Dtype {
    /// 32-bit IEEE float.
    Fp32,
    /// 16-bit IEEE float.
    Fp16,
    /// bfloat16.
    Bf16,
    /// TensorFloat-32 (fp32 storage, reduced-precision tensor-core math).
    Tf32,
    /// 64-bit integer (index tensors).
    Int64,
    /// 32-bit integer.
    Int32,
    /// 8-bit integer.
    Int8,
}

impl Dtype {
    /// Storage size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            Dtype::Fp32 | Dtype::Tf32 | Dtype::Int32 => 4,
            Dtype::Fp16 | Dtype::Bf16 => 2,
            Dtype::Int64 => 8,
            Dtype::Int8 => 1,
        }
    }

    /// Whether GEMM/conv kernels in this dtype run on tensor cores.
    pub const fn uses_tensor_cores(self) -> bool {
        matches!(self, Dtype::Fp16 | Dtype::Bf16 | Dtype::Tf32 | Dtype::Int8)
    }

    /// Short lowercase name used in trace exports.
    pub const fn name(self) -> &'static str {
        match self {
            Dtype::Fp32 => "fp32",
            Dtype::Fp16 => "fp16",
            Dtype::Bf16 => "bf16",
            Dtype::Tf32 => "tf32",
            Dtype::Int64 => "int64",
            Dtype::Int32 => "int32",
            Dtype::Int8 => "int8",
        }
    }

    /// Stable small integer id, used as a model feature.
    pub const fn id(self) -> u8 {
        match self {
            Dtype::Fp32 => 0,
            Dtype::Fp16 => 1,
            Dtype::Bf16 => 2,
            Dtype::Tf32 => 3,
            Dtype::Int64 => 4,
            Dtype::Int32 => 5,
            Dtype::Int8 => 6,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Dtype::Fp32.size_bytes(), 4);
        assert_eq!(Dtype::Bf16.size_bytes(), 2);
        assert_eq!(Dtype::Int64.size_bytes(), 8);
        assert_eq!(Dtype::Int8.size_bytes(), 1);
    }

    #[test]
    fn tensor_core_eligibility() {
        assert!(Dtype::Bf16.uses_tensor_cores());
        assert!(Dtype::Tf32.uses_tensor_cores());
        assert!(!Dtype::Fp32.uses_tensor_cores());
        assert!(!Dtype::Int64.uses_tensor_cores());
    }

    #[test]
    fn ids_are_distinct() {
        let all = [
            Dtype::Fp32,
            Dtype::Fp16,
            Dtype::Bf16,
            Dtype::Tf32,
            Dtype::Int64,
            Dtype::Int32,
            Dtype::Int8,
        ];
        let mut ids: Vec<u8> = all.iter().map(|d| d.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }
}
