//! Property-based tests for the trace schema.

use maya_trace::{Dtype, KernelKind, SimTime};
use proptest::prelude::*;

proptest! {
    /// SimTime addition is commutative and monotone; subtraction never
    /// underflows.
    #[test]
    fn simtime_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (x, y) = (SimTime::from_ns(a), SimTime::from_ns(b));
        prop_assert_eq!(x + y, y + x);
        prop_assert!(x + y >= x);
        prop_assert!(x - y <= x);
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!(x.max(y).min(x.min(y)), x.min(y));
    }

    /// Unit conversions agree with raw nanoseconds.
    #[test]
    fn simtime_conversions(ns in 0u64..10_000_000_000_000) {
        let t = SimTime::from_ns(ns);
        prop_assert!((t.as_secs_f64() - ns as f64 / 1e9).abs() < 1e-6);
        prop_assert!((t.as_us() - ns as f64 / 1e3).abs() < 1e-3);
        prop_assert_eq!(SimTime::from_us(t.as_us()).as_ns() as i128 - ns as i128, 0);
    }

    /// Scaling is monotone in the factor and approximately linear.
    #[test]
    fn simtime_scaling(ns in 1u64..1_000_000_000_000, f in 0.0f64..8.0) {
        let t = SimTime::from_ns(ns);
        let s = t.scale(f);
        let expected = ns as f64 * f;
        prop_assert!((s.as_ns() as f64 - expected).abs() <= expected * 1e-12 + 1.0);
        prop_assert!(t.scale(f) <= t.scale(f + 0.5));
    }

    /// GEMM flops/bytes scale as expected and every kernel has a name.
    #[test]
    fn gemm_cost_model(m in 1u64..8192, n in 1u64..8192, k in 1u64..8192) {
        let g = KernelKind::Gemm { m, n, k, dtype: Dtype::Bf16 };
        prop_assert_eq!(g.flops(), 2.0 * (m * n) as f64 * k as f64);
        let doubled = KernelKind::Gemm { m: 2 * m, n, k, dtype: Dtype::Bf16 };
        prop_assert!((doubled.flops() / g.flops() - 2.0).abs() < 1e-9);
        prop_assert!(g.bytes_accessed() > 0.0);
        prop_assert!(!g.name().is_empty());
        prop_assert!((g.family_id() as usize) < KernelKind::NUM_FAMILIES);
    }

    /// JSON export always produces balanced, non-empty documents.
    #[test]
    fn json_export_wellformed(rank in 0u32..512, m in 1u64..4096, host_us in 0.0f64..1e5) {
        let mut w = maya_trace::WorkerTrace::new(rank);
        w.events.push(maya_trace::TraceEvent {
            stream: maya_trace::StreamId::DEFAULT,
            op: maya_trace::DeviceOp::KernelLaunch {
                kernel: KernelKind::Gemm { m, n: 64, k: 64, dtype: Dtype::Fp32 },
            },
            host_delay: SimTime::from_us(host_us),
        });
        let json = maya_trace::json::worker_trace_to_json(&w);
        // Bound outside prop_assert!: brace literals break its
        // stringified message formatting.
        let delimited = json.starts_with('{') && json.ends_with('}');
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        let has_rank = json.contains(&format!("\"rank\":{}", rank));
        prop_assert!(delimited);
        prop_assert_eq!(opens, closes);
        prop_assert!(has_rank);
    }
}
