//! Property-based correctness proofs for the optimized sim core.
//!
//! Three properties over randomized multi-rank traces:
//!
//! 1. **Determinism** — `simulate()` twice on the same inputs yields
//!    byte-identical `SimReport`s (compared through the serialized
//!    wire form, not just `PartialEq`).
//! 2. **Scratch transparency** — a reused [`SimScratch`] arena, even
//!    one dirtied by differently-shaped prior runs, yields reports
//!    byte-identical to fresh-state runs.
//! 3. **Reference equivalence** — the dense-slot core matches the
//!    frozen pre-optimization core in [`maya_sim::reference`] exactly,
//!    including `events_processed` (same event schedule, not just the
//!    same answer) and including error cases (deadlocks).

use std::collections::BTreeMap;

use maya_estimator::OracleEstimator;
use maya_hw::ClusterSpec;
use maya_sim::engine::{simulate, SimScratch, Simulator};
use maya_sim::reference::simulate_reference;
use maya_trace::{
    CollectiveDesc, CollectiveKind, DeviceOp, Dtype, JobTrace, KernelKind, MemcpyKind, SimTime,
    StreamId, TraceEvent, WorkerTrace,
};
use proptest::prelude::*;

/// One step of the trace generator, to be lowered per rank.
#[derive(Clone, Debug)]
enum Step {
    Kernel { stream: u8, m: u64 },
    Memcpy { stream: u8, bytes: u64, sync: bool },
    Record { stream: u8, event: u8, version: u8 },
    WaitEvent { stream: u8, event: u8, version: u8 },
    EventSync { event: u8, version: u8 },
    StreamSync { stream: u8 },
    DeviceSync,
    AllReduce { bytes: u64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0u8..3, 256u64..4096).prop_map(|(stream, m)| Step::Kernel { stream, m }),
        2 => (0u8..3, 1024u64..(1 << 20), any::<bool>())
            .prop_map(|(stream, bytes, sync)| Step::Memcpy { stream, bytes, sync }),
        2 => (0u8..3, 0u8..4, 0u8..3)
            .prop_map(|(stream, event, version)| Step::Record { stream, event, version }),
        2 => (0u8..3, 0u8..4, 0u8..3)
            .prop_map(|(stream, event, version)| Step::WaitEvent { stream, event, version }),
        1 => (0u8..4, 0u8..3).prop_map(|(event, version)| Step::EventSync { event, version }),
        1 => (0u8..3).prop_map(|stream| Step::StreamSync { stream }),
        1 => Just(Step::DeviceSync),
        2 => (1024u64..(1 << 22)).prop_map(|bytes| Step::AllReduce { bytes }),
    ]
}

/// Lowers the shared step list into one worker's event stream.
///
/// Waits and event-syncs are made safe against deadlock by only ever
/// waiting on versions at-or-below the latest recorded version for the
/// event *earlier in the program* (CUDA's replay guarantee from the
/// emulator), falling back to the never-recorded `version == 0` no-op
/// otherwise. Collectives keep a per-rank shared sequence so all ranks
/// rendezvous.
fn lower(rank: u32, nranks: u32, steps: &[Step]) -> WorkerTrace {
    let mut w = WorkerTrace::new(rank);
    // Versions actually recorded per event (strictly increasing, may
    // have gaps); waits must target one of these or the v0 no-op.
    let mut recorded: BTreeMap<u8, Vec<u32>> = BTreeMap::new();
    let mut coll_seq = 0u32;
    let ev = |stream: u8, op: DeviceOp| TraceEvent {
        stream: StreamId(stream as u32),
        op,
        host_delay: SimTime::from_us(1.0),
    };
    for s in steps {
        match *s {
            Step::Kernel { stream, m } => {
                // Perturb work per rank so ranks finish at skewed times.
                let m = m + (rank as u64) * 128;
                w.events.push(ev(
                    stream,
                    DeviceOp::KernelLaunch {
                        kernel: KernelKind::Gemm {
                            m,
                            n: 512,
                            k: 512,
                            dtype: Dtype::Bf16,
                        },
                    },
                ));
            }
            Step::Memcpy {
                stream,
                bytes,
                sync,
            } => {
                w.events.push(ev(
                    stream,
                    DeviceOp::MemcpyAsync {
                        bytes,
                        kind: MemcpyKind::HostToDevice,
                        sync,
                    },
                ));
            }
            Step::Record {
                stream,
                event,
                version,
            } => {
                let last = recorded.get(&event).and_then(|v| v.last().copied());
                let next = version as u32 + 1 + last.unwrap_or(0);
                recorded.entry(event).or_default().push(next);
                w.events.push(ev(
                    stream,
                    DeviceOp::EventRecord {
                        event: event as u64,
                        version: next,
                    },
                ));
            }
            Step::WaitEvent {
                stream,
                event,
                version,
            } => {
                let version = match recorded.get(&event) {
                    Some(vs) if !vs.is_empty() => vs[version as usize % vs.len()],
                    _ => 0,
                };
                w.events.push(ev(
                    stream,
                    DeviceOp::StreamWaitEvent {
                        event: event as u64,
                        version,
                    },
                ));
            }
            Step::EventSync { event, version } => {
                let version = match recorded.get(&event) {
                    Some(vs) if !vs.is_empty() => vs[version as usize % vs.len()],
                    _ => 0,
                };
                w.events.push(ev(
                    0,
                    DeviceOp::EventSynchronize {
                        event: event as u64,
                        version,
                    },
                ));
            }
            Step::StreamSync { stream } => {
                w.events.push(ev(stream, DeviceOp::StreamSynchronize));
            }
            Step::DeviceSync => w.events.push(ev(0, DeviceOp::DeviceSynchronize)),
            Step::AllReduce { bytes } => {
                w.events.push(ev(
                    0,
                    DeviceOp::Collective {
                        desc: CollectiveDesc {
                            kind: CollectiveKind::AllReduce,
                            comm_id: 42,
                            seq: coll_seq,
                            bytes,
                            nranks,
                            rank_in_comm: rank,
                        },
                    },
                ));
                coll_seq += 1;
            }
        }
    }
    // Drain so collectives finish before the trace ends.
    w.events.push(ev(0, DeviceOp::DeviceSynchronize));
    w
}

fn job(nranks: u32, steps: &[Step]) -> JobTrace {
    let mut comm_groups = BTreeMap::new();
    comm_groups.insert(42u64, (0..nranks).collect());
    JobTrace {
        nranks,
        workers: (0..nranks).map(|r| lower(r, nranks, steps)).collect(),
        comm_groups,
    }
}

fn bytes_of(r: &maya_sim::SimReport) -> String {
    serde::to_string(r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `simulate()` is a pure function: run twice, byte-identical.
    #[test]
    fn simulate_is_deterministic(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        nranks in 1u32..4,
    ) {
        let c = ClusterSpec::h100(1, 4);
        let oracle = OracleEstimator::new(&c);
        let j = job(nranks, &steps);
        let a = simulate(&j, &c, &oracle).unwrap();
        let b = simulate(&j, &c, &oracle).unwrap();
        prop_assert_eq!(bytes_of(&a), bytes_of(&b));
    }

    /// Fresh scratch vs a reused, dirtied scratch: byte-identical.
    #[test]
    fn scratch_reuse_is_transparent(
        steps_a in proptest::collection::vec(step_strategy(), 1..40),
        steps_b in proptest::collection::vec(step_strategy(), 1..40),
        nranks in 1u32..4,
    ) {
        let c = ClusterSpec::h100(1, 4);
        let oracle = OracleEstimator::new(&c);
        let sim = Simulator::new(&oracle, &c);
        let mut scratch = SimScratch::new();
        // Dirty the arena with a differently-shaped job first.
        let _ = sim.run_with_scratch(&job(nranks, &steps_a), &mut scratch);
        let j = job(nranks, &steps_b);
        let reused = sim.run_with_scratch(&j, &mut scratch).unwrap();
        let fresh = sim.run(&j).unwrap();
        prop_assert_eq!(bytes_of(&reused), bytes_of(&fresh));
        // The prevalidated fast path is the same simulation.
        let pre = sim.run_prevalidated(&j, &mut scratch).unwrap();
        prop_assert_eq!(bytes_of(&pre), bytes_of(&fresh));
    }

    /// The dense-slot core is event-for-event equivalent to the frozen
    /// pre-optimization core.
    #[test]
    fn dense_core_matches_reference(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        nranks in 1u32..4,
    ) {
        let c = ClusterSpec::h100(1, 4);
        let oracle = OracleEstimator::new(&c);
        let j = job(nranks, &steps);
        match (simulate(&j, &c, &oracle), simulate_reference(&j, &c, &oracle)) {
            (Ok(dense), Ok(reference)) => {
                prop_assert_eq!(bytes_of(&dense), bytes_of(&reference));
            }
            (dense, reference) => prop_assert_eq!(dense, reference),
        }
    }

    /// A default emulation setup — no topology, no hetero pool, no
    /// fault plan (explicitly absent *or* explicitly empty) — is still
    /// byte-identical to the frozen reference core. The net/fault
    /// subsystem must be invisible until opted into.
    #[test]
    fn default_spec_stays_byte_identical_to_reference(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        nranks in 1u32..4,
    ) {
        let c = ClusterSpec::h100(1, 4);
        let oracle = OracleEstimator::new(&c);
        let j = job(nranks, &steps);
        let empty = maya_net::FaultPlan::default();
        let none = Simulator::new(&oracle, &c).with_faults(None).run(&j);
        let empty_plan = Simulator::new(&oracle, &c).with_faults(Some(&empty)).run(&j);
        match simulate_reference(&j, &c, &oracle) {
            Ok(reference) => {
                let reference = bytes_of(&reference);
                prop_assert_eq!(bytes_of(&none.unwrap()), reference.clone());
                prop_assert_eq!(bytes_of(&empty_plan.unwrap()), reference);
            }
            Err(e) => {
                prop_assert_eq!(none, Err(e.clone()));
                prop_assert_eq!(empty_plan, Err(e));
            }
        }
    }
}
