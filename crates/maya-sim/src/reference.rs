//! The pre-optimization simulator core, kept as a differential-testing
//! oracle.
//!
//! This is the engine exactly as it stood before the dense event-slot
//! and scratch-arena optimization (PR 6): CUDA-event keys are looked up
//! through per-rank `HashMap<(u64, u32), _>` wait maps and the whole
//! mutable state is allocated fresh on every run. It is deliberately
//! *not* maintained for speed — its only job is to stay semantically
//! frozen so tests can prove the optimized [`crate::engine`] produces
//! byte-identical [`SimReport`]s. Do not optimize this module; fix
//! behavior bugs in both cores (and extend the equivalence proptests in
//! `tests/props.rs` to cover the fix).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use maya_estimator::RuntimeEstimator;
use maya_hw::ClusterSpec;
use maya_trace::{
    CollectiveDesc, CollectiveKind, DeviceOp, JobTrace, SimTime, StreamId, TraceEvent,
};

use crate::engine::SimError;
use crate::report::SimReport;

/// Key of a collective rendezvous in the network wait map.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct CollKey {
    comm: u64,
    seq: u32,
    pair: (u32, u32),
}

impl CollKey {
    fn from_desc(d: &CollectiveDesc) -> Self {
        let pair = match d.kind {
            CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => {
                (d.rank_in_comm.min(peer), d.rank_in_comm.max(peer))
            }
            _ => (u32::MAX, u32::MAX),
        };
        CollKey {
            comm: d.comm_id,
            seq: d.seq,
            pair,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum StreamOp {
    Timed { dur: SimTime, is_comm: bool },
    Record { event: u64, version: u32 },
    Wait { event: u64, version: u32 },
    Join { key: CollKey, desc: CollectiveDesc },
}

#[derive(Clone, Copy, Debug)]
struct QueuedOp {
    ready_at: SimTime,
    op: StreamOp,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StreamBlock {
    Event { event: u64, version: u32 },
    Collective,
}

#[derive(Default)]
struct StreamSim {
    queue: VecDeque<QueuedOp>,
    busy_until: SimTime,
    blocked: Option<StreamBlock>,
}

impl StreamSim {
    fn drained(&self, now: SimTime) -> bool {
        self.queue.is_empty() && self.blocked.is_none() && self.busy_until <= now
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum HostBlock {
    Event { event: u64, version: u32 },
    StreamDrain { si: usize },
    DeviceDrain { remaining: u32 },
}

struct RankSim {
    next_op: usize,
    host_time: SimTime,
    host_busy: SimTime,
    streams: Vec<StreamSim>,
    ev_slot: Vec<u32>,
    blocked: Option<HostBlock>,
    done: bool,
    comm_busy: SimTime,
    compute_busy: SimTime,
}

fn intern_streams(events: &[TraceEvent]) -> (Vec<u32>, usize) {
    let mut index: HashMap<StreamId, u32> = HashMap::new();
    let mut slots = Vec::with_capacity(events.len());
    for e in events {
        let next = index.len() as u32;
        slots.push(*index.entry(e.stream).or_insert(next));
    }
    (slots, index.len())
}

#[derive(Clone, Copy, Debug)]
enum EvKind {
    HostDispatch { wi: usize },
    Pump { wi: usize, si: usize },
}

#[derive(Clone, Copy, Debug)]
struct HeapEv {
    at: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The frozen reference simulator.
struct Reference<'a> {
    estimator: &'a dyn RuntimeEstimator,
    cluster: &'a ClusterSpec,
}

/// Runs the pre-optimization core. Semantics must match
/// [`crate::simulate`] exactly — see the module docs.
pub fn simulate_reference(
    job: &JobTrace,
    cluster: &ClusterSpec,
    estimator: &dyn RuntimeEstimator,
) -> Result<SimReport, SimError> {
    Reference { estimator, cluster }.run(job)
}

struct State {
    ranks: Vec<RankSim>,
    heap: BinaryHeap<Reverse<HeapEv>>,
    seq: u64,
    now: SimTime,
    events_processed: u64,
    fired: Vec<HashMap<(u64, u32), SimTime>>,
    event_stream_waiters: Vec<HashMap<(u64, u32), Vec<usize>>>,
    collectives: HashMap<CollKey, Vec<(usize, usize, SimTime, CollectiveDesc)>>,
}

impl State {
    fn push(&mut self, at: SimTime, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Reverse(HeapEv {
            at,
            seq: self.seq,
            kind,
        }));
    }
}

impl<'a> Reference<'a> {
    fn run(&self, job: &JobTrace) -> Result<SimReport, SimError> {
        job.validate().map_err(SimError::InvalidTrace)?;
        let n = job.workers.len();
        let mut st = State {
            ranks: job
                .workers
                .iter()
                .map(|w| {
                    let (ev_slot, nstreams) = intern_streams(&w.events);
                    RankSim {
                        next_op: 0,
                        host_time: SimTime::ZERO,
                        host_busy: SimTime::ZERO,
                        streams: (0..nstreams).map(|_| StreamSim::default()).collect(),
                        ev_slot,
                        blocked: None,
                        done: false,
                        comm_busy: SimTime::ZERO,
                        compute_busy: SimTime::ZERO,
                    }
                })
                .collect(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            events_processed: 0,
            fired: vec![HashMap::new(); n],
            event_stream_waiters: vec![HashMap::new(); n],
            collectives: HashMap::new(),
        };
        for wi in 0..n {
            st.push(SimTime::ZERO, EvKind::HostDispatch { wi });
        }

        while let Some(Reverse(ev)) = st.heap.pop() {
            st.now = ev.at;
            st.events_processed += 1;
            match ev.kind {
                EvKind::HostDispatch { wi } => self.host_dispatch(job, &mut st, wi),
                EvKind::Pump { wi, si } => self.pump(job, &mut st, wi, si),
            }
        }

        let stuck: Vec<u32> = st
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.done)
            .map(|(i, _)| job.workers[i].rank)
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck_ranks: stuck });
        }

        let rank_end: Vec<SimTime> = st
            .ranks
            .iter()
            .map(|r| {
                let s = r
                    .streams
                    .iter()
                    .map(|s| s.busy_until)
                    .fold(SimTime::ZERO, SimTime::max);
                r.host_time.max(s)
            })
            .collect();
        Ok(SimReport {
            total_time: rank_end.iter().copied().fold(SimTime::ZERO, SimTime::max),
            rank_end_times: rank_end,
            comm_time: st
                .ranks
                .iter()
                .map(|r| r.comm_busy)
                .fold(SimTime::ZERO, SimTime::max),
            compute_time: st
                .ranks
                .iter()
                .map(|r| r.compute_busy)
                .fold(SimTime::ZERO, SimTime::max),
            host_time: st
                .ranks
                .iter()
                .map(|r| r.host_busy)
                .fold(SimTime::ZERO, SimTime::max),
            peak_mem_bytes: job.peak_mem_bytes(),
            events_processed: st.events_processed,
        })
    }

    fn host_dispatch(&self, job: &JobTrace, st: &mut State, wi: usize) {
        if st.ranks[wi].blocked.is_some() || st.ranks[wi].done {
            return;
        }
        let events = &job.workers[wi].events;
        loop {
            let pc = st.ranks[wi].next_op;
            if pc >= events.len() {
                st.ranks[wi].done = true;
                return;
            }
            let ev = &events[pc];
            let si = st.ranks[wi].ev_slot[pc] as usize;
            st.ranks[wi].next_op += 1;
            st.ranks[wi].host_time += ev.host_delay;
            st.ranks[wi].host_busy += ev.host_delay;
            let issue = st.ranks[wi].host_time;

            match ev.op {
                DeviceOp::Malloc { .. } | DeviceOp::Free { .. } => {}
                DeviceOp::KernelLaunch { kernel } => {
                    let dur = self.estimator.kernel_time(&kernel);
                    self.enqueue(
                        st,
                        wi,
                        si,
                        issue,
                        StreamOp::Timed {
                            dur,
                            is_comm: false,
                        },
                    );
                }
                DeviceOp::MemcpyAsync { bytes, kind, sync } => {
                    let dur = self.estimator.memcpy_time(bytes, kind);
                    self.enqueue(
                        st,
                        wi,
                        si,
                        issue,
                        StreamOp::Timed {
                            dur,
                            is_comm: false,
                        },
                    );
                    if sync && self.park_host_on_drain(st, wi, si) {
                        return;
                    }
                }
                DeviceOp::EventRecord { event, version } => {
                    self.enqueue(st, wi, si, issue, StreamOp::Record { event, version });
                }
                DeviceOp::StreamWaitEvent { event, version } => {
                    self.enqueue(st, wi, si, issue, StreamOp::Wait { event, version });
                }
                DeviceOp::EventSynchronize { event, version } => {
                    match st.fired[wi].get(&(event, version)).copied() {
                        Some(t) => {
                            st.ranks[wi].host_time = st.ranks[wi].host_time.max(t);
                        }
                        None if version == 0 => {}
                        None => {
                            st.ranks[wi].blocked = Some(HostBlock::Event { event, version });
                            return;
                        }
                    }
                }
                DeviceOp::StreamSynchronize => {
                    if self.park_host_on_drain(st, wi, si) {
                        return;
                    }
                }
                DeviceOp::DeviceSynchronize => {
                    let now = st.ranks[wi].host_time;
                    let mut latest = now;
                    let mut remaining = 0u32;
                    for s in &st.ranks[wi].streams {
                        if s.drained(now) {
                            continue;
                        }
                        if s.queue.is_empty() && s.blocked.is_none() {
                            latest = latest.max(s.busy_until);
                        } else {
                            remaining += 1;
                        }
                    }
                    st.ranks[wi].host_time = latest;
                    if remaining > 0 {
                        st.ranks[wi].blocked = Some(HostBlock::DeviceDrain { remaining });
                        return;
                    }
                }
                DeviceOp::Collective { desc } => {
                    let key = CollKey::from_desc(&desc);
                    self.enqueue(st, wi, si, issue, StreamOp::Join { key, desc });
                }
            }
        }
    }

    fn enqueue(&self, st: &mut State, wi: usize, si: usize, ready_at: SimTime, op: StreamOp) {
        st.ranks[wi].streams[si]
            .queue
            .push_back(QueuedOp { ready_at, op });
        st.push(ready_at.max(st.now), EvKind::Pump { wi, si });
    }

    fn park_host_on_drain(&self, st: &mut State, wi: usize, si: usize) -> bool {
        let now = st.ranks[wi].host_time;
        let s = &st.ranks[wi].streams[si];
        if s.queue.is_empty() && s.blocked.is_none() {
            st.ranks[wi].host_time = now.max(s.busy_until);
            false
        } else {
            st.ranks[wi].blocked = Some(HostBlock::StreamDrain { si });
            true
        }
    }

    fn pump(&self, job: &JobTrace, st: &mut State, wi: usize, si: usize) {
        loop {
            let now = st.now;
            let s = &mut st.ranks[wi].streams[si];
            if s.blocked.is_some() || s.busy_until > now {
                return;
            }
            let front = match s.queue.front().copied() {
                None => {
                    self.notify_drain(st, wi, si, now);
                    return;
                }
                Some(f) => f,
            };
            if front.ready_at > now {
                st.push(front.ready_at, EvKind::Pump { wi, si });
                return;
            }
            s.queue.pop_front();
            match front.op {
                StreamOp::Timed { dur, is_comm } => {
                    s.busy_until = now + dur;
                    if is_comm {
                        st.ranks[wi].comm_busy += dur;
                    } else {
                        st.ranks[wi].compute_busy += dur;
                    }
                    st.push(now + dur, EvKind::Pump { wi, si });
                    return;
                }
                StreamOp::Record { event, version } => {
                    st.fired[wi].insert((event, version), now);
                    if let Some(waiters) = st.event_stream_waiters[wi].remove(&(event, version)) {
                        for w in waiters {
                            let ws = &mut st.ranks[wi].streams[w];
                            if ws.blocked == Some(StreamBlock::Event { event, version }) {
                                ws.blocked = None;
                                ws.busy_until = ws.busy_until.max(now);
                                st.push(now, EvKind::Pump { wi, si: w });
                            }
                        }
                    }
                    if st.ranks[wi].blocked == Some(HostBlock::Event { event, version }) {
                        st.ranks[wi].blocked = None;
                        st.ranks[wi].host_time = st.ranks[wi].host_time.max(now);
                        st.push(now, EvKind::HostDispatch { wi });
                    }
                }
                StreamOp::Wait { event, version } => {
                    if version == 0 || st.fired[wi].contains_key(&(event, version)) {
                        let fire = st.fired[wi]
                            .get(&(event, version))
                            .copied()
                            .unwrap_or(SimTime::ZERO);
                        let s = &mut st.ranks[wi].streams[si];
                        s.busy_until = s.busy_until.max(fire);
                        if fire > now {
                            st.push(fire, EvKind::Pump { wi, si });
                            return;
                        }
                    } else {
                        st.ranks[wi].streams[si].blocked =
                            Some(StreamBlock::Event { event, version });
                        st.event_stream_waiters[wi]
                            .entry((event, version))
                            .or_default()
                            .push(si);
                        return;
                    }
                }
                StreamOp::Join { key, desc } => {
                    st.ranks[wi].streams[si].blocked = Some(StreamBlock::Collective);
                    st.collectives
                        .entry(key)
                        .or_default()
                        .push((wi, si, now, desc));
                    let required = required_participants(job, &desc);
                    let arrived = st.collectives[&key].len();
                    if arrived >= required {
                        self.resolve_collective(job, st, key);
                    }
                    return;
                }
            }
        }
    }

    fn resolve_collective(&self, job: &JobTrace, st: &mut State, key: CollKey) {
        let participants = st.collectives.remove(&key).unwrap_or_default();
        let start = participants
            .iter()
            .map(|&(_, _, t, _)| t)
            .fold(SimTime::ZERO, SimTime::max);
        let desc = participants[0].3;
        let global_ranks: Vec<u32> = match desc.kind {
            CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => {
                match job.comm_groups.get(&desc.comm_id) {
                    Some(members) => [desc.rank_in_comm, peer]
                        .iter()
                        .filter_map(|&i| members.get(i as usize).copied())
                        .collect(),
                    None => participants
                        .iter()
                        .map(|&(wi, ..)| job.workers[wi].rank)
                        .collect(),
                }
            }
            _ => job
                .comm_groups
                .get(&desc.comm_id)
                .cloned()
                .unwrap_or_default(),
        };
        let dur =
            self.estimator
                .collective_time(desc.kind, desc.bytes, &global_ranks, self.cluster);
        let end = start + dur;
        for (wi, si, _, _) in participants {
            let s = &mut st.ranks[wi].streams[si];
            s.blocked = None;
            s.busy_until = end;
            st.ranks[wi].comm_busy += dur;
            st.push(end, EvKind::Pump { wi, si });
        }
    }

    fn notify_drain(&self, st: &mut State, wi: usize, si: usize, now: SimTime) {
        match st.ranks[wi].blocked {
            Some(HostBlock::StreamDrain { si: want }) if want == si => {
                st.ranks[wi].blocked = None;
                st.ranks[wi].host_time = st.ranks[wi].host_time.max(now);
                st.push(now, EvKind::HostDispatch { wi });
            }
            Some(HostBlock::DeviceDrain { remaining }) => {
                let left = remaining.saturating_sub(1);
                st.ranks[wi].host_time = st.ranks[wi].host_time.max(now);
                if left == 0 {
                    st.ranks[wi].blocked = None;
                    st.push(now, EvKind::HostDispatch { wi });
                } else {
                    st.ranks[wi].blocked = Some(HostBlock::DeviceDrain { remaining: left });
                }
            }
            _ => {}
        }
    }
}

fn required_participants(job: &JobTrace, desc: &CollectiveDesc) -> usize {
    let members = match job.comm_groups.get(&desc.comm_id) {
        Some(m) => m,
        None => return desc.kind.required_participants(desc.nranks) as usize,
    };
    match desc.kind {
        CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => {
            let mut req = 0usize;
            for idx in [desc.rank_in_comm, peer] {
                if let Some(&g) = members.get(idx as usize) {
                    if job.is_present(g) {
                        req += 1;
                    }
                }
            }
            req.max(1)
        }
        _ => (job.present_count(members) as usize).max(1),
    }
}
