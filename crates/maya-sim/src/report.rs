//! Simulation output: the paper's "comprehensive simulation report".

use maya_trace::SimTime;

/// What a simulation run reports (Figure 5's "Simulation Report":
/// batch time, communication time, peak memory usage).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// End-to-end traced-region time (max over ranks).
    pub total_time: SimTime,
    /// Per-present-worker completion times.
    pub rank_end_times: Vec<SimTime>,
    /// Communication-busy time on the busiest rank.
    pub comm_time: SimTime,
    /// Compute-busy time on the busiest rank (summed kernel durations).
    pub compute_time: SimTime,
    /// Host-dispatch time on the busiest rank.
    pub host_time: SimTime,
    /// Peak device memory across ranks (from emulation summaries).
    pub peak_mem_bytes: u64,
    /// Discrete events processed (for the Fig. 13 scaling study).
    pub events_processed: u64,
}

impl SimReport {
    /// Peak memory in GiB.
    pub fn peak_mem_gib(&self) -> f64 {
        self.peak_mem_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Fraction of the batch spent with communication in flight on the
    /// busiest rank (coarse overlap indicator).
    pub fn comm_fraction(&self) -> f64 {
        if self.total_time == SimTime::ZERO {
            0.0
        } else {
            self.comm_time.as_secs_f64() / self.total_time.as_secs_f64()
        }
    }
}

impl serde::Serialize for SimReport {
    fn serialize(&self, w: &mut serde::Writer) {
        self.total_time.serialize(w);
        self.rank_end_times.serialize(w);
        self.comm_time.serialize(w);
        self.compute_time.serialize(w);
        self.host_time.serialize(w);
        self.peak_mem_bytes.serialize(w);
        self.events_processed.serialize(w);
    }
}

impl<'de> serde::Deserialize<'de> for SimReport {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::Error> {
        use serde::Deserialize;
        Ok(SimReport {
            total_time: Deserialize::deserialize(r)?,
            rank_end_times: Deserialize::deserialize(r)?,
            comm_time: Deserialize::deserialize(r)?,
            compute_time: Deserialize::deserialize(r)?,
            host_time: Deserialize::deserialize(r)?,
            peak_mem_bytes: Deserialize::deserialize(r)?,
            events_processed: Deserialize::deserialize(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_the_wire_codec() {
        let r = SimReport {
            total_time: SimTime::from_ms(100.0),
            rank_end_times: vec![SimTime::from_ms(99.0), SimTime::from_ms(100.0)],
            comm_time: SimTime::from_ms(25.0),
            compute_time: SimTime::from_ms(70.0),
            host_time: SimTime::from_ms(5.0),
            peak_mem_bytes: 38 * 1024 * 1024 * 1024,
            events_processed: 1000,
        };
        let text = serde::to_string(&r);
        let back: SimReport = serde::from_str(&text).expect("decode");
        assert_eq!(serde::to_string(&back), text);
        assert_eq!(back.total_time, r.total_time);
        assert_eq!(back.rank_end_times, r.rank_end_times);
        assert_eq!(back.events_processed, r.events_processed);
    }

    #[test]
    fn derived_metrics() {
        let r = SimReport {
            total_time: SimTime::from_ms(100.0),
            rank_end_times: vec![SimTime::from_ms(100.0)],
            comm_time: SimTime::from_ms(25.0),
            compute_time: SimTime::from_ms(70.0),
            host_time: SimTime::from_ms(5.0),
            peak_mem_bytes: 38 * 1024 * 1024 * 1024,
            events_processed: 1000,
        };
        assert!((r.comm_fraction() - 0.25).abs() < 1e-9);
        assert!((r.peak_mem_gib() - 38.0).abs() < 1e-9);
    }
}
