//! Simulation output: the paper's "comprehensive simulation report".

use maya_trace::SimTime;

/// What a simulation run reports (Figure 5's "Simulation Report":
/// batch time, communication time, peak memory usage).
#[derive(Clone, Debug)]
pub struct SimReport {
    /// End-to-end traced-region time (max over ranks).
    pub total_time: SimTime,
    /// Per-present-worker completion times.
    pub rank_end_times: Vec<SimTime>,
    /// Communication-busy time on the busiest rank.
    pub comm_time: SimTime,
    /// Compute-busy time on the busiest rank (summed kernel durations).
    pub compute_time: SimTime,
    /// Host-dispatch time on the busiest rank.
    pub host_time: SimTime,
    /// Peak device memory across ranks (from emulation summaries).
    pub peak_mem_bytes: u64,
    /// Discrete events processed (for the Fig. 13 scaling study).
    pub events_processed: u64,
}

impl SimReport {
    /// Peak memory in GiB.
    pub fn peak_mem_gib(&self) -> f64 {
        self.peak_mem_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Fraction of the batch spent with communication in flight on the
    /// busiest rank (coarse overlap indicator).
    pub fn comm_fraction(&self) -> f64 {
        if self.total_time == SimTime::ZERO {
            0.0
        } else {
            self.comm_time.as_secs_f64() / self.total_time.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = SimReport {
            total_time: SimTime::from_ms(100.0),
            rank_end_times: vec![SimTime::from_ms(100.0)],
            comm_time: SimTime::from_ms(25.0),
            compute_time: SimTime::from_ms(70.0),
            host_time: SimTime::from_ms(5.0),
            peak_mem_bytes: 38 * 1024 * 1024 * 1024,
            events_processed: 1000,
        };
        assert!((r.comm_fraction() - 0.25).abs() < 1e-9);
        assert!((r.peak_mem_gib() - 38.0).abs() < 1e-9);
    }
}
