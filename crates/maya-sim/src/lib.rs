//! Maya's discrete-event simulator (§4.3, Appendix A).
//!
//! Replays an annotated job trace over a cluster specification:
//!
//! - each host is a dispatch queue that replays recorded per-call host
//!   delays as blocking work and runs ahead of the device exactly as a
//!   CUDA host thread does;
//! - each device exposes streams that execute timed operations FIFO;
//! - `cudaEventRecord` / `cudaStreamWaitEvent` / `cuda*Synchronize` are
//!   modeled with a CUDA-event wait map keyed by `(event, version)`
//!   (Algorithm 3);
//! - collectives rendezvous in a network wait map keyed by
//!   `(communicator, sequence)`; once the last participant joins, all
//!   streams advance in lockstep by the estimator-predicted wire time —
//!   the paper's deliberate simplification (no SM contention, no
//!   completion skew), whose cost shows up as Table 3's oracle gap.
//!
//! Durations come from a pluggable [`maya_estimator::RuntimeEstimator`].

pub mod engine;
pub mod reference;
pub mod report;

pub use engine::{simulate, SimError, SimObs, SimScratch, Simulator};
pub use report::SimReport;
