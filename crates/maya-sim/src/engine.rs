//! The discrete-event simulation engine (Algorithms 1-3).
//!
//! The hot loop is allocation-free and hash-free: raw [`StreamId`]s
//! *and* CUDA-event `(event, version)` keys are interned to dense
//! `u32` slots once at trace load, so the per-event work in
//! `Simulator::pump` and the host dispatch loop is pure `Vec`
//! indexing. All mutable state lives in a reusable [`SimScratch`]
//! arena ([`Simulator::run_with_scratch`]) so repeated runs — a config
//! search replaying thousands of near-identical traces, or a serving
//! worker — amortize every allocation. The pre-optimization core is
//! preserved in [`crate::reference`] and equivalence is enforced by
//! test: both cores must produce byte-identical [`SimReport`]s.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use maya_estimator::RuntimeEstimator;
use maya_hw::ClusterSpec;
use maya_net::{FaultPlan, FlowNet};
use maya_trace::{
    CollectiveDesc, CollectiveKind, DeviceOp, JobTrace, SimTime, StreamId, WorkerTrace,
};

use crate::report::SimReport;

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The trace was structurally invalid.
    InvalidTrace(String),
    /// Progress stopped with unfinished ranks (mismatched collectives or
    /// waits that can never fire).
    Deadlock {
        /// Ranks that never finished.
        stuck_ranks: Vec<u32>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidTrace(m) => write!(f, "invalid trace: {m}"),
            SimError::Deadlock { stuck_ranks } => {
                write!(f, "simulation deadlocked; stuck ranks {stuck_ranks:?}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Key of a collective rendezvous in the network wait map.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct CollKey {
    comm: u64,
    seq: u32,
    pair: (u32, u32),
}

impl CollKey {
    fn from_desc(d: &CollectiveDesc) -> Self {
        let pair = match d.kind {
            CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => {
                (d.rank_in_comm.min(peer), d.rank_in_comm.max(peer))
            }
            _ => (u32::MAX, u32::MAX),
        };
        CollKey {
            comm: d.comm_id,
            seq: d.seq,
            pair,
        }
    }
}

/// An operation queued on a simulated stream.
///
/// Event markers carry the dense per-worker slot of their
/// `(event, version)` key, not the raw key — see [`RankSim::load`].
#[derive(Clone, Copy, Debug)]
enum StreamOp {
    /// Kernel / memcpy with a pre-predicted duration.
    Timed { dur: SimTime, is_comm: bool },
    /// `cudaEventRecord` marker.
    Record { slot: u32 },
    /// `cudaStreamWaitEvent` marker. `zero` is the CUDA never-recorded
    /// sentinel (`version == 0`): the wait is satisfied even if the
    /// slot never fires.
    Wait { slot: u32, zero: bool },
    /// NCCL collective join.
    Join { key: CollKey, desc: CollectiveDesc },
}

#[derive(Clone, Copy, Debug)]
struct QueuedOp {
    ready_at: SimTime,
    op: StreamOp,
}

/// Why a stream is not making progress.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StreamBlock {
    Event { slot: u32 },
    Collective,
}

#[derive(Default)]
struct StreamSim {
    queue: VecDeque<QueuedOp>,
    busy_until: SimTime,
    blocked: Option<StreamBlock>,
}

impl StreamSim {
    fn drained(&self, now: SimTime) -> bool {
        self.queue.is_empty() && self.blocked.is_none() && self.busy_until <= now
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.busy_until = SimTime::ZERO;
        self.blocked = None;
    }
}

/// Why a host thread is parked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum HostBlock {
    Event { slot: u32 },
    StreamDrain { si: usize },
    DeviceDrain { remaining: u32 },
}

/// Sentinel slot for trace events that carry no CUDA-event key.
const NO_EVENT: u32 = u32::MAX;

/// Per-rank simulation state.
///
/// Streams live in a dense `Vec` indexed by per-worker *slots*: raw
/// [`StreamId`]s are interned once at trace load (order of first
/// appearance), and every event carries its precomputed slot in
/// `ev_slot`. CUDA-event `(event, version)` keys get the same
/// treatment into `ev_eslot`, turning the event wait map (`fired`) and
/// waiter registry (`event_waiters`) into dense `Vec`s. The hot paths
/// — host dispatch and `Simulator::pump` — then index instead of
/// hashing, the dslab-style indexed event-core idiom.
#[derive(Default)]
struct RankSim {
    next_op: usize,
    host_time: SimTime,
    host_busy: SimTime,
    /// Dense stream states, one per interned stream slot.
    streams: Vec<StreamSim>,
    /// Dense stream slot of each trace event (parallel to the worker's
    /// `events`).
    ev_slot: Vec<u32>,
    /// Dense `(event, version)` slot of each trace event; [`NO_EVENT`]
    /// for ops without a CUDA-event key.
    ev_eslot: Vec<u32>,
    /// CUDA-event wait map by event slot: fire time once recorded.
    fired: Vec<Option<SimTime>>,
    /// Streams (by dense slot) waiting on each event slot.
    event_waiters: Vec<Vec<usize>>,
    blocked: Option<HostBlock>,
    done: bool,
    comm_busy: SimTime,
    compute_busy: SimTime,
}

impl RankSim {
    /// Resets this rank for a new run and interns the worker's stream
    /// ids and CUDA-event keys into dense slots, reusing the scratch
    /// index maps and every per-rank buffer's capacity.
    fn load(
        &mut self,
        w: &WorkerTrace,
        stream_index: &mut HashMap<StreamId, u32>,
        event_index: &mut HashMap<(u64, u32), u32>,
    ) {
        self.next_op = 0;
        self.host_time = SimTime::ZERO;
        self.host_busy = SimTime::ZERO;
        self.blocked = None;
        self.done = false;
        self.comm_busy = SimTime::ZERO;
        self.compute_busy = SimTime::ZERO;

        stream_index.clear();
        event_index.clear();
        self.ev_slot.clear();
        self.ev_eslot.clear();
        self.ev_slot.reserve(w.events.len());
        self.ev_eslot.reserve(w.events.len());
        for e in &w.events {
            let next = stream_index.len() as u32;
            self.ev_slot
                .push(*stream_index.entry(e.stream).or_insert(next));
            let eslot = match e.op {
                DeviceOp::EventRecord { event, version }
                | DeviceOp::StreamWaitEvent { event, version }
                | DeviceOp::EventSynchronize { event, version } => {
                    let next = event_index.len() as u32;
                    *event_index.entry((event, version)).or_insert(next)
                }
                _ => NO_EVENT,
            };
            self.ev_eslot.push(eslot);
        }

        let nstreams = stream_index.len();
        self.streams.truncate(nstreams);
        for s in &mut self.streams {
            s.reset();
        }
        self.streams.resize_with(nstreams, StreamSim::default);

        let nevents = event_index.len();
        self.fired.clear();
        self.fired.resize(nevents, None);
        self.event_waiters.truncate(nevents);
        for v in &mut self.event_waiters {
            v.clear();
        }
        self.event_waiters.resize_with(nevents, Vec::new);
    }
}

/// Heap event kinds (Algorithm 1's polymorphic events).
#[derive(Clone, Copy, Debug)]
enum EvKind {
    /// Host dispatch loop (re)starts for a rank.
    HostDispatch { wi: usize },
    /// A stream should attempt to make progress.
    Pump { wi: usize, si: usize },
    /// A network flow drained its bytes (flow model only). Stale if
    /// `epoch` no longer matches the flow net's convergence epoch —
    /// every flow start/finish re-schedules fresh completions.
    FlowDone { flow: u32, epoch: u32 },
    /// Injected rank failure `fi` of the fault plan strikes worker `wi`.
    Fault { wi: usize, fi: usize },
}

#[derive(Clone, Copy, Debug)]
struct HeapEv {
    at: SimTime,
    seq: u64,
    kind: EvKind,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Observability hooks for the simulator (see [`Simulator::with_obs`]).
///
/// The hot loop never touches these: the per-run tallies live in
/// [`SimScratch`] (plain integers the loop maintains anyway), and
/// publishing into the shared handles happens exactly once, after the
/// run. With no hooks installed the simulator is byte-for-byte the
/// uninstrumented engine.
#[derive(Clone, Default)]
pub struct SimObs {
    /// Cumulative heap events processed across runs (the same tally
    /// reported per run in [`SimReport::events_processed`]).
    pub events: maya_obs::Counter,
    /// High-water mark of the pending-event heap, max over all runs —
    /// the simulator's working-set depth.
    pub heap_depth_high_water: maya_obs::Gauge,
    /// Flow-solver invocations (max-min rate re-convergences),
    /// cumulative. Zero when no cluster topology is in play.
    pub flow_solves: maya_obs::Counter,
    /// Flight recorder for the `sim.run` phase span; a disabled
    /// recorder makes the record call a no-op.
    pub recorder: maya_obs::FlightRecorder,
}

/// The event-driven simulator.
pub struct Simulator<'a> {
    estimator: &'a dyn RuntimeEstimator,
    cluster: &'a ClusterSpec,
    /// Fault-injection plan; `None` (the default) is the byte-identical
    /// happy path. Set via [`Simulator::with_faults`].
    faults: Option<&'a FaultPlan>,
    /// Post-run observability hooks; `None` (the default) publishes
    /// nothing and skips even the wall-clock read.
    obs: Option<&'a SimObs>,
}

/// Convenience entry point.
pub fn simulate(
    job: &JobTrace,
    cluster: &ClusterSpec,
    estimator: &dyn RuntimeEstimator,
) -> Result<SimReport, SimError> {
    Simulator {
        estimator,
        cluster,
        faults: None,
        obs: None,
    }
    .run(job)
}

/// Reusable simulation arena: the heap, per-rank state, wait tables,
/// collective rendezvous buffers, and the interner index maps.
///
/// A fresh scratch and a reused one produce byte-identical
/// [`SimReport`]s (enforced by proptest); reuse only skips the
/// allocations. Keep one per thread (or a pooled set) and pass it to
/// [`Simulator::run_with_scratch`] when simulating in a loop.
#[derive(Default)]
pub struct SimScratch {
    ranks: Vec<RankSim>,
    heap: BinaryHeap<Reverse<HeapEv>>,
    /// Network collective wait map.
    collectives: HashMap<CollKey, Vec<(usize, usize, SimTime, CollectiveDesc)>>,
    stream_index: HashMap<StreamId, u32>,
    event_index: HashMap<(u64, u32), u32>,
    seq: u64,
    now: SimTime,
    events_processed: u64,
    /// Deepest the pending-event heap got this run (one compare per
    /// push — the tally is kept unconditionally; only *publishing* is
    /// gated on [`Simulator::with_obs`]).
    heap_high_water: usize,
    /// Flow-solver invocations (rate re-convergences) this run.
    flow_solves: u64,
    /// Shared-bandwidth flow model state (used only when the cluster
    /// spec carries a topology; otherwise untouched).
    net: FlowNet,
    /// Per-flow bookkeeping, indexed by the net's flow id.
    flow_meta: Vec<FlowMeta>,
    /// Reusable buffer for re-scheduling flow completions.
    flow_tmp: Vec<(u32, u64)>,
}

/// Simulator-side state of one in-flight collective flow.
#[derive(Default)]
struct FlowMeta {
    /// Participant `(worker, stream)` pairs released on completion.
    participants: Vec<(usize, usize)>,
    /// Rendezvous completion time the collective started moving bytes.
    start: SimTime,
    /// Summed propagation latency of the flow's route, paid once on
    /// top of the bandwidth term.
    latency: SimTime,
}

impl SimScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, at: SimTime, kind: EvKind) {
        self.seq += 1;
        self.heap.push(Reverse(HeapEv {
            at,
            seq: self.seq,
            kind,
        }));
        self.heap_high_water = self.heap_high_water.max(self.heap.len());
    }

    /// Resets for a new run over `job`, keeping buffer capacity.
    fn reset(&mut self, job: &JobTrace) {
        let n = job.workers.len();
        self.heap.clear();
        self.collectives.clear();
        self.seq = 0;
        self.now = SimTime::ZERO;
        self.events_processed = 0;
        self.heap_high_water = 0;
        self.flow_solves = 0;
        self.ranks.truncate(n);
        self.ranks.resize_with(n, RankSim::default);
        // Split borrows: each rank's loader shares the two index maps.
        let (ranks, stream_index, event_index) = (
            &mut self.ranks,
            &mut self.stream_index,
            &mut self.event_index,
        );
        for (r, w) in ranks.iter_mut().zip(&job.workers) {
            r.load(w, stream_index, event_index);
        }
    }
}

impl<'a> Simulator<'a> {
    /// Creates a simulator over a cluster with the given estimator.
    pub fn new(estimator: &'a dyn RuntimeEstimator, cluster: &'a ClusterSpec) -> Self {
        Simulator {
            estimator,
            cluster,
            faults: None,
            obs: None,
        }
    }

    /// Installs a fault-injection plan. Empty plans are normalized to
    /// `None` so they cannot perturb the default path: a `Some(plan)`
    /// that injects nothing is exactly the no-fault simulator.
    pub fn with_faults(mut self, faults: Option<&'a FaultPlan>) -> Self {
        self.faults = faults.filter(|p| !p.is_empty());
        self
    }

    /// Installs post-run observability sinks. The event loop itself is
    /// untouched either way — per-run tallies live in [`SimScratch`]
    /// and are published in one shot after the loop drains, so a
    /// `None` (the default) run is byte-identical to an instrumented
    /// one and never even reads the wall clock.
    pub fn with_obs(mut self, obs: Option<&'a SimObs>) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the simulation (Algorithm 1's main loop) with a private
    /// scratch arena.
    pub fn run(&self, job: &JobTrace) -> Result<SimReport, SimError> {
        self.run_with_scratch(job, &mut SimScratch::new())
    }

    /// Like [`Simulator::run`], but reuses `scratch`'s buffers instead
    /// of allocating fresh state.
    pub fn run_with_scratch(
        &self,
        job: &JobTrace,
        scratch: &mut SimScratch,
    ) -> Result<SimReport, SimError> {
        job.validate().map_err(SimError::InvalidTrace)?;
        self.run_prevalidated(job, scratch)
    }

    /// Like [`Simulator::run_with_scratch`], but skips
    /// [`JobTrace::validate`]. For callers that already validated the
    /// trace (or constructed it from a validated one, e.g. the predict
    /// pipeline's collate step) and simulate it repeatedly. On an
    /// *invalid* trace this is memory-safe but may return an arbitrary
    /// report or `Deadlock` instead of `InvalidTrace`.
    pub fn run_prevalidated(
        &self,
        job: &JobTrace,
        scratch: &mut SimScratch,
    ) -> Result<SimReport, SimError> {
        // lint:allow(wall-clock-in-output): obs stage timing, only taken when an observer is attached — SimReport itself is wall-clock-free
        let run_started = self.obs.map(|_| std::time::Instant::now());
        let st = scratch;
        st.reset(job);
        if let Some(topo) = &self.cluster.topology {
            st.net.reset(topo.links.iter().map(|l| l.bytes_per_sec()));
            st.flow_meta.clear();
        }
        let n = job.workers.len();
        for wi in 0..n {
            st.push(SimTime::ZERO, EvKind::HostDispatch { wi });
        }
        if let Some(plan) = self.faults {
            // Failures on ranks absent from this (possibly deduped or
            // selectively launched) job are simply never scheduled.
            for (fi, f) in plan.failures.iter().enumerate() {
                if let Some(wi) = job.workers.iter().position(|w| w.rank == f.rank) {
                    st.push(f.at, EvKind::Fault { wi, fi });
                }
            }
        }

        while let Some(Reverse(ev)) = st.heap.pop() {
            st.now = ev.at;
            st.events_processed += 1;
            match ev.kind {
                EvKind::HostDispatch { wi } => self.host_dispatch(job, st, wi),
                EvKind::Pump { wi, si } => self.pump(job, st, wi, si),
                EvKind::FlowDone { flow, epoch } => self.flow_done(st, flow, epoch),
                EvKind::Fault { wi, fi } => self.apply_fault(st, wi, fi),
            }
        }

        // Publish before the deadlock check: events were processed and
        // a wall-clock interval elapsed whether or not all ranks
        // finished, and a deadlocked run is exactly when the counters
        // are most interesting.
        if let (Some(obs), Some(started)) = (self.obs, run_started) {
            obs.events.add(st.events_processed);
            obs.heap_depth_high_water.raise(st.heap_high_water as i64);
            obs.flow_solves.add(st.flow_solves);
            obs.recorder.record("sim.run", started, started.elapsed());
        }

        let stuck: Vec<u32> = st
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.done)
            .map(|(i, _)| job.workers[i].rank)
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck_ranks: stuck });
        }

        let rank_end: Vec<SimTime> = st
            .ranks
            .iter()
            .map(|r| {
                let s = r
                    .streams
                    .iter()
                    .map(|s| s.busy_until)
                    .fold(SimTime::ZERO, SimTime::max);
                r.host_time.max(s)
            })
            .collect();
        Ok(SimReport {
            total_time: rank_end.iter().copied().fold(SimTime::ZERO, SimTime::max),
            rank_end_times: rank_end,
            comm_time: st
                .ranks
                .iter()
                .map(|r| r.comm_busy)
                .fold(SimTime::ZERO, SimTime::max),
            compute_time: st
                .ranks
                .iter()
                .map(|r| r.compute_busy)
                .fold(SimTime::ZERO, SimTime::max),
            host_time: st
                .ranks
                .iter()
                .map(|r| r.host_busy)
                .fold(SimTime::ZERO, SimTime::max),
            peak_mem_bytes: job.peak_mem_bytes(),
            events_processed: st.events_processed,
        })
    }

    /// Host dispatch loop: replays recorded host delays and runs ahead,
    /// enqueuing async work onto streams, until it blocks or finishes.
    fn host_dispatch(&self, job: &JobTrace, st: &mut SimScratch, wi: usize) {
        if st.ranks[wi].blocked.is_some() || st.ranks[wi].done {
            return;
        }
        let events = &job.workers[wi].events;
        loop {
            let pc = st.ranks[wi].next_op;
            if pc >= events.len() {
                st.ranks[wi].done = true;
                return;
            }
            let ev = &events[pc];
            let si = st.ranks[wi].ev_slot[pc] as usize;
            let eslot = st.ranks[wi].ev_eslot[pc];
            st.ranks[wi].next_op += 1;
            st.ranks[wi].host_time += ev.host_delay;
            st.ranks[wi].host_busy += ev.host_delay;
            let issue = st.ranks[wi].host_time;

            match ev.op {
                DeviceOp::Malloc { .. } | DeviceOp::Free { .. } => {}
                DeviceOp::KernelLaunch { kernel } => {
                    let dur = self.estimator.kernel_time(&kernel);
                    let dur = self.scaled_kernel_time(job, wi, issue, dur);
                    self.enqueue(
                        st,
                        wi,
                        si,
                        issue,
                        StreamOp::Timed {
                            dur,
                            is_comm: false,
                        },
                    );
                }
                DeviceOp::MemcpyAsync { bytes, kind, sync } => {
                    let dur = self.estimator.memcpy_time(bytes, kind);
                    self.enqueue(
                        st,
                        wi,
                        si,
                        issue,
                        StreamOp::Timed {
                            dur,
                            is_comm: false,
                        },
                    );
                    if sync && self.park_host_on_drain(st, wi, si) {
                        // Blocking copy: host waits for the stream.
                        return;
                    }
                }
                DeviceOp::EventRecord { .. } => {
                    self.enqueue(st, wi, si, issue, StreamOp::Record { slot: eslot });
                }
                DeviceOp::StreamWaitEvent { version, .. } => {
                    let zero = version == 0;
                    self.enqueue(st, wi, si, issue, StreamOp::Wait { slot: eslot, zero });
                }
                DeviceOp::EventSynchronize { version, .. } => {
                    match st.ranks[wi].fired[eslot as usize] {
                        Some(t) => {
                            st.ranks[wi].host_time = st.ranks[wi].host_time.max(t);
                        }
                        None if version == 0 => {} // never-recorded: no-op
                        None => {
                            st.ranks[wi].blocked = Some(HostBlock::Event { slot: eslot });
                            return;
                        }
                    }
                }
                DeviceOp::StreamSynchronize => {
                    if self.park_host_on_drain(st, wi, si) {
                        return;
                    }
                }
                DeviceOp::DeviceSynchronize => {
                    let now = st.ranks[wi].host_time;
                    let mut latest = now;
                    let mut remaining = 0u32;
                    for s in &st.ranks[wi].streams {
                        if s.drained(now) {
                            continue;
                        }
                        if s.queue.is_empty() && s.blocked.is_none() {
                            latest = latest.max(s.busy_until);
                        } else {
                            remaining += 1;
                        }
                    }
                    st.ranks[wi].host_time = latest;
                    if remaining > 0 {
                        st.ranks[wi].blocked = Some(HostBlock::DeviceDrain { remaining });
                        return;
                    }
                }
                DeviceOp::Collective { desc } => {
                    let key = CollKey::from_desc(&desc);
                    self.enqueue(st, wi, si, issue, StreamOp::Join { key, desc });
                }
            }
        }
    }

    /// Applies per-rank condition state to an estimated kernel time:
    /// heterogeneous-pool generation scaling and straggler windows
    /// covering the issue instant. The estimator's shared memo stays
    /// rank-agnostic — scaling happens after the cache, per issue.
    /// Every scale is gated on `factor != 1.0` so the default
    /// (homogeneous, no-fault) path returns `dur` untouched, bit for
    /// bit.
    #[inline]
    fn scaled_kernel_time(
        &self,
        job: &JobTrace,
        wi: usize,
        issue: SimTime,
        mut dur: SimTime,
    ) -> SimTime {
        if self.cluster.hetero.is_none() && self.faults.is_none() {
            return dur;
        }
        let rank = job.workers[wi].rank;
        let gen_scale = self.cluster.kernel_scale(rank);
        if gen_scale != 1.0 {
            dur = dur.scale(gen_scale);
        }
        if let Some(plan) = self.faults {
            let slow = plan.slowdown(rank, issue);
            if slow != 1.0 {
                dur = dur.scale(slow);
            }
        }
        dur
    }

    /// Enqueues a stream op and pumps the stream at its issue time.
    fn enqueue(&self, st: &mut SimScratch, wi: usize, si: usize, ready_at: SimTime, op: StreamOp) {
        st.ranks[wi].streams[si]
            .queue
            .push_back(QueuedOp { ready_at, op });
        st.push(ready_at.max(st.now), EvKind::Pump { wi, si });
    }

    /// Parks the host until a stream drains. Returns true if parked.
    fn park_host_on_drain(&self, st: &mut SimScratch, wi: usize, si: usize) -> bool {
        let now = st.ranks[wi].host_time;
        let s = &st.ranks[wi].streams[si];
        if s.queue.is_empty() && s.blocked.is_none() {
            st.ranks[wi].host_time = now.max(s.busy_until);
            false
        } else {
            st.ranks[wi].blocked = Some(HostBlock::StreamDrain { si });
            true
        }
    }

    /// Stream progress (Algorithm 2's scheduler tick for one stream).
    fn pump(&self, job: &JobTrace, st: &mut SimScratch, wi: usize, si: usize) {
        loop {
            let now = st.now;
            let s = &mut st.ranks[wi].streams[si];
            if s.blocked.is_some() || s.busy_until > now {
                return;
            }
            let front = match s.queue.front().copied() {
                None => {
                    // Drained: wake a host parked on this stream/device.
                    self.notify_drain(st, wi, si, now);
                    return;
                }
                Some(f) => f,
            };
            if front.ready_at > now {
                st.push(front.ready_at, EvKind::Pump { wi, si });
                return;
            }
            s.queue.pop_front();
            match front.op {
                StreamOp::Timed { dur, is_comm } => {
                    s.busy_until = now + dur;
                    if is_comm {
                        st.ranks[wi].comm_busy += dur;
                    } else {
                        st.ranks[wi].compute_busy += dur;
                    }
                    st.push(now + dur, EvKind::Pump { wi, si });
                    return;
                }
                StreamOp::Record { slot } => {
                    st.ranks[wi].fired[slot as usize] = Some(now);
                    // Wake streams waiting on this event. Take the
                    // waiter list to appease the borrow checker, then
                    // give the (cleared) buffer back for reuse.
                    let mut waiters =
                        std::mem::take(&mut st.ranks[wi].event_waiters[slot as usize]);
                    for &w in &waiters {
                        let ws = &mut st.ranks[wi].streams[w];
                        if ws.blocked == Some(StreamBlock::Event { slot }) {
                            ws.blocked = None;
                            ws.busy_until = ws.busy_until.max(now);
                            st.push(now, EvKind::Pump { wi, si: w });
                        }
                    }
                    waiters.clear();
                    st.ranks[wi].event_waiters[slot as usize] = waiters;
                    // Wake a host parked on EventSynchronize.
                    if st.ranks[wi].blocked == Some(HostBlock::Event { slot }) {
                        st.ranks[wi].blocked = None;
                        st.ranks[wi].host_time = st.ranks[wi].host_time.max(now);
                        st.push(now, EvKind::HostDispatch { wi });
                    }
                }
                StreamOp::Wait { slot, zero } => {
                    let fired = st.ranks[wi].fired[slot as usize];
                    if zero || fired.is_some() {
                        // Already fired (or never-recorded no-op): the
                        // stream ordering itself enforces the constraint.
                        let fire = fired.unwrap_or(SimTime::ZERO);
                        let s = &mut st.ranks[wi].streams[si];
                        s.busy_until = s.busy_until.max(fire);
                        if fire > now {
                            st.push(fire, EvKind::Pump { wi, si });
                            return;
                        }
                    } else {
                        st.ranks[wi].streams[si].blocked = Some(StreamBlock::Event { slot });
                        st.ranks[wi].event_waiters[slot as usize].push(si);
                        return;
                    }
                }
                StreamOp::Join { key, desc } => {
                    st.ranks[wi].streams[si].blocked = Some(StreamBlock::Collective);
                    st.collectives
                        .entry(key)
                        .or_default()
                        .push((wi, si, now, desc));
                    let required = required_participants(job, &desc);
                    let arrived = st.collectives[&key].len();
                    if arrived >= required {
                        self.resolve_collective(job, st, key);
                    }
                    return;
                }
            }
        }
    }

    /// All participants joined: release every stream in lockstep after
    /// the predicted wire time (Algorithm 3).
    fn resolve_collective(&self, job: &JobTrace, st: &mut SimScratch, key: CollKey) {
        let participants = st.collectives.remove(&key).unwrap_or_default();
        let start = participants
            .iter()
            .map(|&(_, _, t, _)| t)
            .fold(SimTime::ZERO, SimTime::max);
        let desc = participants[0].3;
        let global_ranks: Vec<u32> = match desc.kind {
            CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => {
                match job.comm_groups.get(&desc.comm_id) {
                    Some(members) => [desc.rank_in_comm, peer]
                        .iter()
                        .filter_map(|&i| members.get(i as usize).copied())
                        .collect(),
                    None => participants
                        .iter()
                        .map(|&(wi, ..)| job.workers[wi].rank)
                        .collect(),
                }
            }
            _ => job
                .comm_groups
                .get(&desc.comm_id)
                .cloned()
                .unwrap_or_default(),
        };
        if self.cluster.topology.is_some() {
            self.start_flow(st, &participants, start, &global_ranks);
            return;
        }
        let dur =
            self.estimator
                .collective_time(desc.kind, desc.bytes, &global_ranks, self.cluster);
        let end = start + dur;
        for (wi, si, _, _) in participants {
            let s = &mut st.ranks[wi].streams[si];
            s.blocked = None;
            // `max` is the identity without faults (a stream blocked on
            // a rendezvous is never busy past it) but preserves an
            // injected restart penalty that outlives the collective.
            s.busy_until = s.busy_until.max(end);
            st.ranks[wi].comm_busy += dur;
            st.push(end, EvKind::Pump { wi, si });
        }
    }

    /// Flow-model path of [`Self::resolve_collective`]: the collective
    /// becomes a flow over the links its participant nodes touch, its
    /// byte count set by the algorithm's wire traffic. Starting the
    /// flow re-converges every active rate, so completion events for
    /// *all* flows are re-scheduled under the new epoch.
    fn start_flow(
        &self,
        st: &mut SimScratch,
        participants: &[(usize, usize, SimTime, CollectiveDesc)],
        start: SimTime,
        global_ranks: &[u32],
    ) {
        let topo = self
            .cluster
            .topology
            .as_ref()
            .expect("start_flow requires a topology");
        let desc = &participants[0].3;
        let bytes = wire_bytes(desc.kind, desc.bytes, global_ranks.len());
        // Participant nodes, sorted and deduped for a deterministic
        // route; nodes outside the topology (a spec smaller than the
        // job) contribute no links rather than faulting.
        let mut nodes: Vec<u32> = global_ranks
            .iter()
            .map(|&r| self.cluster.node_of(r))
            .filter(|&n| n < topo.num_nodes())
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let route = topo.collective_route(&nodes);
        let latency = SimTime::from_us(topo.route_latency_us(&route));

        let flow = st.net.start(start.as_ns(), bytes, &route);
        debug_assert_eq!(flow as usize, st.flow_meta.len());
        let mut meta = FlowMeta {
            participants: Vec::with_capacity(participants.len()),
            start,
            latency,
        };
        meta.participants
            .extend(participants.iter().map(|&(wi, si, _, _)| (wi, si)));
        st.flow_meta.push(meta);
        self.schedule_flow_completions(st);
    }

    /// A flow's bytes drained (if the event is still current): release
    /// its participant streams after the route latency, retire the flow
    /// and re-schedule the survivors' completions at their new rates.
    fn flow_done(&self, st: &mut SimScratch, flow: u32, epoch: u32) {
        if !st.net.is_active(flow) || st.net.epoch() != epoch {
            return; // stale: a later convergence re-scheduled this flow
        }
        let now = st.now;
        st.net.finish(now.as_ns(), flow);
        let meta = std::mem::take(&mut st.flow_meta[flow as usize]);
        let end = now + meta.latency;
        let dur = end.saturating_sub(meta.start);
        for &(wi, si) in &meta.participants {
            let s = &mut st.ranks[wi].streams[si];
            s.blocked = None;
            // `max`, not assignment: an injected fault may have pushed
            // the stream past the collective's own end.
            s.busy_until = s.busy_until.max(end);
            let wake = s.busy_until;
            st.ranks[wi].comm_busy += dur;
            st.push(wake, EvKind::Pump { wi, si });
        }
        self.schedule_flow_completions(st);
    }

    /// Re-schedules one completion event per active flow, tagged with
    /// the current convergence epoch (older events become stale).
    fn schedule_flow_completions(&self, st: &mut SimScratch) {
        st.flow_solves += 1;
        let epoch = st.net.epoch();
        let mut tmp = std::mem::take(&mut st.flow_tmp);
        tmp.clear();
        tmp.extend(st.net.active_flows().map(|f| (f, st.net.eta_ns(f))));
        for &(flow, eta) in &tmp {
            st.push(SimTime::from_ns(eta), EvKind::FlowDone { flow, epoch });
        }
        st.flow_tmp = tmp;
    }

    /// An injected rank failure strikes: the rank pays the
    /// checkpoint-restart cost on its host timeline and on every
    /// not-yet-drained stream. Other ranks feel the stall at their next
    /// rendezvous with this rank — exactly how a real NCCL job
    /// re-forms after a restart.
    fn apply_fault(&self, st: &mut SimScratch, wi: usize, fi: usize) {
        let Some(plan) = self.faults else { return };
        let Some(f) = plan.failures.get(fi) else {
            return;
        };
        let now = st.now;
        let cost = f.restart_cost;
        let r = &mut st.ranks[wi];
        if !r.done {
            r.host_time = r.host_time.max(now) + cost;
            r.host_busy += cost;
        }
        // Extend busy streams and re-pump them at their new horizons:
        // `pump` returns without rescheduling when `busy_until` is in
        // the future, so every extension needs its own wake-up event.
        for si in 0..st.ranks[wi].streams.len() {
            let s = &mut st.ranks[wi].streams[si];
            if s.drained(now) {
                continue;
            }
            s.busy_until = s.busy_until.max(now) + cost;
            let wake = s.busy_until;
            st.push(wake, EvKind::Pump { wi, si });
        }
        if !st.ranks[wi].done && st.ranks[wi].blocked.is_none() {
            let at = st.ranks[wi].host_time;
            st.push(at, EvKind::HostDispatch { wi });
        }
    }

    /// A stream drained; wake hosts blocked on it.
    fn notify_drain(&self, st: &mut SimScratch, wi: usize, si: usize, now: SimTime) {
        match st.ranks[wi].blocked {
            Some(HostBlock::StreamDrain { si: want }) if want == si => {
                st.ranks[wi].blocked = None;
                st.ranks[wi].host_time = st.ranks[wi].host_time.max(now);
                st.push(now, EvKind::HostDispatch { wi });
            }
            Some(HostBlock::DeviceDrain { remaining }) => {
                let left = remaining.saturating_sub(1);
                st.ranks[wi].host_time = st.ranks[wi].host_time.max(now);
                if left == 0 {
                    st.ranks[wi].blocked = None;
                    st.push(now, EvKind::HostDispatch { wi });
                } else {
                    st.ranks[wi].blocked = Some(HostBlock::DeviceDrain { remaining: left });
                }
            }
            _ => {}
        }
    }
}

/// Bytes a collective actually moves over the network for a payload of
/// `bytes` across `n` ranks — the standard ring-algorithm traffic:
/// all-reduce sends `2B(n-1)/n` (reduce-scatter + all-gather phases),
/// all-gather and reduce-scatter each send `B(n-1)/n`, everything else
/// (broadcast, reduce, point-to-point) moves the payload once.
fn wire_bytes(kind: CollectiveKind, bytes: u64, n: usize) -> f64 {
    let n = n.max(1) as f64;
    let b = bytes as f64;
    match kind {
        CollectiveKind::AllReduce => 2.0 * b * (n - 1.0) / n,
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter => b * (n - 1.0) / n,
        _ => b,
    }
}

/// Present-participant count for a collective in a possibly-sparse job.
fn required_participants(job: &JobTrace, desc: &CollectiveDesc) -> usize {
    let members = match job.comm_groups.get(&desc.comm_id) {
        Some(m) => m,
        None => return desc.kind.required_participants(desc.nranks) as usize,
    };
    match desc.kind {
        CollectiveKind::Send { peer } | CollectiveKind::Recv { peer } => {
            let mut req = 0usize;
            for idx in [desc.rank_in_comm, peer] {
                if let Some(&g) = members.get(idx as usize) {
                    if job.is_present(g) {
                        req += 1;
                    }
                }
            }
            req.max(1)
        }
        _ => (job.present_count(members) as usize).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_estimator::OracleEstimator;
    use maya_trace::{Dtype, KernelKind, TraceEvent, WorkerTrace};
    use std::collections::BTreeMap;

    fn kernel(m: u64) -> DeviceOp {
        DeviceOp::KernelLaunch {
            kernel: KernelKind::Gemm {
                m,
                n: 1024,
                k: 1024,
                dtype: Dtype::Fp32,
            },
        }
    }

    fn ev(stream: u32, op: DeviceOp, host_us: f64) -> TraceEvent {
        TraceEvent {
            stream: StreamId(stream),
            op,
            host_delay: SimTime::from_us(host_us),
        }
    }

    fn job1(events: Vec<TraceEvent>) -> JobTrace {
        let mut w = WorkerTrace::new(0);
        w.events = events;
        JobTrace {
            nranks: 1,
            workers: vec![w],
            comm_groups: BTreeMap::new(),
        }
    }

    fn cluster() -> ClusterSpec {
        ClusterSpec::h100(1, 2)
    }

    #[test]
    fn empty_trace_finishes_at_zero() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let r = simulate(&job1(vec![]), &c, &oracle).unwrap();
        assert_eq!(r.total_time, SimTime::ZERO);
    }

    #[test]
    fn single_kernel_time_is_host_plus_kernel() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let r = simulate(&job1(vec![ev(0, kernel(4096), 10.0)]), &c, &oracle).unwrap();
        let kt = oracle.kernel_time(&KernelKind::Gemm {
            m: 4096,
            n: 1024,
            k: 1024,
            dtype: Dtype::Fp32,
        });
        let expect = SimTime::from_us(10.0) + kt;
        assert_eq!(r.total_time, expect);
        assert_eq!(r.compute_time, kt);
    }

    #[test]
    fn host_gap_larger_than_kernel_dominates() {
        // Many tiny kernels with huge host gaps: total ~= sum of gaps.
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let evs: Vec<TraceEvent> = (0..10)
            .map(|_| {
                ev(
                    0,
                    DeviceOp::KernelLaunch {
                        kernel: KernelKind::Memset { bytes: 4 },
                    },
                    500.0,
                )
            })
            .collect();
        let r = simulate(&job1(evs), &c, &oracle).unwrap();
        assert!(r.total_time >= SimTime::from_us(5000.0));
        assert!(r.total_time < SimTime::from_us(5200.0), "{}", r.total_time);
    }

    #[test]
    fn two_streams_overlap() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let serial = simulate(
            &job1(vec![ev(0, kernel(8192), 1.0), ev(0, kernel(8192), 1.0)]),
            &c,
            &oracle,
        )
        .unwrap();
        let parallel = simulate(
            &job1(vec![ev(0, kernel(8192), 1.0), ev(1, kernel(8192), 1.0)]),
            &c,
            &oracle,
        )
        .unwrap();
        assert!(parallel.total_time.as_secs_f64() < serial.total_time.as_secs_f64() * 0.62);
    }

    #[test]
    fn stream_wait_event_serializes() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let dep = simulate(
            &job1(vec![
                ev(1, kernel(8192), 1.0),
                ev(
                    1,
                    DeviceOp::EventRecord {
                        event: 3,
                        version: 1,
                    },
                    1.0,
                ),
                ev(
                    0,
                    DeviceOp::StreamWaitEvent {
                        event: 3,
                        version: 1,
                    },
                    1.0,
                ),
                ev(0, kernel(8192), 1.0),
            ]),
            &c,
            &oracle,
        )
        .unwrap();
        let serial = simulate(
            &job1(vec![ev(0, kernel(8192), 1.0), ev(0, kernel(8192), 1.0)]),
            &c,
            &oracle,
        )
        .unwrap();
        let ratio = dep.total_time.as_secs_f64() / serial.total_time.as_secs_f64();
        assert!((0.99..1.01).contains(&ratio), "{ratio}");
    }

    #[test]
    fn wait_on_unrecorded_event_is_noop() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let r = simulate(
            &job1(vec![
                ev(
                    0,
                    DeviceOp::StreamWaitEvent {
                        event: 9,
                        version: 0,
                    },
                    1.0,
                ),
                ev(0, kernel(1024), 1.0),
            ]),
            &c,
            &oracle,
        );
        assert!(r.is_ok());
    }

    #[test]
    fn device_synchronize_blocks_host() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let r = simulate(
            &job1(vec![
                ev(0, kernel(8192), 1.0),
                ev(1, kernel(8192), 1.0),
                ev(0, DeviceOp::DeviceSynchronize, 1.0),
                ev(0, kernel(8192), 1.0),
            ]),
            &c,
            &oracle,
        )
        .unwrap();
        // After sync, the third kernel cannot overlap: total >= 2 kernels.
        let kt = oracle
            .kernel_time(&KernelKind::Gemm {
                m: 8192,
                n: 1024,
                k: 1024,
                dtype: Dtype::Fp32,
            })
            .as_secs_f64();
        assert!(r.total_time.as_secs_f64() > 1.99 * kt, "{}", r.total_time);
    }

    #[test]
    fn collective_lockstep_and_pipeline_bubble() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let coll = |rank: u32| DeviceOp::Collective {
            desc: CollectiveDesc {
                kind: CollectiveKind::AllReduce,
                comm_id: 11,
                seq: 0,
                bytes: 1 << 24,
                nranks: 2,
                rank_in_comm: rank,
            },
        };
        // Rank 1 computes first -> rank 0 stalls at the rendezvous.
        let mut w0 = WorkerTrace::new(0);
        w0.events = vec![ev(0, coll(0), 1.0), ev(0, DeviceOp::StreamSynchronize, 1.0)];
        let mut w1 = WorkerTrace::new(1);
        w1.events = vec![
            ev(0, kernel(8192), 1.0),
            ev(0, coll(1), 1.0),
            ev(0, DeviceOp::StreamSynchronize, 1.0),
        ];
        let mut groups = BTreeMap::new();
        groups.insert(11u64, vec![0, 1]);
        let job = JobTrace {
            nranks: 2,
            workers: vec![w0, w1],
            comm_groups: groups,
        };
        let r = simulate(&job, &c, &oracle).unwrap();
        let kt = oracle.kernel_time(&KernelKind::Gemm {
            m: 8192,
            n: 1024,
            k: 1024,
            dtype: Dtype::Fp32,
        });
        let wire = oracle.collective_time(CollectiveKind::AllReduce, 1 << 24, &[0, 1], &c);
        // Lockstep: both ranks end at ~ compute + wire.
        assert!(r.rank_end_times[0] >= kt + wire, "{:?}", r.rank_end_times);
        let d = r.rank_end_times[0].as_secs_f64() - r.rank_end_times[1].as_secs_f64();
        assert!(d.abs() < 1e-4, "lockstep completion, delta {d}");
        assert!(r.comm_time >= wire);
    }

    #[test]
    fn mismatched_collective_deadlocks() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let coll = DeviceOp::Collective {
            desc: CollectiveDesc {
                kind: CollectiveKind::AllReduce,
                comm_id: 11,
                seq: 0,
                bytes: 64,
                nranks: 2,
                rank_in_comm: 0,
            },
        };
        let mut w0 = WorkerTrace::new(0);
        w0.events = vec![ev(0, coll, 1.0), ev(0, DeviceOp::StreamSynchronize, 1.0)];
        let mut w1 = WorkerTrace::new(1);
        w1.events = vec![ev(0, kernel(64), 1.0)];
        let mut groups = BTreeMap::new();
        groups.insert(11u64, vec![0, 1]);
        let job = JobTrace {
            nranks: 2,
            workers: vec![w0, w1],
            comm_groups: groups,
        };
        match simulate(&job, &c, &oracle) {
            Err(SimError::Deadlock { stuck_ranks }) => assert_eq!(stuck_ranks, vec![0]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn sync_memcpy_blocks_host() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let r = simulate(
            &job1(vec![
                ev(0, kernel(8192), 1.0),
                ev(
                    0,
                    DeviceOp::MemcpyAsync {
                        bytes: 1 << 28,
                        kind: maya_trace::MemcpyKind::DeviceToHost,
                        sync: true,
                    },
                    1.0,
                ),
                ev(0, kernel(8192), 1.0),
            ]),
            &c,
            &oracle,
        )
        .unwrap();
        let kt = oracle.kernel_time(&KernelKind::Gemm {
            m: 8192,
            n: 1024,
            k: 1024,
            dtype: Dtype::Fp32,
        });
        let ct = oracle.memcpy_time(1 << 28, maya_trace::MemcpyKind::DeviceToHost);
        assert!(r.total_time >= kt + ct + kt, "{}", r.total_time);
    }

    #[test]
    fn sparse_collective_rendezvous() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let coll = DeviceOp::Collective {
            desc: CollectiveDesc {
                kind: CollectiveKind::AllReduce,
                comm_id: 11,
                seq: 0,
                bytes: 1 << 20,
                nranks: 2,
                rank_in_comm: 0,
            },
        };
        let mut w0 = WorkerTrace::new(0);
        w0.events = vec![ev(0, coll, 1.0), ev(0, DeviceOp::StreamSynchronize, 1.0)];
        let mut groups = BTreeMap::new();
        groups.insert(11u64, vec![0, 1]);
        // Rank 1 deduplicated away; rendezvous completes with rank 0 only.
        let job = JobTrace {
            nranks: 2,
            workers: vec![w0],
            comm_groups: groups,
        };
        let r = simulate(&job, &c, &oracle).unwrap();
        let wire = oracle.collective_time(CollectiveKind::AllReduce, 1 << 20, &[0, 1], &c);
        assert!(r.total_time >= wire);
    }

    /// A small but feature-dense trace touching every op kind the
    /// scratch arena has to reset: kernels on three streams, event
    /// record/wait/sync, sync memcpy, device sync, and a collective.
    fn busy_job(seed: u64) -> JobTrace {
        let m = 1024 + (seed % 7) * 512;
        let mk = |rank: u32| {
            let mut w = WorkerTrace::new(rank);
            w.events = vec![
                ev(0, kernel(m), 2.0),
                ev(
                    0,
                    DeviceOp::EventRecord {
                        event: 1,
                        version: 1,
                    },
                    1.0,
                ),
                ev(
                    1,
                    DeviceOp::StreamWaitEvent {
                        event: 1,
                        version: 1,
                    },
                    1.0,
                ),
                ev(1, kernel(2 * m), 1.0),
                ev(
                    2,
                    DeviceOp::MemcpyAsync {
                        bytes: 1 << 20,
                        kind: maya_trace::MemcpyKind::HostToDevice,
                        sync: false,
                    },
                    1.0,
                ),
                ev(
                    1,
                    DeviceOp::EventRecord {
                        event: 2,
                        version: 1,
                    },
                    1.0,
                ),
                ev(
                    0,
                    DeviceOp::EventSynchronize {
                        event: 2,
                        version: 1,
                    },
                    1.0,
                ),
                ev(
                    0,
                    DeviceOp::Collective {
                        desc: CollectiveDesc {
                            kind: CollectiveKind::AllReduce,
                            comm_id: 7,
                            seq: 0,
                            bytes: 1 << 22,
                            nranks: 2,
                            rank_in_comm: rank,
                        },
                    },
                    1.0,
                ),
                ev(0, DeviceOp::DeviceSynchronize, 1.0),
            ];
            w
        };
        let mut groups = BTreeMap::new();
        groups.insert(7u64, vec![0, 1]);
        JobTrace {
            nranks: 2,
            workers: vec![mk(0), mk(1)],
            comm_groups: groups,
        }
    }

    #[test]
    fn scratch_reuse_is_byte_identical_across_different_jobs() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let sim = Simulator::new(&oracle, &c);
        let mut scratch = SimScratch::new();
        // Interleave different-shaped jobs through one scratch arena;
        // every run must match a fresh-state run exactly.
        for seed in 0..6u64 {
            let job = busy_job(seed);
            let reused = sim.run_with_scratch(&job, &mut scratch).unwrap();
            let fresh = sim.run(&job).unwrap();
            assert_eq!(reused, fresh, "seed {seed}");
            // And a shrunken job right after a bigger one.
            let small = job1(vec![ev(0, kernel(512), 1.0)]);
            let reused = sim.run_with_scratch(&small, &mut scratch).unwrap();
            let fresh = sim.run(&small).unwrap();
            assert_eq!(reused, fresh, "small after seed {seed}");
        }
    }

    #[test]
    fn scratch_reuse_after_deadlock_recovers() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let sim = Simulator::new(&oracle, &c);
        let mut scratch = SimScratch::new();
        // A deadlocked run leaves the arena dirty mid-flight...
        let coll = DeviceOp::Collective {
            desc: CollectiveDesc {
                kind: CollectiveKind::AllReduce,
                comm_id: 11,
                seq: 0,
                bytes: 64,
                nranks: 2,
                rank_in_comm: 0,
            },
        };
        let mut w0 = WorkerTrace::new(0);
        w0.events = vec![ev(0, coll, 1.0), ev(0, DeviceOp::StreamSynchronize, 1.0)];
        let mut w1 = WorkerTrace::new(1);
        w1.events = vec![ev(0, kernel(64), 1.0)];
        let mut groups = BTreeMap::new();
        groups.insert(11u64, vec![0, 1]);
        let bad = JobTrace {
            nranks: 2,
            workers: vec![w0, w1],
            comm_groups: groups,
        };
        assert!(matches!(
            sim.run_with_scratch(&bad, &mut scratch),
            Err(SimError::Deadlock { .. })
        ));
        // ...and the next run through the same arena is still exact.
        let job = busy_job(3);
        let reused = sim.run_with_scratch(&job, &mut scratch).unwrap();
        let fresh = sim.run(&job).unwrap();
        assert_eq!(reused, fresh);
    }

    fn pair_collective(comm: u64, rank_in_comm: u32, bytes: u64) -> DeviceOp {
        DeviceOp::Collective {
            desc: CollectiveDesc {
                kind: CollectiveKind::AllReduce,
                comm_id: comm,
                seq: 0,
                bytes,
                nranks: 2,
                rank_in_comm,
            },
        }
    }

    /// Two disjoint rank pairs, each running one all-reduce. Both pairs
    /// live on one node, so under the flow model their flows share the
    /// node's intra-node fabric link.
    fn two_pair_job(pairs: u32) -> JobTrace {
        let mut workers = Vec::new();
        let mut groups = BTreeMap::new();
        for p in 0..pairs {
            let comm = 100 + p as u64;
            groups.insert(comm, vec![2 * p, 2 * p + 1]);
            for r in 0..2u32 {
                let rank = 2 * p + r;
                let mut w = WorkerTrace::new(rank);
                w.events = vec![
                    ev(0, pair_collective(comm, r, 1 << 26), 1.0),
                    ev(0, DeviceOp::StreamSynchronize, 1.0),
                ];
                workers.push(w);
            }
        }
        workers.sort_by_key(|w| w.rank);
        JobTrace {
            nranks: 2 * pairs,
            workers,
            comm_groups: groups,
        }
    }

    #[test]
    fn contended_collectives_are_strictly_slower() {
        // The tentpole acceptance check: two concurrent collectives
        // sharing a link must each finish strictly later than the same
        // collective running alone on the identical topology.
        let c = ClusterSpec::h100(1, 4).with_default_topology();
        let oracle = OracleEstimator::new(&c);
        let solo = simulate(&two_pair_job(1), &c, &oracle).unwrap();
        let contended = simulate(&two_pair_job(2), &c, &oracle).unwrap();
        assert!(
            contended.total_time > solo.total_time,
            "contended {} vs solo {}",
            contended.total_time,
            solo.total_time
        );
        assert!(contended.comm_time > solo.comm_time);
        // Max-min fairness halves each flow's rate: the shared phase
        // should be close to 2x the solo bandwidth term.
        let ratio = contended.total_time.as_secs_f64() / solo.total_time.as_secs_f64();
        assert!((1.5..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn uncontended_topology_pairs_overlap_freely() {
        // The same two pairs spread across two nodes use distinct
        // intra links: no contention, so both finish like the solo run
        // (plus nothing — they never cross the inter-node uplinks).
        let c = ClusterSpec::h100(2, 2).with_default_topology();
        let oracle = OracleEstimator::new(&c);
        let solo = simulate(&two_pair_job(1), &c, &oracle).unwrap();
        let spread = simulate(&two_pair_job(2), &c, &oracle).unwrap();
        let ratio = spread.total_time.as_secs_f64() / solo.total_time.as_secs_f64();
        assert!((0.99..1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn injected_failure_adds_exactly_the_restart_cost() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let job = job1(vec![ev(0, kernel(8192), 1.0), ev(0, kernel(8192), 1.0)]);
        let base = simulate(&job, &c, &oracle).unwrap();
        let cost = SimTime::from_ms(5.0);
        let plan = FaultPlan {
            seed: 0,
            stragglers: vec![],
            failures: vec![maya_net::RankFailure {
                rank: 0,
                at: SimTime::from_us(5.0),
                restart_cost: cost,
            }],
        };
        let sim = Simulator::new(&oracle, &c).with_faults(Some(&plan));
        let faulted = sim.run(&job).unwrap();
        assert_eq!(faulted.total_time, base.total_time + cost);
    }

    #[test]
    fn failure_after_completion_is_a_noop() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let job = job1(vec![ev(0, kernel(1024), 1.0)]);
        let base = simulate(&job, &c, &oracle).unwrap();
        let plan = FaultPlan {
            seed: 0,
            stragglers: vec![],
            failures: vec![maya_net::RankFailure {
                rank: 0,
                at: base.total_time + SimTime::from_ms(1.0),
                restart_cost: SimTime::from_ms(50.0),
            }],
        };
        let sim = Simulator::new(&oracle, &c).with_faults(Some(&plan));
        let late = sim.run(&job).unwrap();
        // The fault event itself is processed, but changes nothing.
        assert_eq!(late.total_time, base.total_time);
        assert_eq!(late.rank_end_times, base.rank_end_times);
        assert_eq!(late.compute_time, base.compute_time);
        assert_eq!(late.events_processed, base.events_processed + 1);
    }

    #[test]
    fn straggler_window_slows_covered_kernels() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let job = busy_job(0);
        let base = simulate(&job, &c, &oracle).unwrap();
        let plan = FaultPlan {
            seed: 0,
            stragglers: vec![maya_net::StragglerWindow {
                rank: 0,
                start: SimTime::ZERO,
                end: SimTime::MAX,
                slowdown: 2.0,
            }],
            failures: vec![],
        };
        let sim = Simulator::new(&oracle, &c).with_faults(Some(&plan));
        let straggled = sim.run(&job).unwrap();
        assert!(straggled.total_time > base.total_time);
        assert!(straggled.compute_time > base.compute_time);
    }

    #[test]
    fn hetero_pool_slows_old_generation_ranks() {
        let oracle_cluster = cluster();
        let oracle = OracleEstimator::new(&oracle_cluster);
        let base = simulate(&busy_job(0), &oracle_cluster, &oracle).unwrap();
        let hetero = cluster().with_hetero(maya_hw::HeteroPool::new(vec![maya_hw::RankClass {
            gpu: maya_hw::GpuSpec::v100(),
            count: 1,
        }]));
        let mixed = simulate(&busy_job(0), &hetero, &oracle).unwrap();
        assert!(
            mixed.total_time > base.total_time,
            "a V100 rank 0 must drag the iteration"
        );
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let job = busy_job(2);
        let base = simulate(&job, &c, &oracle).unwrap();
        let empty = FaultPlan::default();
        let sim = Simulator::new(&oracle, &c).with_faults(Some(&empty));
        let report = sim.run(&job).unwrap();
        assert_eq!(report, base);
        assert_eq!(serde::to_string(&report), serde::to_string(&base));
    }

    #[test]
    fn dense_core_matches_reference_core() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        for seed in 0..6u64 {
            let job = busy_job(seed);
            let dense = simulate(&job, &c, &oracle).unwrap();
            let reference = crate::reference::simulate_reference(&job, &c, &oracle).unwrap();
            assert_eq!(dense, reference, "seed {seed}");
        }
    }

    #[test]
    fn obs_hooks_publish_per_run_tallies() {
        let c = ClusterSpec::h100(1, 4).with_default_topology();
        let oracle = OracleEstimator::new(&c);
        let job = two_pair_job(2);
        let obs = SimObs::default();
        let sim = Simulator::new(&oracle, &c).with_obs(Some(&obs));
        let report = sim.run(&job).unwrap();
        assert_eq!(obs.events.get(), report.events_processed);
        assert!(
            obs.flow_solves.get() > 0,
            "a topology run must re-converge flow rates at least once"
        );
        assert!(obs.heap_depth_high_water.get() > 0);
        let spans = obs.recorder.drain_sorted();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "sim.run");
        // Counters accumulate across runs; the gauge is a high-water.
        let prev_hw = obs.heap_depth_high_water.get();
        sim.run(&job).unwrap();
        assert_eq!(obs.events.get(), 2 * report.events_processed);
        assert_eq!(obs.heap_depth_high_water.get(), prev_hw);
    }

    #[test]
    fn instrumented_run_is_byte_identical_to_default() {
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        for seed in 0..4u64 {
            let job = busy_job(seed);
            let base = simulate(&job, &c, &oracle).unwrap();
            let obs = SimObs::default();
            let instrumented = Simulator::new(&oracle, &c)
                .with_obs(Some(&obs))
                .run(&job)
                .unwrap();
            assert_eq!(instrumented, base, "seed {seed}");
            assert_eq!(serde::to_string(&instrumented), serde::to_string(&base));
        }
    }

    #[test]
    fn adversarial_version_zero_record_matches_reference() {
        // event_record never emits version 0, but the simulator is a
        // public API: a hand-built trace may record version 0 and then
        // wait on it. Both cores must agree on what that means.
        let c = cluster();
        let oracle = OracleEstimator::new(&c);
        let job = job1(vec![
            ev(1, kernel(4096), 1.0),
            ev(
                1,
                DeviceOp::EventRecord {
                    event: 5,
                    version: 0,
                },
                1.0,
            ),
            ev(
                0,
                DeviceOp::StreamWaitEvent {
                    event: 5,
                    version: 0,
                },
                1.0,
            ),
            ev(0, kernel(4096), 1.0),
            ev(
                0,
                DeviceOp::EventSynchronize {
                    event: 5,
                    version: 0,
                },
                1.0,
            ),
        ]);
        let dense = simulate(&job, &c, &oracle).unwrap();
        let reference = crate::reference::simulate_reference(&job, &c, &oracle).unwrap();
        assert_eq!(dense, reference);
    }
}
