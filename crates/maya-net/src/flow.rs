//! Max-min fair shared-bandwidth flow model.
//!
//! Every in-flight collective is a *flow*: a byte count moving over a
//! fixed set of links. Active flows split each link's capacity by
//! progressive (water-)filling: repeatedly find the most contended
//! link, freeze every flow crossing it at that link's fair share, and
//! recurse on what's left. Rates only change when the flow population
//! changes, so the model is exact between events: the simulator
//! advances remaining bytes at the old rates to the event time,
//! re-converges, and re-schedules one completion event per active flow
//! tagged with a convergence [`epoch`](FlowNet::epoch) — stale events
//! from earlier epochs are ignored on pop.
//!
//! Determinism: the fill visits links and flows in ascending index
//! order with pure f64 arithmetic; identical call sequences produce
//! bit-identical rates.

/// One in-flight transfer competing for link capacity.
#[derive(Clone, Debug, Default)]
struct FlowState {
    /// Bytes still to move.
    remaining: f64,
    /// Current allocated rate in bytes/sec.
    rate: f64,
    /// Link indices this flow crosses (no duplicates).
    links: Vec<u32>,
    /// False once finished (slot kept so ids stay stable in a run).
    active: bool,
}

/// The flow network: link capacities plus the currently active flows.
///
/// Designed for scratch reuse — [`reset`](FlowNet::reset) clears the
/// flow table but keeps allocations, so a pooled `SimScratch` pays no
/// steady-state allocation for the model.
#[derive(Debug, Default)]
pub struct FlowNet {
    /// Capacity of each link in bytes/sec.
    capacity: Vec<f64>,
    flows: Vec<FlowState>,
    /// Bumped on every convergence; completion events carry the epoch
    /// they were scheduled under so stale ones can be discarded.
    epoch: u32,
    /// Simulated time (ns) the flow table was last advanced to.
    last_update_ns: u64,
    // Water-filling scratch, reused across convergences.
    remaining_cap: Vec<f64>,
    unfrozen_on: Vec<u32>,
    frozen: Vec<bool>,
}

impl FlowNet {
    /// An empty model with no links.
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Clears all flows and installs link capacities (bytes/sec),
    /// keeping allocations for reuse.
    pub fn reset(&mut self, capacities: impl IntoIterator<Item = f64>) {
        self.capacity.clear();
        self.capacity.extend(capacities);
        self.flows.clear();
        self.epoch = 0;
        self.last_update_ns = 0;
    }

    /// The current convergence epoch. Completion events scheduled now
    /// are valid only while no further flow starts or finishes.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.capacity.len()
    }

    /// Capacity of a link in bytes/sec.
    pub fn capacity_of(&self, link: u32) -> f64 {
        self.capacity[link as usize]
    }

    /// Current rate of a flow in bytes/sec (0 if finished).
    pub fn rate_of(&self, flow: u32) -> f64 {
        let f = &self.flows[flow as usize];
        if f.active {
            f.rate
        } else {
            0.0
        }
    }

    /// Remaining bytes of a flow (as of the last advance).
    pub fn remaining_of(&self, flow: u32) -> f64 {
        self.flows[flow as usize].remaining
    }

    /// The links a flow crosses.
    pub fn links_of(&self, flow: u32) -> &[u32] {
        &self.flows[flow as usize].links
    }

    /// Whether a flow is still active.
    pub fn is_active(&self, flow: u32) -> bool {
        self.flows.get(flow as usize).is_some_and(|f| f.active)
    }

    /// Ids of all active flows, ascending.
    pub fn active_flows(&self) -> impl Iterator<Item = u32> + '_ {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.active)
            .map(|(i, _)| i as u32)
    }

    /// Starts a flow of `bytes` over `links` (deduplicated by the
    /// caller) at time `now_ns`, re-converges every rate, and returns
    /// the flow id. Bumps the epoch: all previously scheduled
    /// completion events are now stale.
    pub fn start(&mut self, now_ns: u64, bytes: f64, links: &[u32]) -> u32 {
        debug_assert!(links.iter().all(|&l| (l as usize) < self.capacity.len()));
        self.advance(now_ns);
        let id = self.flows.len() as u32;
        self.flows.push(FlowState {
            remaining: bytes.max(0.0),
            rate: 0.0,
            links: links.to_vec(),
            active: true,
        });
        self.converge();
        id
    }

    /// Finishes a flow at `now_ns` (its completion event fired) and
    /// re-converges the survivors. Bumps the epoch.
    pub fn finish(&mut self, now_ns: u64, flow: u32) {
        self.advance(now_ns);
        self.flows[flow as usize].active = false;
        self.flows[flow as usize].remaining = 0.0;
        self.converge();
    }

    /// Completion time (ns) of a flow at its current rate, measured
    /// from the last advance point. Saturates instead of overflowing.
    pub fn eta_ns(&self, flow: u32) -> u64 {
        let f = &self.flows[flow as usize];
        if !f.active || f.remaining <= 0.0 {
            return self.last_update_ns;
        }
        if f.rate <= 0.0 {
            return u64::MAX;
        }
        let dt = (f.remaining / f.rate) * 1e9;
        if dt >= (u64::MAX / 2) as f64 {
            return u64::MAX;
        }
        self.last_update_ns.saturating_add(dt.ceil() as u64)
    }

    /// Moves every active flow forward to `now_ns` at its current
    /// rate. Idempotent for equal timestamps; `now_ns` must not go
    /// backwards (events pop in time order).
    fn advance(&mut self, now_ns: u64) {
        debug_assert!(now_ns >= self.last_update_ns, "time went backwards");
        if now_ns <= self.last_update_ns {
            return;
        }
        let dt = (now_ns - self.last_update_ns) as f64 / 1e9;
        for f in &mut self.flows {
            if f.active {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
        }
        self.last_update_ns = now_ns;
    }

    /// Max-min fair (water-filling) rate assignment over all active
    /// flows. O(links² + links·flows) per convergence — topologies are
    /// small (two links per node) and convergences only happen at flow
    /// boundaries, so this never shows up in profiles.
    fn converge(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        let n_links = self.capacity.len();
        self.remaining_cap.clear();
        self.remaining_cap.extend_from_slice(&self.capacity);
        self.unfrozen_on.clear();
        self.unfrozen_on.resize(n_links, 0);
        self.frozen.clear();
        self.frozen.resize(self.flows.len(), false);

        for f in &self.flows {
            if f.active {
                for &l in &f.links {
                    self.unfrozen_on[l as usize] += 1;
                }
            }
        }

        loop {
            // The bottleneck: smallest fair share among loaded links,
            // ties to the lowest index (determinism).
            let mut bottleneck: Option<(usize, f64)> = None;
            for l in 0..n_links {
                if self.unfrozen_on[l] == 0 {
                    continue;
                }
                let share = (self.remaining_cap[l] / self.unfrozen_on[l] as f64).max(0.0);
                match bottleneck {
                    Some((_, best)) if share >= best => {}
                    _ => bottleneck = Some((l, share)),
                }
            }
            let Some((bl, share)) = bottleneck else { break };

            // Freeze every unfrozen flow crossing the bottleneck at
            // the fair share, charging its whole route.
            for fi in 0..self.flows.len() {
                if self.frozen[fi] || !self.flows[fi].active {
                    continue;
                }
                if !self.flows[fi].links.contains(&(bl as u32)) {
                    continue;
                }
                self.flows[fi].rate = share;
                self.frozen[fi] = true;
                for &l in &self.flows[fi].links {
                    let l = l as usize;
                    self.remaining_cap[l] = (self.remaining_cap[l] - share).max(0.0);
                    self.unfrozen_on[l] -= 1;
                }
            }
        }

        // Flows with an empty route (degenerate single-rank
        // collectives) never hit a bottleneck: drain them instantly.
        for fi in 0..self.flows.len() {
            if self.flows[fi].active && !self.frozen[fi] {
                debug_assert!(self.flows[fi].links.is_empty());
                self.flows[fi].rate = f64::MAX;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_flow_gets_the_whole_link() {
        let mut net = FlowNet::new();
        net.reset([100.0]);
        let f = net.start(0, 1000.0, &[0]);
        assert!((net.rate_of(f) - 100.0).abs() < 1e-9);
        assert_eq!(net.eta_ns(f), 10_000_000_000);
    }

    #[test]
    fn two_flows_split_a_shared_link() {
        let mut net = FlowNet::new();
        net.reset([100.0]);
        let a = net.start(0, 1000.0, &[0]);
        let b = net.start(0, 1000.0, &[0]);
        assert!((net.rate_of(a) - 50.0).abs() < 1e-9);
        assert!((net.rate_of(b) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn finishing_a_flow_reconverges_the_survivor() {
        let mut net = FlowNet::new();
        net.reset([100.0]);
        let a = net.start(0, 1000.0, &[0]);
        let b = net.start(0, 500.0, &[0]);
        let e1 = net.epoch();
        // b finishes first (same rate, fewer bytes).
        let eta_b = net.eta_ns(b);
        net.finish(eta_b, b);
        assert!(net.epoch() != e1, "finish bumps the epoch");
        assert!((net.rate_of(a) - 100.0).abs() < 1e-9, "a reclaims the link");
        // a moved 500 bytes in the shared phase, 500 remain at 100 B/s.
        assert_eq!(net.eta_ns(a), eta_b + 5_000_000_000);
    }

    #[test]
    fn bottleneck_flows_do_not_starve_elsewhere() {
        // Flow A crosses links 0,1; flow B only link 0; link 1 is fat.
        let mut net = FlowNet::new();
        net.reset([100.0, 1000.0]);
        let a = net.start(0, 1e6, &[0, 1]);
        let b = net.start(0, 1e6, &[0]);
        // Link 0 is the bottleneck: both get 50.
        assert!((net.rate_of(a) - 50.0).abs() < 1e-9);
        assert!((net.rate_of(b) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn unbottlenecked_flow_takes_the_slack() {
        // A on the thin link (cap 10), B on the fat link (cap 100),
        // sharing nothing: each gets its own link's full capacity.
        let mut net = FlowNet::new();
        net.reset([10.0, 100.0]);
        let a = net.start(0, 1e6, &[0]);
        let b = net.start(0, 1e6, &[1]);
        assert!((net.rate_of(a) - 10.0).abs() < 1e-9);
        assert!((net.rate_of(b) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_gives_slack_to_the_unconstrained() {
        // Links: 0 (cap 30), 1 (cap 100). A: {0}, B: {0,1}, C: {1}.
        // Fill 1: link 0 share 15 → A,B freeze at 15.
        // Fill 2: link 1 has 85 left, C alone → 85.
        let mut net = FlowNet::new();
        net.reset([30.0, 100.0]);
        let a = net.start(0, 1e6, &[0]);
        let b = net.start(0, 1e6, &[0, 1]);
        let c = net.start(0, 1e6, &[1]);
        assert!((net.rate_of(a) - 15.0).abs() < 1e-9);
        assert!((net.rate_of(b) - 15.0).abs() < 1e-9);
        assert!((net.rate_of(c) - 85.0).abs() < 1e-9);
    }

    #[test]
    fn reset_reuses_allocations() {
        let mut net = FlowNet::new();
        net.reset([100.0]);
        net.start(0, 10.0, &[0]);
        net.reset([50.0, 50.0]);
        assert_eq!(net.num_links(), 2);
        assert_eq!(net.active_flows().count(), 0);
        assert_eq!(net.epoch(), 0);
    }
}
