//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a simulated
//! iteration: straggler windows (a rank's kernels run slower for a
//! while — thermal throttling, a noisy neighbor) and rank failures at
//! a point in time with a checkpoint/restart cost. The simulator
//! replays the plan as first-class events, so predictions stay exact
//! and reproducible: the same plan always yields the same report.
//!
//! Plans are either hand-written or drawn from a seed with
//! [`FaultPlan::generate`] — a splitmix64 stream, so a `(seed, world,
//! horizon)` triple names one concrete fault schedule forever.

use maya_trace::SimTime;

/// A window during which one rank's kernels run `slowdown`× slower.
///
/// Equality and hashing compare the slowdown's bit pattern (plans are
/// configuration, never NaN).
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct StragglerWindow {
    /// The affected global rank.
    pub rank: u32,
    /// Window start (kernels *issued* at or after this instant slow down).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Duration multiplier for affected kernels; must be ≥ 1.
    pub slowdown: f64,
}

impl StragglerWindow {
    fn key(&self) -> (u32, SimTime, SimTime, u64) {
        let Self {
            rank,
            start,
            end,
            slowdown,
        } = self;
        (*rank, *start, *end, slowdown.to_bits())
    }
}

impl PartialEq for StragglerWindow {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for StragglerWindow {}

impl std::hash::Hash for StragglerWindow {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

/// One rank failing at `at`, recovering after `restart_cost` (reload
/// the checkpoint, rejoin the collective group). The simulator stalls
/// the rank's host and streams for the restart window; everyone else
/// catches the stall at their next collective with that rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize)]
pub struct RankFailure {
    /// The failing global rank.
    pub rank: u32,
    /// Failure instant.
    pub at: SimTime,
    /// Checkpoint-restore + rejoin cost added to the rank's timeline.
    pub restart_cost: SimTime,
}

/// A full fault schedule for one simulated run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, serde::Serialize)]
pub struct FaultPlan {
    /// Seed this plan was drawn from (0 for hand-written plans);
    /// recorded so reports can name their fault schedule.
    pub seed: u64,
    /// Straggler slowdown windows.
    pub stragglers: Vec<StragglerWindow>,
    /// Rank failures with restart costs.
    pub failures: Vec<RankFailure>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from a splitmix64 output.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// Draws a deterministic plan for `world` ranks over a simulated
    /// `horizon`: one straggler window per ~8 ranks (1.5–4× slowdown)
    /// and one rank failure past the midpoint with a restart cost of
    /// 5–15% of the horizon. The same `(seed, world, horizon)` always
    /// yields the same plan.
    pub fn generate(seed: u64, world: u32, horizon: SimTime) -> FaultPlan {
        let mut state = seed ^ 0xd1b54a32d192ed03;
        let h = horizon.as_ns().max(1);
        let mut stragglers = Vec::new();
        let n_windows = (world as usize).div_ceil(8);
        for _ in 0..n_windows {
            let rank = (splitmix64(&mut state) % world as u64) as u32;
            let start = (unit(&mut state) * 0.6 * h as f64) as u64;
            let len = ((0.1 + 0.3 * unit(&mut state)) * h as f64) as u64;
            stragglers.push(StragglerWindow {
                rank,
                start: SimTime::from_ns(start),
                end: SimTime::from_ns(start.saturating_add(len.max(1))),
                slowdown: 1.5 + 2.5 * unit(&mut state),
            });
        }
        let rank = (splitmix64(&mut state) % world as u64) as u32;
        let at = ((0.5 + 0.4 * unit(&mut state)) * h as f64) as u64;
        let restart = ((0.05 + 0.10 * unit(&mut state)) * h as f64) as u64;
        let failures = vec![RankFailure {
            rank,
            at: SimTime::from_ns(at.max(1)),
            restart_cost: SimTime::from_ns(restart.max(1)),
        }];
        FaultPlan {
            seed,
            stragglers,
            failures,
        }
    }

    /// Whether the plan injects nothing (treated as "no faults": the
    /// simulator normalizes empty plans away to keep the default path
    /// byte-identical).
    pub fn is_empty(&self) -> bool {
        self.stragglers.is_empty() && self.failures.is_empty()
    }

    /// Combined slowdown multiplier for a kernel issued on `rank` at
    /// `at` (product of all covering windows; 1.0 when none apply).
    pub fn slowdown(&self, rank: u32, at: SimTime) -> f64 {
        let mut factor = 1.0;
        for w in &self.stragglers {
            if w.rank == rank && at >= w.start && at < w.end {
                factor *= w.slowdown.max(1.0);
            }
        }
        factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let horizon = SimTime::from_ms(100.0);
        let a = FaultPlan::generate(7, 16, horizon);
        let b = FaultPlan::generate(7, 16, horizon);
        assert_eq!(a, b);
        let c = FaultPlan::generate(8, 16, horizon);
        assert_ne!(a, c, "different seeds draw different plans");
    }

    #[test]
    fn generated_plans_are_well_formed() {
        let horizon = SimTime::from_ms(100.0);
        for seed in 0..20 {
            let p = FaultPlan::generate(seed, 8, horizon);
            assert!(!p.is_empty());
            for w in &p.stragglers {
                assert!(w.rank < 8);
                assert!(w.end > w.start);
                assert!(w.slowdown >= 1.5);
            }
            for f in &p.failures {
                assert!(f.rank < 8);
                assert!(f.at > SimTime::ZERO);
                assert!(f.restart_cost > SimTime::ZERO);
            }
        }
    }

    #[test]
    fn slowdown_applies_inside_the_window_only() {
        let plan = FaultPlan {
            seed: 0,
            stragglers: vec![StragglerWindow {
                rank: 2,
                start: SimTime::from_ns(100),
                end: SimTime::from_ns(200),
                slowdown: 3.0,
            }],
            failures: vec![],
        };
        assert_eq!(plan.slowdown(2, SimTime::from_ns(150)), 3.0);
        assert_eq!(plan.slowdown(2, SimTime::from_ns(99)), 1.0);
        assert_eq!(
            plan.slowdown(2, SimTime::from_ns(200)),
            1.0,
            "end exclusive"
        );
        assert_eq!(plan.slowdown(1, SimTime::from_ns(150)), 1.0, "other rank");
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
    }
}
