//! Compact-token codecs for fault-plan types.
//!
//! Same vendored-serde token format as the rest of the workspace
//! (floats as bit patterns, sequences length-prefixed); round trips
//! are bit-exact. `SimTime`'s codec comes from `maya-trace`.

use serde::{compact, Deserialize, Reader, Serialize, Writer};

use crate::fault::{FaultPlan, RankFailure, StragglerWindow};

impl Serialize for StragglerWindow {
    fn serialize(&self, w: &mut Writer) {
        let Self {
            rank,
            start,
            end,
            slowdown,
        } = self;
        rank.serialize(w);
        start.serialize(w);
        end.serialize(w);
        slowdown.serialize(w);
    }
}

impl<'de> Deserialize<'de> for StragglerWindow {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(StragglerWindow {
            rank: u32::deserialize(r)?,
            start: Deserialize::deserialize(r)?,
            end: Deserialize::deserialize(r)?,
            slowdown: f64::deserialize(r)?,
        })
    }
}

impl Serialize for RankFailure {
    fn serialize(&self, w: &mut Writer) {
        let Self {
            rank,
            at,
            restart_cost,
        } = self;
        rank.serialize(w);
        at.serialize(w);
        restart_cost.serialize(w);
    }
}

impl<'de> Deserialize<'de> for RankFailure {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(RankFailure {
            rank: u32::deserialize(r)?,
            at: Deserialize::deserialize(r)?,
            restart_cost: Deserialize::deserialize(r)?,
        })
    }
}

impl Serialize for FaultPlan {
    fn serialize(&self, w: &mut Writer) {
        let Self {
            seed,
            stragglers,
            failures,
        } = self;
        seed.serialize(w);
        stragglers.serialize(w);
        failures.serialize(w);
    }
}

impl<'de> Deserialize<'de> for FaultPlan {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, compact::Error> {
        Ok(FaultPlan {
            seed: u64::deserialize(r)?,
            stragglers: Vec::deserialize(r)?,
            failures: Vec::deserialize(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_trace::SimTime;

    #[test]
    fn fault_plan_round_trips() {
        let plan = FaultPlan::generate(42, 16, SimTime::from_ms(250.0));
        let text = serde::to_string(&plan);
        let back: FaultPlan = serde::from_str(&text).expect("round trip");
        assert_eq!(back, plan);
    }

    #[test]
    fn empty_plan_round_trips() {
        let plan = FaultPlan::default();
        let back: FaultPlan = serde::from_str(&serde::to_string(&plan)).expect("round trip");
        assert_eq!(back, plan);
    }
}
