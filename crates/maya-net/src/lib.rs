//! Contention-aware network modeling for the Maya simulator.
//!
//! Two pieces, both opt-in from `EmulationSpec`:
//!
//! - [`FlowNet`]: a max-min fair shared-bandwidth flow model in the
//!   style of flow-level network simulators (dslab's
//!   `throughput-model`). Concurrent collectives become *flows* that
//!   compete for the capacity of the links they cross; whenever a flow
//!   starts or finishes, the rates of every active flow re-converge
//!   via water-filling and the simulator re-schedules each flow's
//!   completion event. No per-tick simulation — the model only does
//!   work at flow boundaries, preserving the event core's O(events)
//!   scaling.
//! - [`FaultPlan`]: a deterministic, seed-driven fault-injection plan
//!   (straggler slowdown windows and rank failures with
//!   checkpoint/restart cost) that the simulator replays as
//!   first-class events.
//!
//! The crate is deliberately independent of the simulator: `maya-sim`
//! owns event scheduling and calls in here only to (re)converge rates
//! and to ask "when would this flow finish at its current rate?".

pub mod fault;
pub mod flow;
pub mod serdes;

pub use fault::{FaultPlan, RankFailure, StragglerWindow};
pub use flow::FlowNet;
