//! Property-based proofs of the flow model's fairness invariants.
//!
//! Over randomized link topologies and start/finish sequences:
//!
//! 1. **Capacity conservation** — on every link, at every event, the
//!    rates of the active flows crossing it sum to at most the link's
//!    capacity.
//! 2. **Work conservation** — every active flow is bottlenecked
//!    somewhere: at least one link on its route is fully allocated
//!    (otherwise max-min fairness would owe the flow a raise).
//! 3. **Determinism** — replaying an identical op sequence yields
//!    bit-identical rate assignments at every step.

use maya_net::FlowNet;
use proptest::prelude::*;

/// One step of a flow-model session.
#[derive(Clone, Debug)]
enum Op {
    /// Start a flow over the links selected by `mask` (lowest bits).
    Start { bytes: u32, mask: u8 },
    /// Finish the `pick % active`-th oldest active flow.
    Finish { pick: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..10_000_000, 1u8..255).prop_map(|(bytes, mask)| Op::Start { bytes, mask }),
        2 => (0u8..255).prop_map(|pick| Op::Finish { pick }),
    ]
}

fn route_from_mask(mask: u8, num_links: usize) -> Vec<u32> {
    let mut route: Vec<u32> = (0..num_links as u32)
        .filter(|l| mask & (1 << l) != 0)
        .collect();
    if route.is_empty() {
        route.push((mask as u32) % num_links as u32);
    }
    route
}

/// Applies the ops, checking invariants after every convergence, and
/// returns the rate-bit trace for the determinism check.
fn run_session(caps: &[f64], ops: &[Op], check: bool) -> Vec<Vec<u64>> {
    let mut net = FlowNet::new();
    net.reset(caps.iter().copied());
    let mut active: Vec<u32> = Vec::new();
    let mut now: u64 = 0;
    let mut trace = Vec::new();
    for op in ops {
        now += 1_000_000; // 1 ms per step, strictly monotonic
        match *op {
            Op::Start { bytes, mask } => {
                let route = route_from_mask(mask, caps.len());
                let id = net.start(now, bytes as f64, &route);
                active.push(id);
            }
            Op::Finish { pick } => {
                if active.is_empty() {
                    continue;
                }
                let idx = pick as usize % active.len();
                let id = active.remove(idx);
                net.finish(now, id);
            }
        }
        if check {
            check_invariants(&net, caps);
        }
        trace.push(active.iter().map(|&f| net.rate_of(f).to_bits()).collect());
    }
    trace
}

fn check_invariants(net: &FlowNet, caps: &[f64]) {
    // Capacity conservation: per-link allocated rate never exceeds
    // capacity (modulo f64 rounding in the water-fill subtraction).
    let mut allocated = vec![0.0f64; caps.len()];
    for f in net.active_flows() {
        for &l in net.links_of(f) {
            allocated[l as usize] += net.rate_of(f);
        }
    }
    for (l, (&alloc, &cap)) in allocated.iter().zip(caps).enumerate() {
        assert!(
            alloc <= cap * (1.0 + 1e-9) + 1e-9,
            "link {l} over-allocated: {alloc} > {cap}"
        );
    }
    // Work conservation: every active flow crosses at least one
    // saturated link — its bottleneck.
    for f in net.active_flows() {
        let bottlenecked = net.links_of(f).iter().any(|&l| {
            let cap = caps[l as usize];
            allocated[l as usize] >= cap * (1.0 - 1e-9) - 1e-9
        });
        assert!(
            bottlenecked,
            "flow {f} (rate {}) has no saturated link on its route {:?}",
            net.rate_of(f),
            net.links_of(f)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn capacity_and_work_conservation(
        caps in proptest::collection::vec(1.0f64..1000.0, 1..6),
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        run_session(&caps, &ops, true);
    }

    #[test]
    fn rate_assignment_is_deterministic(
        caps in proptest::collection::vec(1.0f64..1000.0, 1..6),
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let a = run_session(&caps, &ops, false);
        let b = run_session(&caps, &ops, false);
        prop_assert_eq!(a, b, "identical sessions diverged");
    }
}
