//! Training-job description: model + recipe + framework flavor.
//!
//! A [`TrainingJob`] is the Rust analog of the user's unmodified training
//! script plus its launch configuration. `run_worker` executes one rank's
//! script against a virtual device; everything Maya learns about the job
//! comes from the device API calls that run makes.

use maya_cuda::{CudaContext, CudaResult};
use maya_hw::ModelFlopsSpec;
use maya_trace::Dtype;

use crate::models::ModelSpec;
use crate::parallel::{ConfigError, ParallelConfig};

/// Which training framework stack the script uses (Table 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FrameworkFlavor {
    /// Megatron-LM style 3D parallelism (TP/PP/DP + knobs of Table 5).
    Megatron,
    /// DeepSpeed with ZeRO sharding.
    DeepSpeedZero {
        /// ZeRO stage (1, 2 or 3).
        stage: u8,
        /// Offload activations to host memory.
        activation_offload: bool,
    },
    /// PyTorch FSDP (fully-sharded data parallelism).
    Fsdp,
    /// PyTorch DDP.
    Ddp,
}

impl FrameworkFlavor {
    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            FrameworkFlavor::Megatron => "Megatron-LM".into(),
            FrameworkFlavor::DeepSpeedZero {
                stage,
                activation_offload,
            } => {
                if *activation_offload {
                    format!("DeepSpeed ZeRO-{stage}+offload")
                } else {
                    format!("DeepSpeed ZeRO-{stage}")
                }
            }
            FrameworkFlavor::Fsdp => "PyTorch FSDP".into(),
            FrameworkFlavor::Ddp => "PyTorch DDP".into(),
        }
    }
}

/// A complete training-job description.
#[derive(Clone, Copy, Debug)]
pub struct TrainingJob {
    /// Model architecture.
    pub model: ModelSpec,
    /// Parallelization / optimization recipe (Table 5 knobs).
    pub parallel: ParallelConfig,
    /// Framework stack.
    pub flavor: FrameworkFlavor,
    /// torch.compile-style kernel fusion.
    pub compile: bool,
    /// Global batch size (sequences or images per iteration).
    pub global_batch: u32,
    /// Number of workers (GPUs).
    pub world: u32,
    /// GPUs per node (for TP-span validation).
    pub gpus_per_node: u32,
    /// Training precision (bf16 on Ampere/Hopper, fp16 on Volta).
    pub precision: Dtype,
    /// Training iterations to trace (1 is enough: DLT loops repeat).
    pub iterations: u32,
}

impl TrainingJob {
    /// A small smoke-test job: GPT-3 125M, DP-only, one rank.
    pub fn smoke() -> Self {
        TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel: ParallelConfig::default(),
            flavor: FrameworkFlavor::Megatron,
            compile: false,
            global_batch: 4,
            world: 1,
            gpus_per_node: 8,
            precision: Dtype::Bf16,
            iterations: 1,
        }
    }

    /// ZeRO stage implied by the flavor (0 for DDP; Megatron maps the
    /// distributed optimizer to stage 1).
    pub fn zero_stage(&self) -> u8 {
        match self.flavor {
            FrameworkFlavor::Megatron => {
                if self.parallel.distributed_optimizer {
                    1
                } else {
                    0
                }
            }
            FrameworkFlavor::DeepSpeedZero { stage, .. } => stage,
            FrameworkFlavor::Fsdp => 3,
            FrameworkFlavor::Ddp => 0,
        }
    }

    /// Whether activations are offloaded to host memory.
    pub fn activation_offload(&self) -> bool {
        matches!(
            self.flavor,
            FrameworkFlavor::DeepSpeedZero {
                activation_offload: true,
                ..
            }
        )
    }

    /// Microbatch size implied by the configuration.
    pub fn micro_batch_size(&self) -> u32 {
        let dp = self.parallel.dp(self.world).max(1);
        self.global_batch / (dp * self.parallel.num_microbatches())
    }

    /// Validates the job against divisibility and topology rules.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let p = &self.parallel;
        let mp = p.tp * p.pp;
        if !matches!(self.flavor, FrameworkFlavor::Megatron) && mp != 1 {
            return Err(ConfigError::WorldNotDivisible {
                world: self.world,
                model_parallel: mp,
            });
        }
        if self.world % mp != 0 || self.world < mp {
            return Err(ConfigError::WorldNotDivisible {
                world: self.world,
                model_parallel: mp,
            });
        }
        if p.tp > self.gpus_per_node {
            return Err(ConfigError::TpSpansNodes {
                tp: p.tp,
                gpus_per_node: self.gpus_per_node,
            });
        }
        if p.sequence_parallel && p.tp == 1 {
            return Err(ConfigError::SeqParallelNeedsTp);
        }
        if p.virtual_stages > 1 && p.pp == 1 {
            return Err(ConfigError::InterleaveNeedsPp);
        }
        let dp = p.dp(self.world);
        let divisor = dp * p.num_microbatches();
        if self.global_batch % divisor != 0 || self.global_batch < divisor {
            return Err(ConfigError::BatchNotDivisible {
                global_batch: self.global_batch,
                divisor,
            });
        }
        if let Some(t) = self.model.transformer() {
            let layer_div = p.pp * p.virtual_stages;
            if t.layers % layer_div != 0 {
                return Err(ConfigError::LayersNotDivisible {
                    layers: t.layers,
                    divisor: layer_div,
                });
            }
            if t.heads % p.tp != 0 {
                return Err(ConfigError::HeadsNotDivisible {
                    heads: t.heads,
                    tp: p.tp,
                });
            }
        } else if mp != 1 {
            return Err(ConfigError::WorldNotDivisible {
                world: self.world,
                model_parallel: mp,
            });
        }
        Ok(())
    }

    /// Runs one rank's "training script" against a virtual device.
    ///
    /// This is the unmodified-user-code surface: all the system learns
    /// about the workload flows through `ctx`'s device API.
    pub fn run_worker(&self, rank: u32, ctx: &mut CudaContext) -> CudaResult<()> {
        match self.flavor {
            FrameworkFlavor::Megatron => crate::engine::run_megatron_worker(self, rank, ctx),
            _ => crate::frameworks::run_dp_worker(self, rank, ctx),
        }
    }

    /// FLOPs-accounting spec (transformers only).
    pub fn flops_spec(&self) -> Option<ModelFlopsSpec> {
        self.model
            .transformer()
            .map(|t| t.flops_spec(self.global_batch, self.parallel.activation_recompute))
    }

    /// Human-readable description.
    pub fn describe(&self) -> String {
        format!(
            "{} | {} | {} | batch {} | {} GPUs",
            self.model.name(),
            self.flavor.name(),
            self.parallel,
            self.global_batch,
            self.world
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(world: u32) -> TrainingJob {
        TrainingJob {
            world,
            global_batch: 64,
            ..TrainingJob::smoke()
        }
    }

    #[test]
    fn smoke_job_valid() {
        assert!(TrainingJob::smoke().validate().is_ok());
    }

    #[test]
    fn world_divisibility_checked() {
        let mut j = base(8);
        j.parallel.tp = 4;
        j.parallel.pp = 4;
        assert!(matches!(
            j.validate(),
            Err(ConfigError::WorldNotDivisible { .. })
        ));
        j.world = 16;
        assert!(j.validate().is_ok());
    }

    #[test]
    fn batch_divisibility_checked() {
        let mut j = base(8);
        j.global_batch = 10;
        j.parallel.tp = 2;
        // dp = 4, microbatches = 1 -> divisor 4; 10 % 4 != 0.
        assert!(matches!(
            j.validate(),
            Err(ConfigError::BatchNotDivisible { .. })
        ));
    }

    #[test]
    fn layers_and_heads_divisibility() {
        let mut j = base(8);
        j.parallel.pp = 8; // 12 layers % 8 != 0
        j.global_batch = 8;
        assert!(matches!(
            j.validate(),
            Err(ConfigError::LayersNotDivisible { .. })
        ));
        let mut j2 = base(8);
        j2.parallel.tp = 8; // 12 heads % 8 != 0
        assert!(matches!(
            j2.validate(),
            Err(ConfigError::HeadsNotDivisible { .. })
        ));
    }

    #[test]
    fn tp_span_and_sp_rules() {
        let mut j = base(16);
        j.gpus_per_node = 4;
        j.parallel.tp = 2;
        j.parallel.sequence_parallel = true;
        assert!(j.validate().is_ok());
        j.parallel.tp = 8;
        assert!(matches!(
            j.validate(),
            Err(ConfigError::TpSpansNodes { .. })
        ));
        let mut j2 = base(8);
        j2.parallel.sequence_parallel = true;
        assert!(matches!(
            j2.validate(),
            Err(ConfigError::SeqParallelNeedsTp)
        ));
        let mut j3 = base(8);
        j3.parallel.virtual_stages = 2;
        assert!(matches!(j3.validate(), Err(ConfigError::InterleaveNeedsPp)));
    }

    #[test]
    fn dp_flavors_reject_model_parallelism() {
        let mut j = base(8);
        j.flavor = FrameworkFlavor::Ddp;
        j.parallel.tp = 2;
        assert!(j.validate().is_err());
    }

    #[test]
    fn zero_stage_mapping() {
        let mut j = base(8);
        assert_eq!(j.zero_stage(), 0);
        j.parallel.distributed_optimizer = true;
        assert_eq!(j.zero_stage(), 1);
        j.flavor = FrameworkFlavor::Fsdp;
        assert_eq!(j.zero_stage(), 3);
        j.flavor = FrameworkFlavor::DeepSpeedZero {
            stage: 2,
            activation_offload: true,
        };
        assert_eq!(j.zero_stage(), 2);
        assert!(j.activation_offload());
    }

    #[test]
    fn micro_batch_size_computation() {
        let mut j = base(8);
        j.parallel.tp = 2;
        j.parallel.pp = 2;
        j.parallel.microbatch_multiplier = 2;
        // dp = 2, microbatches = 4, so micro_bs = 64 / 8 = 8.
        assert_eq!(j.micro_batch_size(), 8);
    }

    #[test]
    fn describe_mentions_key_facts() {
        let d = TrainingJob::smoke().describe();
        assert!(d.contains("GPT3"), "{d}");
        assert!(d.contains("Megatron"), "{d}");
    }
}
