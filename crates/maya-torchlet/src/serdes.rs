//! Wire codecs for the workload vocabulary, over the vendored serde's
//! compact token format.
//!
//! These exist so a [`TrainingJob`] can travel over the `maya-wire`
//! framing layer: a remote client describes a job (model, recipe,
//! flavor, batch geometry) and the serving side reconstructs it
//! bit-for-bit. Every codec is a plain tag-plus-fields scheme matching
//! `maya-trace::serdes`: enum variants write a short stable tag token
//! followed by their fields in declaration order. Tags are part of the
//! wire format — renaming one breaks protocol compatibility, which the
//! frame-header version accounts for.

use serde::{compact, Deserialize, Serialize};

use crate::models::{ModelSpec, ResNetConfig, TransformerConfig};
use crate::parallel::ParallelConfig;
use crate::workload::{FrameworkFlavor, TrainingJob};

impl Serialize for TransformerConfig {
    fn serialize(&self, w: &mut compact::Writer) {
        (self.layers, self.hidden, self.heads).serialize(w);
        (self.ffn, self.vocab, self.seq_len).serialize(w);
        (self.causal, self.gated_mlp).serialize(w);
    }
}

impl<'de> Deserialize<'de> for TransformerConfig {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let (layers, hidden, heads) = Deserialize::deserialize(r)?;
        let (ffn, vocab, seq_len) = Deserialize::deserialize(r)?;
        let (causal, gated_mlp) = Deserialize::deserialize(r)?;
        Ok(TransformerConfig {
            layers,
            hidden,
            heads,
            ffn,
            vocab,
            seq_len,
            causal,
            gated_mlp,
        })
    }
}

impl Serialize for ResNetConfig {
    fn serialize(&self, w: &mut compact::Writer) {
        self.blocks.serialize(w);
        (self.image_size, self.classes).serialize(w);
    }
}

impl<'de> Deserialize<'de> for ResNetConfig {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let blocks = Deserialize::deserialize(r)?;
        let (image_size, classes) = Deserialize::deserialize(r)?;
        Ok(ResNetConfig {
            blocks,
            image_size,
            classes,
        })
    }
}

impl Serialize for ModelSpec {
    fn serialize(&self, w: &mut compact::Writer) {
        match self {
            ModelSpec::Gpt(c) => {
                w.tag("gpt");
                c.serialize(w);
            }
            ModelSpec::Llama(c) => {
                w.tag("llama");
                c.serialize(w);
            }
            ModelSpec::Bert(c) => {
                w.tag("bert");
                c.serialize(w);
            }
            ModelSpec::ViT(c) => {
                w.tag("vit");
                c.serialize(w);
            }
            ModelSpec::T5(c) => {
                w.tag("t5");
                c.serialize(w);
            }
            ModelSpec::ResNet(c) => {
                w.tag("resnet");
                c.serialize(w);
            }
        }
    }
}

impl<'de> Deserialize<'de> for ModelSpec {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "gpt" => ModelSpec::Gpt(Deserialize::deserialize(r)?),
            "llama" => ModelSpec::Llama(Deserialize::deserialize(r)?),
            "bert" => ModelSpec::Bert(Deserialize::deserialize(r)?),
            "vit" => ModelSpec::ViT(Deserialize::deserialize(r)?),
            "t5" => ModelSpec::T5(Deserialize::deserialize(r)?),
            "resnet" => ModelSpec::ResNet(Deserialize::deserialize(r)?),
            t => return Err(compact::Error::parse(t, "model spec")),
        })
    }
}

impl Serialize for ParallelConfig {
    fn serialize(&self, w: &mut compact::Writer) {
        (self.tp, self.pp, self.microbatch_multiplier).serialize(w);
        self.virtual_stages.serialize(w);
        (
            self.activation_recompute,
            self.sequence_parallel,
            self.distributed_optimizer,
        )
            .serialize(w);
    }
}

impl<'de> Deserialize<'de> for ParallelConfig {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let (tp, pp, microbatch_multiplier) = Deserialize::deserialize(r)?;
        let virtual_stages = Deserialize::deserialize(r)?;
        let (activation_recompute, sequence_parallel, distributed_optimizer) =
            Deserialize::deserialize(r)?;
        Ok(ParallelConfig {
            tp,
            pp,
            microbatch_multiplier,
            virtual_stages,
            activation_recompute,
            sequence_parallel,
            distributed_optimizer,
        })
    }
}

impl Serialize for FrameworkFlavor {
    fn serialize(&self, w: &mut compact::Writer) {
        match *self {
            FrameworkFlavor::Megatron => w.tag("megatron"),
            FrameworkFlavor::DeepSpeedZero {
                stage,
                activation_offload,
            } => {
                w.tag("zero");
                (stage, activation_offload).serialize(w);
            }
            FrameworkFlavor::Fsdp => w.tag("fsdp"),
            FrameworkFlavor::Ddp => w.tag("ddp"),
        }
    }
}

impl<'de> Deserialize<'de> for FrameworkFlavor {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "megatron" => FrameworkFlavor::Megatron,
            "zero" => {
                let (stage, activation_offload) = Deserialize::deserialize(r)?;
                FrameworkFlavor::DeepSpeedZero {
                    stage,
                    activation_offload,
                }
            }
            "fsdp" => FrameworkFlavor::Fsdp,
            "ddp" => FrameworkFlavor::Ddp,
            t => return Err(compact::Error::parse(t, "framework flavor")),
        })
    }
}

impl Serialize for TrainingJob {
    fn serialize(&self, w: &mut compact::Writer) {
        self.model.serialize(w);
        self.parallel.serialize(w);
        self.flavor.serialize(w);
        self.compile.serialize(w);
        (self.global_batch, self.world, self.gpus_per_node).serialize(w);
        self.precision.serialize(w);
        self.iterations.serialize(w);
    }
}

impl<'de> Deserialize<'de> for TrainingJob {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let model = Deserialize::deserialize(r)?;
        let parallel = Deserialize::deserialize(r)?;
        let flavor = Deserialize::deserialize(r)?;
        let compile = Deserialize::deserialize(r)?;
        let (global_batch, world, gpus_per_node) = Deserialize::deserialize(r)?;
        let precision = Deserialize::deserialize(r)?;
        let iterations = Deserialize::deserialize(r)?;
        Ok(TrainingJob {
            model,
            parallel,
            flavor,
            compile,
            global_batch,
            world,
            gpus_per_node,
            precision,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_trace::Dtype;

    fn reencodes<T: Serialize + for<'de> Deserialize<'de>>(v: &T) {
        let text = serde::to_string(v);
        let back: T = serde::from_str(&text).expect("decode");
        assert_eq!(serde::to_string(&back), text, "re-encode mismatch");
    }

    #[test]
    fn model_specs_round_trip() {
        for m in [
            ModelSpec::gpt3_125m(),
            ModelSpec::gpt3_145_6b(),
            ModelSpec::llama2_7b(),
            ModelSpec::bert_large(),
            ModelSpec::vit_large(),
            ModelSpec::t5_large(),
            ModelSpec::resnet152(),
        ] {
            let back: ModelSpec = serde::from_str(&serde::to_string(&m)).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn parallel_configs_round_trip() {
        let c = ParallelConfig {
            tp: 4,
            pp: 2,
            microbatch_multiplier: 6,
            virtual_stages: 2,
            activation_recompute: true,
            sequence_parallel: true,
            distributed_optimizer: false,
        };
        let back: ParallelConfig = serde::from_str(&serde::to_string(&c)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn flavors_round_trip() {
        for f in [
            FrameworkFlavor::Megatron,
            FrameworkFlavor::DeepSpeedZero {
                stage: 3,
                activation_offload: true,
            },
            FrameworkFlavor::Fsdp,
            FrameworkFlavor::Ddp,
        ] {
            let back: FrameworkFlavor = serde::from_str(&serde::to_string(&f)).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn jobs_round_trip() {
        let mut job = TrainingJob::smoke();
        job.precision = Dtype::Fp16;
        job.parallel.tp = 2;
        job.flavor = FrameworkFlavor::DeepSpeedZero {
            stage: 2,
            activation_offload: false,
        };
        let back: TrainingJob = serde::from_str(&serde::to_string(&job)).unwrap();
        // TrainingJob has no PartialEq; compare the canonical encoding.
        assert_eq!(serde::to_string(&back), serde::to_string(&job));
        reencodes(&job);
    }
}
