//! Kernel emission for transformer layers.
//!
//! Each method issues, through the device API, exactly the kernel
//! sequence a Megatron-style PyTorch stack launches for that piece of the
//! model: cuBLAS GEMMs via handle-bound calls, framework kernels
//! (layernorm, softmax, dropout, elementwise) via `cudaLaunchKernel`, and
//! tensor-parallel collectives via NCCL. In `compiled` mode, chains of
//! pointwise ops collapse into fused Triton kernels with instruction
//! counts, matching how the paper treats `torch.compile` (Appendix B).

use maya_cuda::{CublasHandle, CudaContext, CudaResult, CudaStream, NcclComm};
use maya_trace::{Dtype, KernelKind, SimTime};

/// Static shape/configuration for one transformer layer's emission.
#[derive(Clone, Copy, Debug)]
pub struct LayerShape {
    /// Microbatch size (sequences).
    pub micro_bs: u64,
    /// Sequence length.
    pub seq: u64,
    /// Hidden size.
    pub hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Feed-forward inner size.
    pub ffn: u64,
    /// Vocabulary size (full, pre-TP).
    pub vocab: u64,
    /// Tensor-parallel degree.
    pub tp: u64,
    /// Sequence parallelism enabled.
    pub sp: bool,
    /// Causal attention mask.
    pub causal: bool,
    /// Gated (SwiGLU) MLP.
    pub gated: bool,
    /// Operand dtype.
    pub dtype: Dtype,
    /// torch.compile-style fusion.
    pub compiled: bool,
}

impl LayerShape {
    /// Tokens in one microbatch.
    pub fn tokens(&self) -> u64 {
        self.micro_bs * self.seq
    }

    /// Bytes of one full-size activation tensor (b, s, h).
    pub fn act_tensor_bytes(&self) -> u64 {
        self.tokens() * self.hidden * self.dtype.size_bytes()
    }
}

/// Emits transformer kernels for one model replica shard.
pub struct TransformerEmitter {
    /// Layer shape.
    pub shape: LayerShape,
    /// cuBLAS handle (bound to the compute stream).
    pub blas: CublasHandle,
    /// Tensor-parallel communicator, when `tp > 1`.
    pub tp_comm: Option<NcclComm>,
    /// Compute stream.
    pub compute: CudaStream,
    /// Host-side framework overhead charged per emitted layer.
    pub host_work_per_layer: SimTime,
}

impl TransformerEmitter {
    fn ew(&self, ctx: &mut CudaContext, numel: u64, arity: u8) -> CudaResult<()> {
        ctx.launch_kernel(
            KernelKind::Elementwise {
                numel,
                arity,
                dtype: self.shape.dtype,
            },
            self.compute,
        )
    }

    fn fused(&self, ctx: &mut CudaContext, numel: u64, num_instrs: u32) -> CudaResult<()> {
        ctx.launch_kernel(
            KernelKind::FusedTriton {
                numel,
                num_instrs,
                dtype: self.shape.dtype,
            },
            self.compute,
        )
    }

    /// TP all-reduce (or the SP reduce-scatter/all-gather pair around the
    /// block) of one activation tensor. `gather_first` controls the SP
    /// direction for forward vs. backward emission.
    fn tp_allreduce(&self, ctx: &mut CudaContext, bytes: u64) -> CudaResult<()> {
        if let Some(comm) = self.tp_comm {
            ctx.nccl_all_reduce(comm, bytes, self.compute)?;
        }
        Ok(())
    }

    fn sp_all_gather(&self, ctx: &mut CudaContext, bytes: u64) -> CudaResult<()> {
        if let Some(comm) = self.tp_comm {
            ctx.nccl_all_gather(comm, bytes, self.compute)?;
        }
        Ok(())
    }

    fn sp_reduce_scatter(&self, ctx: &mut CudaContext, bytes: u64) -> CudaResult<()> {
        if let Some(comm) = self.tp_comm {
            ctx.nccl_reduce_scatter(comm, bytes, self.compute)?;
        }
        Ok(())
    }

    /// Forward pass of one transformer layer.
    pub fn forward_layer(&self, ctx: &mut CudaContext) -> CudaResult<()> {
        let s = &self.shape;
        let bs = s.tokens();
        let h = s.hidden;
        let hp = h / s.tp;
        let ffnp = s.ffn / s.tp;
        let heads_p = (s.heads / s.tp).max(1);
        let d = s.dtype;
        let act_bytes = s.act_tensor_bytes();
        let shard_rows = if s.sp { bs / s.tp } else { bs };
        ctx.host_work(self.host_work_per_layer);

        // --- Attention block ---
        if s.compiled {
            self.fused(ctx, shard_rows * h, 11)?; // fused layernorm
        } else {
            ctx.launch_kernel(
                KernelKind::LayerNormForward {
                    rows: shard_rows,
                    cols: h,
                },
                self.compute,
            )?;
        }
        if s.sp {
            self.sp_all_gather(ctx, act_bytes)?;
        }
        ctx.cublas_gemm_ex(self.blas, bs, 3 * hp, h, d)?; // QKV projection
        if s.compiled {
            self.fused(ctx, bs * 3 * hp, 6)?; // bias + rope + reshape
        } else {
            self.ew(ctx, bs * 3 * hp, 1)?;
        }
        // Attention scores and context (batched over heads).
        ctx.cublas_gemm_strided_batched(
            self.blas,
            s.seq,
            s.seq,
            h / s.heads,
            s.micro_bs * heads_p,
            d,
        )?;
        let attn_numel = s.micro_bs * heads_p * s.seq * s.seq;
        if s.compiled {
            self.fused(ctx, attn_numel, 9)?; // fused scale+mask+softmax+dropout
        } else {
            ctx.launch_kernel(
                KernelKind::SoftmaxForward {
                    rows: s.micro_bs * heads_p * s.seq,
                    cols: s.seq,
                    masked: s.causal,
                },
                self.compute,
            )?;
            ctx.launch_kernel(KernelKind::FusedDropout { numel: attn_numel }, self.compute)?;
        }
        ctx.cublas_gemm_strided_batched(
            self.blas,
            s.seq,
            h / s.heads,
            s.seq,
            s.micro_bs * heads_p,
            d,
        )?;
        ctx.cublas_gemm_ex(self.blas, bs, h, hp, d)?; // output projection
        if s.sp {
            self.sp_reduce_scatter(ctx, act_bytes)?;
        } else {
            self.tp_allreduce(ctx, act_bytes)?;
        }
        if s.compiled {
            self.fused(ctx, shard_rows * h, 8)?; // bias+dropout+residual
        } else {
            ctx.launch_kernel(
                KernelKind::FusedDropout {
                    numel: shard_rows * h,
                },
                self.compute,
            )?;
            self.ew(ctx, shard_rows * h, 2)?; // residual add
        }

        // --- MLP block ---
        if s.compiled {
            self.fused(ctx, shard_rows * h, 11)?;
        } else {
            ctx.launch_kernel(
                KernelKind::LayerNormForward {
                    rows: shard_rows,
                    cols: h,
                },
                self.compute,
            )?;
        }
        if s.sp {
            self.sp_all_gather(ctx, act_bytes)?;
        }
        ctx.cublas_gemm_ex(self.blas, bs, ffnp, h, d)?; // fc1
        if s.gated {
            ctx.cublas_gemm_ex(self.blas, bs, ffnp, h, d)?; // gate proj
            if s.compiled {
                self.fused(ctx, bs * ffnp, 7)?; // silu * gate
            } else {
                self.ew(ctx, bs * ffnp, 2)?;
            }
        } else if s.compiled {
            self.fused(ctx, bs * ffnp, 5)?; // bias + gelu
        } else {
            self.ew(ctx, bs * ffnp, 1)?;
        }
        ctx.cublas_gemm_ex(self.blas, bs, h, ffnp, d)?; // fc2
        if s.sp {
            self.sp_reduce_scatter(ctx, act_bytes)?;
        } else {
            self.tp_allreduce(ctx, act_bytes)?;
        }
        if s.compiled {
            self.fused(ctx, shard_rows * h, 8)?;
        } else {
            ctx.launch_kernel(
                KernelKind::FusedDropout {
                    numel: shard_rows * h,
                },
                self.compute,
            )?;
            self.ew(ctx, shard_rows * h, 2)?;
        }
        Ok(())
    }

    /// Backward pass of one transformer layer (dgrad + wgrad GEMMs, the
    /// reverse pointwise chain, and the mirrored TP collectives).
    pub fn backward_layer(&self, ctx: &mut CudaContext) -> CudaResult<()> {
        let s = &self.shape;
        let bs = s.tokens();
        let h = s.hidden;
        let hp = h / s.tp;
        let ffnp = s.ffn / s.tp;
        let heads_p = (s.heads / s.tp).max(1);
        let d = s.dtype;
        let act_bytes = s.act_tensor_bytes();
        let shard_rows = if s.sp { bs / s.tp } else { bs };
        ctx.host_work(self.host_work_per_layer);

        // --- MLP backward ---
        if s.compiled {
            self.fused(ctx, shard_rows * h, 7)?; // dropout+residual bwd
        } else {
            self.ew(ctx, shard_rows * h, 2)?;
        }
        if s.sp {
            self.sp_all_gather(ctx, act_bytes)?; // gather dgrad
        }
        ctx.cublas_gemm_ex(self.blas, bs, ffnp, h, d)?; // fc2 dgrad
        ctx.cublas_gemm_ex(self.blas, ffnp, h, bs, d)?; // fc2 wgrad
        if s.compiled {
            self.fused(ctx, bs * ffnp, 6)?; // gelu bwd
        } else {
            self.ew(ctx, bs * ffnp, 2)?;
        }
        if s.gated {
            ctx.cublas_gemm_ex(self.blas, bs, h, ffnp, d)?; // gate dgrad
            ctx.cublas_gemm_ex(self.blas, h, ffnp, bs, d)?; // gate wgrad
        }
        ctx.cublas_gemm_ex(self.blas, bs, h, ffnp, d)?; // fc1 dgrad
        ctx.cublas_gemm_ex(self.blas, h, ffnp, bs, d)?; // fc1 wgrad
        if s.sp {
            self.sp_reduce_scatter(ctx, act_bytes)?;
        } else {
            self.tp_allreduce(ctx, act_bytes)?;
        }
        if s.compiled {
            self.fused(ctx, shard_rows * h, 10)?; // layernorm bwd fused
        } else {
            ctx.launch_kernel(
                KernelKind::LayerNormBackwardGamma {
                    rows: shard_rows,
                    cols: h,
                },
                self.compute,
            )?;
            ctx.launch_kernel(
                KernelKind::LayerNormBackwardInput {
                    rows: shard_rows,
                    cols: h,
                },
                self.compute,
            )?;
        }

        // --- Attention backward ---
        if s.compiled {
            self.fused(ctx, shard_rows * h, 7)?;
        } else {
            self.ew(ctx, shard_rows * h, 2)?;
        }
        if s.sp {
            self.sp_all_gather(ctx, act_bytes)?;
        }
        ctx.cublas_gemm_ex(self.blas, bs, hp, h, d)?; // out-proj dgrad
        ctx.cublas_gemm_ex(self.blas, hp, h, bs, d)?; // out-proj wgrad
                                                      // Context matmul backward (two batched GEMMs).
        ctx.cublas_gemm_strided_batched(
            self.blas,
            s.seq,
            s.seq,
            h / s.heads,
            s.micro_bs * heads_p,
            d,
        )?;
        ctx.cublas_gemm_strided_batched(
            self.blas,
            s.seq,
            h / s.heads,
            s.seq,
            s.micro_bs * heads_p,
            d,
        )?;
        let attn_numel = s.micro_bs * heads_p * s.seq * s.seq;
        if s.compiled {
            self.fused(ctx, attn_numel, 8)?;
        } else {
            ctx.launch_kernel(
                KernelKind::VectorizedElementwise {
                    numel: attn_numel,
                    dtype: d,
                },
                self.compute,
            )?; // dropout bwd
            ctx.launch_kernel(
                KernelKind::SoftmaxBackward {
                    rows: s.micro_bs * heads_p * s.seq,
                    cols: s.seq,
                    masked: s.causal,
                },
                self.compute,
            )?;
        }
        // Scores matmul backward (two batched GEMMs).
        ctx.cublas_gemm_strided_batched(
            self.blas,
            s.seq,
            h / s.heads,
            s.seq,
            s.micro_bs * heads_p,
            d,
        )?;
        ctx.cublas_gemm_strided_batched(
            self.blas,
            h / s.heads,
            s.seq,
            s.seq,
            s.micro_bs * heads_p,
            d,
        )?;
        ctx.cublas_gemm_ex(self.blas, bs, h, 3 * hp, d)?; // QKV dgrad
        ctx.cublas_gemm_ex(self.blas, 3 * hp, h, bs, d)?; // QKV wgrad
        if s.sp {
            self.sp_reduce_scatter(ctx, act_bytes)?;
        } else {
            self.tp_allreduce(ctx, act_bytes)?;
        }
        if s.compiled {
            self.fused(ctx, shard_rows * h, 10)?;
        } else {
            ctx.launch_kernel(
                KernelKind::LayerNormBackwardGamma {
                    rows: shard_rows,
                    cols: h,
                },
                self.compute,
            )?;
            ctx.launch_kernel(
                KernelKind::LayerNormBackwardInput {
                    rows: shard_rows,
                    cols: h,
                },
                self.compute,
            )?;
        }
        Ok(())
    }

    /// Embedding + positional encoding forward (first pipeline block).
    pub fn embedding_forward(&self, ctx: &mut CudaContext) -> CudaResult<()> {
        let s = &self.shape;
        ctx.launch_kernel(
            KernelKind::EmbeddingForward {
                tokens: s.tokens(),
                hidden: s.hidden,
            },
            self.compute,
        )?;
        self.ew(ctx, s.tokens() * s.hidden, 2)?; // + positional embedding
        ctx.launch_kernel(
            KernelKind::FusedDropout {
                numel: s.tokens() * s.hidden,
            },
            self.compute,
        )
    }

    /// Embedding backward (scatter-add of token gradients).
    pub fn embedding_backward(&self, ctx: &mut CudaContext) -> CudaResult<()> {
        let s = &self.shape;
        ctx.launch_kernel(
            KernelKind::EmbeddingBackward {
                tokens: s.tokens(),
                hidden: s.hidden,
            },
            self.compute,
        )?;
        self.ew(ctx, s.tokens() * s.hidden, 1)
    }

    /// LM head + cross-entropy forward (last pipeline block). Emits the
    /// vocabulary-parallel loss reduction when TP is active.
    pub fn head_forward(&self, ctx: &mut CudaContext) -> CudaResult<()> {
        let s = &self.shape;
        let tokens = s.tokens();
        ctx.launch_kernel(
            KernelKind::LayerNormForward {
                rows: tokens,
                cols: s.hidden,
            },
            self.compute,
        )?;
        ctx.cublas_gemm_ex(self.blas, tokens, s.vocab / s.tp, s.hidden, s.dtype)?;
        ctx.launch_kernel(
            KernelKind::CrossEntropyForward {
                tokens,
                vocab: s.vocab / s.tp,
            },
            self.compute,
        )?;
        if s.tp > 1 {
            // Vocab-parallel softmax statistics (max + sum).
            self.tp_allreduce(ctx, tokens * 8)?;
        }
        ctx.launch_kernel(
            KernelKind::Reduce {
                numel: tokens,
                dtype: Dtype::Fp32,
            },
            self.compute,
        )
    }

    /// LM head + cross-entropy backward.
    pub fn head_backward(&self, ctx: &mut CudaContext) -> CudaResult<()> {
        let s = &self.shape;
        let tokens = s.tokens();
        ctx.launch_kernel(
            KernelKind::CrossEntropyBackward {
                tokens,
                vocab: s.vocab / s.tp,
            },
            self.compute,
        )?;
        ctx.cublas_gemm_ex(self.blas, tokens, s.hidden, s.vocab / s.tp, s.dtype)?; // dgrad
        ctx.cublas_gemm_ex(self.blas, s.vocab / s.tp, s.hidden, tokens, s.dtype)?; // wgrad
        ctx.launch_kernel(
            KernelKind::LayerNormBackwardGamma {
                rows: tokens,
                cols: s.hidden,
            },
            self.compute,
        )?;
        ctx.launch_kernel(
            KernelKind::LayerNormBackwardInput {
                rows: tokens,
                cols: s.hidden,
            },
            self.compute,
        )
    }

    /// Adam optimizer step over `param_elems` local elements, plus the
    /// grad-norm / loss-scale bookkeeping kernels.
    pub fn optimizer_step(&self, ctx: &mut CudaContext, param_elems: u64) -> CudaResult<()> {
        ctx.host_work(self.host_work_per_layer);
        ctx.launch_kernel(
            KernelKind::Reduce {
                numel: param_elems,
                dtype: Dtype::Fp32,
            },
            self.compute,
        )?; // grad norm
        ctx.launch_kernel(
            KernelKind::MultiTensorApply {
                numel: param_elems,
                ops_per_elem: 4,
            },
            self.compute,
        )?; // fused Adam
        ctx.launch_kernel(
            KernelKind::VectorizedElementwise {
                numel: param_elems,
                dtype: self.shape.dtype,
            },
            self.compute,
        ) // master -> model param cast
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_cuda::NcclUniqueId;
    use maya_hw::GpuSpec;

    fn shape(tp: u64, sp: bool, compiled: bool) -> LayerShape {
        LayerShape {
            micro_bs: 2,
            seq: 128,
            hidden: 256,
            heads: 8,
            ffn: 1024,
            vocab: 1024,
            tp,
            sp,
            causal: true,
            gated: false,
            dtype: Dtype::Bf16,
            compiled,
        }
    }

    fn emitter(ctx: &mut CudaContext, tp: u64, sp: bool, compiled: bool) -> TransformerEmitter {
        let blas = ctx.cublas_create();
        let tp_comm = if tp > 1 {
            let uid = NcclUniqueId::from_members(&[0, 1]);
            Some(ctx.nccl_comm_init_rank(uid, tp as u32, 0).unwrap())
        } else {
            None
        };
        TransformerEmitter {
            shape: shape(tp, sp, compiled),
            blas,
            tp_comm,
            compute: CudaStream::DEFAULT,
            host_work_per_layer: SimTime::from_us(15.0),
        }
    }

    fn kernel_names(ctx: CudaContext) -> Vec<&'static str> {
        ctx.into_trace()
            .events
            .iter()
            .map(|e| e.op.name())
            .collect()
    }

    #[test]
    fn forward_has_four_gemms_and_two_allreduces_with_tp() {
        let mut ctx = CudaContext::new(0, GpuSpec::h100());
        let e = emitter(&mut ctx, 2, false, false);
        e.forward_layer(&mut ctx).unwrap();
        let names = kernel_names(ctx);
        let gemms = names.iter().filter(|n| n.starts_with("cublasGemm")).count();
        let batched = names
            .iter()
            .filter(|n| *n == &"cublasSgemmStridedBatched")
            .count();
        let ars = names.iter().filter(|n| *n == &"ncclAllReduce").count();
        assert_eq!(gemms, 4, "{names:?}");
        assert_eq!(batched, 2);
        assert_eq!(ars, 2);
    }

    #[test]
    fn backward_has_roughly_double_gemm_work() {
        let mut ctx = CudaContext::new(0, GpuSpec::h100());
        let e = emitter(&mut ctx, 1, false, false);
        e.forward_layer(&mut ctx).unwrap();
        let fwd_flops: f64 = {
            let t = std::mem::replace(&mut ctx, CudaContext::new(0, GpuSpec::h100()));
            t.into_trace()
                .kernels()
                .filter_map(|ev| ev.op.as_kernel().map(|k| k.flops()))
                .sum()
        };
        let e2 = emitter(&mut ctx, 1, false, false);
        e2.backward_layer(&mut ctx).unwrap();
        let bwd_flops: f64 = ctx
            .into_trace()
            .kernels()
            .filter_map(|ev| ev.op.as_kernel().map(|k| k.flops()))
            .sum();
        let ratio = bwd_flops / fwd_flops;
        assert!((1.6..2.4).contains(&ratio), "bwd/fwd flops ratio {ratio}");
    }

    #[test]
    fn sequence_parallel_swaps_allreduce_for_rs_ag() {
        let mut ctx = CudaContext::new(0, GpuSpec::h100());
        let e = emitter(&mut ctx, 2, true, false);
        e.forward_layer(&mut ctx).unwrap();
        let names = kernel_names(ctx);
        assert!(!names.contains(&"ncclAllReduce"), "{names:?}");
        assert_eq!(names.iter().filter(|n| *n == &"ncclAllGather").count(), 2);
        assert_eq!(
            names.iter().filter(|n| *n == &"ncclReduceScatter").count(),
            2
        );
    }

    #[test]
    fn compiled_mode_reduces_kernel_count_keeps_gemms() {
        let mut c_eager = CudaContext::new(0, GpuSpec::h100());
        let e = emitter(&mut c_eager, 1, false, false);
        e.forward_layer(&mut c_eager).unwrap();
        e.backward_layer(&mut c_eager).unwrap();
        let eager = kernel_names(c_eager);

        let mut c_comp = CudaContext::new(0, GpuSpec::h100());
        let e2 = emitter(&mut c_comp, 1, false, true);
        e2.forward_layer(&mut c_comp).unwrap();
        e2.backward_layer(&mut c_comp).unwrap();
        let compiled = kernel_names(c_comp);

        assert!(
            compiled.len() < eager.len(),
            "{} vs {}",
            compiled.len(),
            eager.len()
        );
        let g = |v: &Vec<&str>| v.iter().filter(|n| n.starts_with("cublas")).count();
        assert_eq!(g(&eager), g(&compiled), "fusion must not change GEMM count");
        assert!(compiled.contains(&"triton"));
        assert!(!compiled.contains(&"cuApplyLayerNorm"));
    }

    #[test]
    fn head_emits_vocab_parallel_loss_reduction() {
        let mut ctx = CudaContext::new(0, GpuSpec::h100());
        let e = emitter(&mut ctx, 2, false, false);
        e.head_forward(&mut ctx).unwrap();
        let names = kernel_names(ctx);
        assert!(names.contains(&"nll_loss_forward_reduce_cuda_kernel_2d"));
        assert!(names.contains(&"ncclAllReduce"));
    }

    #[test]
    fn optimizer_step_kernels() {
        let mut ctx = CudaContext::new(0, GpuSpec::h100());
        let e = emitter(&mut ctx, 1, false, false);
        e.optimizer_step(&mut ctx, 1_000_000).unwrap();
        let names = kernel_names(ctx);
        assert!(names.contains(&"multi_tensor_apply_kernel"));
        assert!(names.contains(&"reduce_kernel"));
    }

    #[test]
    fn gated_mlp_adds_gemm() {
        let mut a = CudaContext::new(0, GpuSpec::h100());
        let mut e = emitter(&mut a, 1, false, false);
        e.forward_layer(&mut a).unwrap();
        let base = kernel_names(a)
            .iter()
            .filter(|n| n.starts_with("cublas"))
            .count();
        let mut b = CudaContext::new(0, GpuSpec::h100());
        e = emitter(&mut b, 1, false, false);
        e.shape.gated = true;
        e.forward_layer(&mut b).unwrap();
        let gated = kernel_names(b)
            .iter()
            .filter(|n| n.starts_with("cublas"))
            .count();
        assert_eq!(gated, base + 1);
    }
}
