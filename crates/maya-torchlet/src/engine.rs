//! The Megatron-style distributed training engine.
//!
//! `run_megatron_worker` plays the role of one rank's unmodified training
//! script: it sets up communicators, allocates parameter/gradient/
//! optimizer state, then walks the pipeline schedule issuing every device
//! API call a real Megatron-LM iteration would — forward/backward kernel
//! sequences, tensor-parallel collectives, pipeline p2p transfers with
//! event-based stream synchronization, data-parallel gradient reduction,
//! the distributed-optimizer gather, and the optimizer step. Activation
//! buffers are `cudaMalloc`ed at each microbatch's forward and freed at
//! its backward, so the emulator's live-byte tracking reproduces 1F1B
//! in-flight memory (and OOM behavior) without any closed-form model.

use std::collections::HashMap;

use maya_cuda::{CudaContext, CudaEvent, CudaResult, CudaStream, NcclComm, NcclUniqueId};
use maya_trace::{MemcpyKind, SimTime};

use crate::layers::{LayerShape, TransformerEmitter};
use crate::memory::{act_bytes_per_layer, embedding_param_elems, layer_param_elems, logits_bytes};
use crate::parallel::RankTopology;
use crate::schedule::{block_of, build_schedule, owner_of, StepKind};
use crate::workload::TrainingJob;

/// Per-worker runtime handles.
struct Comms {
    tp: Option<NcclComm>,
    dp: Option<NcclComm>,
    embedding: Option<NcclComm>,
    /// Directed p2p links: `(peer_stage, is_forward_direction) -> comm`.
    /// `rank_in_comm` is 0 for the sender and 1 for the receiver.
    links: HashMap<(u32, bool, bool), NcclComm>,
}

struct Streams {
    compute: CudaStream,
    dp: CudaStream,
    /// Dedicated stream per p2p link and role: `(peer_stage, forward,
    /// is_send) -> stream`. Megatron's batched p2p groups similarly keep
    /// independent links from serializing behind each other; with a
    /// single shared stream, sends to one neighbor could queue behind
    /// unmatched sends to another and stall the pipeline.
    p2p: HashMap<(u32, bool, bool), CudaStream>,
}

impl Streams {
    fn p2p_stream(
        &mut self,
        ctx: &mut CudaContext,
        peer: u32,
        forward: bool,
        is_send: bool,
    ) -> CudaStream {
        *self
            .p2p
            .entry((peer, forward, is_send))
            .or_insert_with(|| ctx.stream_create())
    }
}

struct Events {
    recv_done: CudaEvent,
    compute_done: CudaEvent,
    dp_done: CudaEvent,
}

/// Bucket size for data-parallel gradient all-reduce (Megatron default
/// is on the order of 100-200 MB).
const DP_BUCKET_BYTES: u64 = 128 * 1024 * 1024;

/// Host time modeling the data loader + Python step loop per microbatch.
const DATALOADER_US: f64 = 120.0;

/// Runs one worker of a Megatron-style job against the virtual device.
pub fn run_megatron_worker(job: &TrainingJob, rank: u32, ctx: &mut CudaContext) -> CudaResult<()> {
    let cfg = job
        .model
        .transformer()
        .copied()
        .expect("megatron engine requires a transformer model (validated upstream)");
    let par = &job.parallel;
    let topo = RankTopology::new(par, job.world);
    let (tpr, dpr, ppr) = (topo.tp_rank(rank), topo.dp_rank(rank), topo.pp_rank(rank));
    let num_mb = par.num_microbatches();
    let micro_bs = job.global_batch / (topo.dp * num_mb);
    let chunks = par.virtual_stages;
    let layers_per_chunk = cfg.layers / (par.pp * chunks);
    let total_blocks = par.pp * chunks;

    // --- Streams & events ---
    let mut streams = Streams {
        compute: CudaStream::DEFAULT,
        dp: ctx.stream_create(),
        p2p: HashMap::new(),
    };
    let events = Events {
        recv_done: ctx.event_create(),
        compute_done: ctx.event_create(),
        dp_done: ctx.event_create(),
    };

    // --- Communicators ---
    let mut comms = Comms {
        tp: None,
        dp: None,
        embedding: None,
        links: HashMap::new(),
    };
    if par.tp > 1 {
        let members = topo.tp_group(rank);
        let uid = NcclUniqueId::from_members_tagged(&members, 0x74_70);
        comms.tp = Some(ctx.nccl_comm_init_rank(uid, par.tp, tpr)?);
    }
    if topo.dp > 1 {
        let members = topo.dp_group(rank);
        let uid = NcclUniqueId::from_members_tagged(&members, 0x64_70);
        comms.dp = Some(ctx.nccl_comm_init_rank(uid, topo.dp, dpr)?);
    }
    let owns_first = owner_of(0, par.pp) == ppr;
    let owns_last = owner_of(total_blocks - 1, par.pp) == ppr;
    if par.pp > 1 && (owns_first || owns_last) {
        let members = topo.embedding_group(rank);
        let uid = NcclUniqueId::from_members_tagged(&members, 0x65_6D);
        let my = if ppr == 0 { 0 } else { 1 };
        comms.embedding = Some(ctx.nccl_comm_init_rank(uid, 2, my)?);
    }
    // p2p links for every boundary this stage's blocks touch.
    if par.pp > 1 {
        for chunk in 0..chunks {
            let block = block_of(ppr, chunk, par.pp);
            if block > 0 {
                let from = owner_of(block - 1, par.pp);
                link(ctx, &topo, rank, &mut comms, from, ppr, true, false)?; // act in
                link(ctx, &topo, rank, &mut comms, ppr, from, false, true)?; // grad out
            }
            if block + 1 < total_blocks {
                let to = owner_of(block + 1, par.pp);
                link(ctx, &topo, rank, &mut comms, ppr, to, true, true)?; // act out
                link(ctx, &topo, rank, &mut comms, to, ppr, false, false)?; // grad in
            }
        }
    }

    // --- Persistent state ---
    let mut local_params =
        layers_per_chunk as u64 * chunks as u64 * layer_param_elems(&cfg, par.tp);
    if owns_first {
        local_params += embedding_param_elems(&cfg, par.tp);
    }
    if owns_last && par.pp > 1 {
        // Untied copy of the word embeddings for the output head.
        local_params += embedding_param_elems(&cfg, par.tp);
    }
    let zero_stage = if par.distributed_optimizer { 1 } else { 0 };
    let state = crate::memory::state_bytes(local_params, topo.dp, zero_stage);
    let _params_buf = ctx.malloc(state.params.max(512))?;
    let _grads_buf = ctx.malloc(state.grads.max(512))?;
    let _opt_buf = ctx.malloc(state.optimizer.max(512))?;
    ctx.host_work(SimTime::from_ms(2.0)); // framework init

    // --- Emitter ---
    let blas = ctx.cublas_create();
    ctx.cublas_set_stream(blas, streams.compute)?;
    let shape = LayerShape {
        micro_bs: micro_bs as u64,
        seq: cfg.seq_len as u64,
        hidden: cfg.hidden as u64,
        heads: cfg.heads as u64,
        ffn: cfg.ffn as u64,
        vocab: cfg.vocab as u64,
        tp: par.tp as u64,
        sp: par.sequence_parallel,
        causal: cfg.causal,
        gated: cfg.gated_mlp,
        dtype: job.precision,
        compiled: job.compile,
    };
    let emitter = TransformerEmitter {
        shape,
        blas,
        tp_comm: comms.tp,
        compute: streams.compute,
        host_work_per_layer: SimTime::from_us(if job.compile { 6.0 } else { 18.0 }),
    };

    let act_per_layer = act_bytes_per_layer(&cfg, micro_bs, par);
    let full_act_per_layer = act_bytes_per_layer(
        &cfg,
        micro_bs,
        &crate::parallel::ParallelConfig {
            activation_recompute: false,
            ..*par
        },
    );
    let boundary_bytes = {
        let base = shape.act_tensor_bytes();
        if par.sequence_parallel {
            base / par.tp as u64
        } else {
            base
        }
    };

    let steps = build_schedule(par.pp, ppr, num_mb, chunks);
    let mut act_bufs: HashMap<(u32, u32), maya_cuda::DevicePtr> = HashMap::new();
    let mut logit_bufs: HashMap<u32, maya_cuda::DevicePtr> = HashMap::new();

    for _iter in 0..job.iterations.max(1) {
        for step in &steps {
            let block = block_of(ppr, step.chunk, par.pp);
            match step.kind {
                StepKind::Forward => {
                    if block == 0 {
                        // Data loading + token upload + embedding.
                        ctx.host_work(SimTime::from_us(DATALOADER_US));
                        ctx.memcpy_async(
                            shape.tokens() * 8,
                            MemcpyKind::HostToDevice,
                            streams.compute,
                        )?;
                        emitter.embedding_forward(ctx)?;
                    } else {
                        recv_boundary(
                            ctx,
                            &comms,
                            owner_of(block - 1, par.pp),
                            true,
                            boundary_bytes,
                            &mut streams,
                            &events,
                        )?;
                    }
                    let buf = ctx.malloc((act_per_layer * layers_per_chunk as u64).max(512))?;
                    act_bufs.insert((step.mb, step.chunk), buf);
                    for _ in 0..layers_per_chunk {
                        emitter.forward_layer(ctx)?;
                    }
                    if block + 1 < total_blocks {
                        send_boundary(
                            ctx,
                            &comms,
                            owner_of(block + 1, par.pp),
                            true,
                            boundary_bytes,
                            &mut streams,
                            &events,
                        )?;
                    } else {
                        let lb = ctx.malloc(logits_bytes(&cfg, micro_bs, par.tp).max(512))?;
                        logit_bufs.insert(step.mb, lb);
                        emitter.head_forward(ctx)?;
                    }
                }
                StepKind::Backward => {
                    if block + 1 < total_blocks {
                        recv_boundary(
                            ctx,
                            &comms,
                            owner_of(block + 1, par.pp),
                            false,
                            boundary_bytes,
                            &mut streams,
                            &events,
                        )?;
                    } else {
                        emitter.head_backward(ctx)?;
                        if let Some(lb) = logit_bufs.remove(&step.mb) {
                            ctx.free(lb)?;
                        }
                    }
                    if par.activation_recompute {
                        // Re-run each layer's forward from its stored
                        // input, then run its backward; one transient
                        // full-activation buffer is live at a time.
                        for _ in 0..layers_per_chunk {
                            let tmp = ctx.malloc(full_act_per_layer.max(512))?;
                            emitter.forward_layer(ctx)?;
                            emitter.backward_layer(ctx)?;
                            ctx.free(tmp)?;
                        }
                    } else {
                        for _ in 0..layers_per_chunk {
                            emitter.backward_layer(ctx)?;
                        }
                    }
                    if block == 0 {
                        emitter.embedding_backward(ctx)?;
                    } else {
                        send_boundary(
                            ctx,
                            &comms,
                            owner_of(block - 1, par.pp),
                            false,
                            boundary_bytes,
                            &mut streams,
                            &events,
                        )?;
                    }
                    if let Some(buf) = act_bufs.remove(&(step.mb, step.chunk)) {
                        ctx.free(buf)?;
                    }
                }
            }
        }

        // --- Gradient reduction ---
        if let Some(dp_comm) = comms.dp {
            ctx.event_record(events.compute_done, streams.compute)?;
            ctx.stream_wait_event(streams.dp, events.compute_done)?;
            let grad_bytes = state.grads.max(512);
            if par.distributed_optimizer {
                ctx.nccl_reduce_scatter(dp_comm, grad_bytes, streams.dp)?;
            } else {
                let mut remaining = grad_bytes;
                while remaining > 0 {
                    let b = remaining.min(DP_BUCKET_BYTES);
                    ctx.nccl_all_reduce(dp_comm, b, streams.dp)?;
                    remaining -= b;
                }
            }
            ctx.event_record(events.dp_done, streams.dp)?;
            ctx.stream_wait_event(streams.compute, events.dp_done)?;
        }
        // Tied-embedding gradient reduction across first/last stages.
        if let Some(emb) = comms.embedding {
            let bytes = (cfg.vocab as u64 / par.tp as u64) * cfg.hidden as u64 * 4;
            ctx.nccl_all_reduce(emb, bytes, streams.compute)?;
        }

        // --- Optimizer ---
        let opt_elems = if par.distributed_optimizer {
            local_params / topo.dp as u64
        } else {
            local_params
        };
        emitter.optimizer_step(ctx, opt_elems.max(1))?;
        if par.distributed_optimizer {
            if let Some(dp_comm) = comms.dp {
                ctx.event_record(events.compute_done, streams.compute)?;
                ctx.stream_wait_event(streams.dp, events.compute_done)?;
                ctx.nccl_all_gather(dp_comm, state.params.max(512), streams.dp)?;
                ctx.event_record(events.dp_done, streams.dp)?;
                ctx.stream_wait_event(streams.compute, events.dp_done)?;
            }
        }

        // loss.item(): synchronous DtoH fetch, blocks the host.
        ctx.memcpy(8, MemcpyKind::DeviceToHost)?;
        ctx.device_synchronize();
    }
    Ok(())
}

/// Ensures a directed p2p link communicator exists; `i_send` tells this
/// rank's role on the link.
#[allow(clippy::too_many_arguments)]
fn link(
    ctx: &mut CudaContext,
    topo: &RankTopology,
    rank: u32,
    comms: &mut Comms,
    from_stage: u32,
    to_stage: u32,
    forward: bool,
    i_send: bool,
) -> CudaResult<()> {
    let key = (if i_send { to_stage } else { from_stage }, forward, i_send);
    if comms.links.contains_key(&key) {
        return Ok(());
    }
    let (t, d) = (topo.tp_rank(rank), topo.dp_rank(rank));
    let members = [
        topo.global_rank(t, d, from_stage),
        topo.global_rank(t, d, to_stage),
    ];
    let tag = if forward { 0x0061_6374 } else { 0x0067_7264 };
    let uid = NcclUniqueId::from_members_tagged(&members, tag);
    let my = if i_send { 0 } else { 1 };
    let comm = ctx.nccl_comm_init_rank(uid, 2, my)?;
    comms.links.insert(key, comm);
    Ok(())
}

/// Receives one boundary tensor: recv on the link's stream, then make
/// the compute stream wait on it.
fn recv_boundary(
    ctx: &mut CudaContext,
    comms: &Comms,
    peer_stage: u32,
    forward: bool,
    bytes: u64,
    streams: &mut Streams,
    events: &Events,
) -> CudaResult<()> {
    let comm = comms.links[&(peer_stage, forward, false)];
    let stream = streams.p2p_stream(ctx, peer_stage, forward, false);
    ctx.nccl_recv(comm, 0, bytes, stream)?;
    ctx.event_record(events.recv_done, stream)?;
    ctx.stream_wait_event(streams.compute, events.recv_done)
}

/// Sends one boundary tensor after the compute stream produced it.
fn send_boundary(
    ctx: &mut CudaContext,
    comms: &Comms,
    peer_stage: u32,
    forward: bool,
    bytes: u64,
    streams: &mut Streams,
    events: &Events,
) -> CudaResult<()> {
    let comm = comms.links[&(peer_stage, forward, true)];
    let stream = streams.p2p_stream(ctx, peer_stage, forward, true);
    ctx.event_record(events.compute_done, streams.compute)?;
    ctx.stream_wait_event(stream, events.compute_done)?;
    ctx.nccl_send(comm, 1, bytes, stream)
}

/// Builds the complete communicator-group map a Megatron job creates:
/// `comm_id -> members` for every tp/dp/embedding/p2p-link communicator,
/// using the same unique-id derivation as `run_megatron_worker`.
///
/// Used by selective launch (§7.4): when only unique ranks are emulated,
/// the collator cannot reconstruct group membership from observation and
/// needs this workload knowledge instead.
pub fn megatron_comm_groups(job: &TrainingJob) -> std::collections::BTreeMap<u64, Vec<u32>> {
    let mut groups = std::collections::BTreeMap::new();
    let par = &job.parallel;
    let topo = RankTopology::new(par, job.world);
    let chunks = par.virtual_stages;
    let total_blocks = par.pp * chunks;
    let mut insert = |members: Vec<u32>, tag: u64| {
        let uid = NcclUniqueId::from_members_tagged(&members, tag);
        groups.insert(uid.0, members);
    };
    for p in 0..par.pp {
        for d in 0..topo.dp {
            if par.tp > 1 {
                let members: Vec<u32> = (0..par.tp).map(|t| topo.global_rank(t, d, p)).collect();
                insert(members, 0x74_70);
            }
        }
        for t in 0..par.tp {
            if topo.dp > 1 {
                let members: Vec<u32> = (0..topo.dp).map(|d| topo.global_rank(t, d, p)).collect();
                insert(members, 0x64_70);
            }
        }
    }
    if par.pp > 1 {
        for t in 0..par.tp {
            for d in 0..topo.dp {
                insert(
                    vec![
                        topo.global_rank(t, d, 0),
                        topo.global_rank(t, d, par.pp - 1),
                    ],
                    0x65_6D,
                );
                for block in 1..total_blocks {
                    let from = owner_of(block - 1, par.pp);
                    let to = owner_of(block, par.pp);
                    let (gf, gt) = (topo.global_rank(t, d, from), topo.global_rank(t, d, to));
                    insert(vec![gf, gt], 0x0061_6374); // activations, from -> to
                    insert(vec![gt, gf], 0x0067_7264); // gradients, to -> from
                }
            }
        }
    }
    groups
}

/// Runs a single worker on a fresh context and returns its trace plus
/// the run result (Err for OOM or API misuse).
pub fn trace_one_rank(
    job: &TrainingJob,
    rank: u32,
    gpu: maya_hw::GpuSpec,
) -> (maya_trace::WorkerTrace, CudaResult<()>) {
    let mut ctx = CudaContext::new(rank, gpu);
    let res = job.run_worker(rank, &mut ctx);
    (ctx.into_trace(), res)
}
