//! Data-parallel framework flavors: PyTorch DDP, DeepSpeed ZeRO 1-3 with
//! optional activation offload, and FSDP.
//!
//! These reproduce the Table 4 generality matrix: the same models running
//! under different framework stacks, each with its characteristic device
//! API footprint — DDP's bucketed overlap all-reduce, ZeRO's
//! reduce-scatter/all-gather pairs, FSDP/ZeRO-3's per-layer parameter
//! gathers, and offload's host-device activation traffic.

use maya_cuda::{CudaContext, CudaResult, CudaStream, NcclComm, NcclUniqueId};
use maya_trace::{MemcpyKind, SimTime};

use crate::layers::{LayerShape, TransformerEmitter};
use crate::memory::{
    act_bytes_per_layer, embedding_param_elems, layer_param_elems, logits_bytes, state_bytes,
};
use crate::models::ModelSpec;
use crate::vision::ResNetEmitter;
use crate::workload::{FrameworkFlavor, TrainingJob};

/// Runs one worker of a pure data-parallel job (DDP / ZeRO / FSDP).
pub fn run_dp_worker(job: &TrainingJob, rank: u32, ctx: &mut CudaContext) -> CudaResult<()> {
    let world = job.world;
    let dp_comm = if world > 1 {
        let members: Vec<u32> = (0..world).collect();
        let uid = NcclUniqueId::from_members_tagged(&members, 0x64_64_70);
        Some(ctx.nccl_comm_init_rank(uid, world, rank)?)
    } else {
        None
    };
    let dp_stream = ctx.stream_create();

    match &job.model {
        ModelSpec::ResNet(cfg) => run_dp_vision(job, *cfg, ctx, dp_comm, dp_stream),
        _ => run_dp_transformer(job, ctx, dp_comm, dp_stream),
    }
}

/// Vision models: DDP or ZeRO over a CNN.
fn run_dp_vision(
    job: &TrainingJob,
    cfg: crate::models::ResNetConfig,
    ctx: &mut CudaContext,
    dp_comm: Option<NcclComm>,
    dp_stream: CudaStream,
) -> CudaResult<()> {
    let num_mb = job.parallel.num_microbatches();
    let micro_bs = (job.global_batch / (job.world * num_mb)).max(1) as u64;
    let emitter = ResNetEmitter::new(ctx, cfg, micro_bs, job.precision, job.compile)?;
    let params = emitter.param_elems();
    let zero = job.zero_stage();
    let state = state_bytes(params, job.world, zero);
    let _p = ctx.malloc(state.params.max(512))?;
    let _g = ctx.malloc(state.grads.max(512))?;
    let _o = ctx.malloc(state.optimizer.max(512))?;

    for _ in 0..job.iterations.max(1) {
        for _ in 0..num_mb {
            let buf = emitter.forward(ctx)?;
            emitter.backward(ctx, buf)?;
        }
        emitter.optimizer_step(ctx, dp_comm, dp_stream)?;
    }
    Ok(())
}

/// Transformers under DDP / ZeRO / FSDP.
fn run_dp_transformer(
    job: &TrainingJob,
    ctx: &mut CudaContext,
    dp_comm: Option<NcclComm>,
    dp_stream: CudaStream,
) -> CudaResult<()> {
    let cfg = *job.model.transformer().expect("transformer flavor");
    let num_mb = job.parallel.num_microbatches();
    let micro_bs = job.global_batch / (job.world * num_mb);
    let zero = job.zero_stage();
    let offload = job.activation_offload();
    let dp = job.world;

    let layer_elems = layer_param_elems(&cfg, 1);
    let total_params = layer_elems * cfg.layers as u64 + embedding_param_elems(&cfg, 1);
    let state = state_bytes(total_params, dp, zero);
    let _p = ctx.malloc(state.params.max(512))?;
    let _g = ctx.malloc(state.grads.max(512))?;
    let _o = ctx.malloc(state.optimizer.max(512))?;
    ctx.host_work(SimTime::from_ms(2.0));

    let blas = ctx.cublas_create();
    let shape = LayerShape {
        micro_bs: micro_bs as u64,
        seq: cfg.seq_len as u64,
        hidden: cfg.hidden as u64,
        heads: cfg.heads as u64,
        ffn: cfg.ffn as u64,
        vocab: cfg.vocab as u64,
        tp: 1,
        sp: false,
        causal: cfg.causal,
        gated: cfg.gated_mlp,
        dtype: job.precision,
        compiled: job.compile,
    };
    let emitter = TransformerEmitter {
        shape,
        blas,
        tp_comm: None,
        compute: CudaStream::DEFAULT,
        host_work_per_layer: SimTime::from_us(if job.compile { 6.0 } else { 18.0 }),
    };
    let evt = ctx.event_create();
    let evt_back = ctx.event_create();
    let act_layer = act_bytes_per_layer(&cfg, micro_bs, &job.parallel);
    let gather_per_layer = zero >= 3;
    let layer_param_bytes = layer_elems * 2;

    for _ in 0..job.iterations.max(1) {
        for mb in 0..num_mb {
            // ---- forward ----
            ctx.host_work(SimTime::from_us(120.0)); // dataloader
            ctx.memcpy_async(
                shape.tokens() * 8,
                MemcpyKind::HostToDevice,
                emitter.compute,
            )?;
            emitter.embedding_forward(ctx)?;
            let mut layer_acts = Vec::new();
            for _ in 0..cfg.layers {
                if gather_per_layer {
                    if let Some(comm) = dp_comm {
                        // FSDP unit gather on the comm stream, awaited by
                        // compute.
                        ctx.nccl_all_gather(comm, layer_param_bytes, dp_stream)?;
                        ctx.event_record(evt, dp_stream)?;
                        ctx.stream_wait_event(emitter.compute, evt)?;
                    }
                }
                let buf = ctx.malloc(act_layer.max(512))?;
                emitter.forward_layer(ctx)?;
                if offload {
                    ctx.memcpy_async(act_layer.max(512), MemcpyKind::DeviceToHost, dp_stream)?;
                    ctx.event_record(evt, dp_stream)?;
                    ctx.stream_wait_event(emitter.compute, evt)?;
                    ctx.free(buf)?;
                    layer_acts.push(None);
                } else {
                    layer_acts.push(Some(buf));
                }
            }
            let logits = ctx.malloc(logits_bytes(&cfg, micro_bs, 1).max(512))?;
            emitter.head_forward(ctx)?;

            // ---- backward ----
            emitter.head_backward(ctx)?;
            ctx.free(logits)?;
            let last_mb = mb + 1 == num_mb;
            for (li, act) in layer_acts.into_iter().enumerate().rev() {
                if gather_per_layer {
                    if let Some(comm) = dp_comm {
                        ctx.nccl_all_gather(comm, layer_param_bytes, dp_stream)?;
                        ctx.event_record(evt, dp_stream)?;
                        ctx.stream_wait_event(emitter.compute, evt)?;
                    }
                }
                match act {
                    Some(buf) => {
                        emitter.backward_layer(ctx)?;
                        ctx.free(buf)?;
                    }
                    None => {
                        // Prefetch the offloaded activations back first.
                        let buf = ctx.malloc(act_layer.max(512))?;
                        ctx.memcpy_async(act_layer.max(512), MemcpyKind::HostToDevice, dp_stream)?;
                        ctx.event_record(evt, dp_stream)?;
                        ctx.stream_wait_event(emitter.compute, evt)?;
                        emitter.backward_layer(ctx)?;
                        ctx.free(buf)?;
                    }
                }
                if let Some(comm) = dp_comm {
                    if zero >= 3 {
                        // FSDP: reduce-scatter this layer's grads as soon
                        // as they exist.
                        ctx.event_record(evt_back, emitter.compute)?;
                        ctx.stream_wait_event(dp_stream, evt_back)?;
                        ctx.nccl_reduce_scatter(comm, layer_elems * 4, dp_stream)?;
                    } else if zero == 0 && last_mb && li % 4 == 0 {
                        // DDP: bucketed overlap all-reduce every few
                        // layers, gradient accumulation uses no_sync().
                        ctx.event_record(evt_back, emitter.compute)?;
                        ctx.stream_wait_event(dp_stream, evt_back)?;
                        ctx.nccl_all_reduce(comm, layer_elems * 4 * 4, dp_stream)?;
                    }
                }
            }
            emitter.embedding_backward(ctx)?;
        }

        // ---- gradient sync tail + optimizer ----
        if let Some(comm) = dp_comm {
            ctx.event_record(evt_back, emitter.compute)?;
            ctx.stream_wait_event(dp_stream, evt_back)?;
            match zero {
                0 => {
                    // DDP tail bucket (embeddings).
                    ctx.nccl_all_reduce(comm, embedding_param_elems(&cfg, 1) * 4, dp_stream)?;
                }
                1 => ctx.nccl_all_reduce(comm, total_params * 4, dp_stream)?,
                2 => ctx.nccl_reduce_scatter(comm, total_params * 4, dp_stream)?,
                _ => {
                    // ZeRO-3/FSDP already reduced per layer; embeddings
                    // remain.
                    ctx.nccl_reduce_scatter(comm, embedding_param_elems(&cfg, 1) * 4, dp_stream)?;
                }
            }
            ctx.event_record(evt, dp_stream)?;
            ctx.stream_wait_event(emitter.compute, evt)?;
        }
        let opt_elems = if zero >= 1 {
            total_params / dp as u64
        } else {
            total_params
        };
        emitter.optimizer_step(ctx, opt_elems.max(1))?;
        if (1..=2).contains(&zero) {
            if let Some(comm) = dp_comm {
                ctx.nccl_all_gather(comm, total_params * 2, dp_stream)?;
                ctx.event_record(evt, dp_stream)?;
                ctx.stream_wait_event(emitter.compute, evt)?;
            }
        }
        ctx.memcpy(8, MemcpyKind::DeviceToHost)?;
        ctx.device_synchronize();
    }
    Ok(())
}

/// Whether a flavor is a pure data-parallel stack (vs. Megatron's 3D
/// parallelism).
pub fn is_pure_dp(flavor: &FrameworkFlavor) -> bool {
    !matches!(flavor, FrameworkFlavor::Megatron)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelConfig;
    use maya_hw::GpuSpec;

    fn job(flavor: FrameworkFlavor, world: u32) -> TrainingJob {
        TrainingJob {
            model: ModelSpec::gpt3_125m(),
            parallel: ParallelConfig::default(),
            flavor,
            compile: false,
            global_batch: 4 * world,
            world,
            gpus_per_node: 8,
            precision: maya_trace::Dtype::Bf16,
            iterations: 1,
        }
    }

    fn names_for(flavor: FrameworkFlavor) -> Vec<&'static str> {
        let mut ctx = CudaContext::new(0, GpuSpec::h100());
        run_dp_worker(&job(flavor, 4), 0, &mut ctx).unwrap();
        ctx.into_trace()
            .events
            .iter()
            .map(|e| e.op.name())
            .collect()
    }

    #[test]
    fn ddp_uses_bucketed_allreduce_only() {
        let names = names_for(FrameworkFlavor::Ddp);
        assert!(names.contains(&"ncclAllReduce"));
        assert!(!names.contains(&"ncclReduceScatter"));
        assert!(!names.contains(&"ncclAllGather"));
    }

    #[test]
    fn zero2_reduce_scatters_and_gathers() {
        let names = names_for(FrameworkFlavor::DeepSpeedZero {
            stage: 2,
            activation_offload: false,
        });
        assert!(names.contains(&"ncclReduceScatter"));
        assert!(names.contains(&"ncclAllGather"));
    }

    #[test]
    fn fsdp_gathers_params_per_layer() {
        let names = names_for(FrameworkFlavor::Fsdp);
        let gathers = names.iter().filter(|n| *n == &"ncclAllGather").count();
        // One gather per layer forward + one per layer backward.
        assert!(gathers >= 2 * 12, "{gathers}");
    }

    #[test]
    fn offload_emits_host_device_traffic() {
        let names = names_for(FrameworkFlavor::DeepSpeedZero {
            stage: 1,
            activation_offload: true,
        });
        let dtoh = names.iter().filter(|n| *n == &"MemcpyDtoH").count();
        let htod = names.iter().filter(|n| *n == &"MemcpyHtoD").count();
        // One offload store per layer and one prefetch per layer.
        assert!(dtoh >= 12, "DtoH {dtoh}");
        assert!(htod >= 12, "HtoD {htod}");
    }

    #[test]
    fn zero_stages_lower_persistent_memory() {
        let mut peaks = Vec::new();
        for stage in [0u8, 1, 2, 3] {
            let flavor = if stage == 0 {
                FrameworkFlavor::Ddp
            } else {
                FrameworkFlavor::DeepSpeedZero {
                    stage,
                    activation_offload: false,
                }
            };
            let mut ctx = CudaContext::new(0, GpuSpec::h100());
            run_dp_worker(&job(flavor, 8), 0, &mut ctx).unwrap();
            peaks.push(ctx.into_trace().summary.peak_mem_bytes);
        }
        assert!(peaks[0] > peaks[1], "{peaks:?}");
        assert!(peaks[1] > peaks[2], "{peaks:?}");
        assert!(peaks[2] > peaks[3], "{peaks:?}");
    }

    #[test]
    fn vision_ddp_runs() {
        let mut ctx = CudaContext::new(0, GpuSpec::a40());
        let mut j = job(FrameworkFlavor::Ddp, 8);
        j.model = ModelSpec::resnet152();
        j.global_batch = 256;
        run_dp_worker(&j, 0, &mut ctx).unwrap();
        let t = ctx.into_trace();
        assert!(t.summary.num_kernels > 100);
        assert!(t.summary.num_collectives >= 1);
        assert!(!t.summary.oom);
    }
}
