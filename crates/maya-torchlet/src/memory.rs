//! Memory accounting for transformer training state.
//!
//! The emulator tracks every `cudaMalloc`/`cudaFree`, so peak memory and
//! OOM events emerge from *when* the engine allocates and frees — the
//! formulas here only size individual buffers. Activation sizing follows
//! Korthikanti et al. ("Reducing Activation Recomputation in Large
//! Transformer Models"): per layer, `sbh(10 + 24/t + 5as/(ht))` bytes of
//! half-precision activations without sequence parallelism, and
//! `sbh(34/t + 5as/(ht))` with it; full recomputation stores only the
//! 2·sbh-byte layer input.

use crate::models::TransformerConfig;
use crate::parallel::ParallelConfig;

/// Per-layer parameter elements of a transformer layer, on one
/// tensor-parallel shard.
pub fn layer_param_elems(cfg: &TransformerConfig, tp: u32) -> u64 {
    let h = cfg.hidden as u64;
    let ffn = cfg.ffn as u64;
    let t = tp as u64;
    let attn = 4 * h * h / t;
    let mlp = if cfg.gated_mlp {
        3 * h * ffn / t
    } else {
        2 * h * ffn / t
    };
    let norms = 4 * h;
    attn + mlp + norms
}

/// Embedding (and tied LM head) parameter elements on one TP shard.
pub fn embedding_param_elems(cfg: &TransformerConfig, tp: u32) -> u64 {
    (cfg.vocab as u64 / tp as u64) * cfg.hidden as u64 + cfg.seq_len as u64 * cfg.hidden as u64
}

/// Bytes of stored activations for one layer of one microbatch.
pub fn act_bytes_per_layer(
    cfg: &TransformerConfig,
    micro_bs: u32,
    parallel: &ParallelConfig,
) -> u64 {
    let s = cfg.seq_len as f64;
    let b = micro_bs as f64;
    let h = cfg.hidden as f64;
    let a = cfg.heads as f64;
    let t = parallel.tp as f64;
    let sbh = s * b * h;
    if parallel.activation_recompute {
        // Only the layer input survives the forward pass.
        return (2.0 * sbh / if parallel.sequence_parallel { t } else { 1.0 }) as u64;
    }
    let replicated = if parallel.sequence_parallel {
        10.0 / t
    } else {
        10.0
    };
    let sharded = 24.0 / t;
    let attn_matrices = 5.0 * a * s / (h * t);
    (sbh * (replicated + sharded + attn_matrices)) as u64
}

/// Bytes of logits + loss workspace on the last pipeline stage for one
/// microbatch (bf16 logits plus softmax statistics).
pub fn logits_bytes(cfg: &TransformerConfig, micro_bs: u32, tp: u32) -> u64 {
    let tokens = micro_bs as u64 * cfg.seq_len as u64;
    let shard_vocab = cfg.vocab as u64 / tp as u64;
    // Logits (2B) + fp32 softmax copy for the fused CE kernel.
    tokens * shard_vocab * (2 + 4)
}

/// Sizes of the persistent training-state buffers on one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StateBytes {
    /// Half-precision model parameters.
    pub params: u64,
    /// Gradient buffer (fp32 main grads, Megatron-style).
    pub grads: u64,
    /// Optimizer state: fp32 master params + Adam moments.
    pub optimizer: u64,
}

impl StateBytes {
    /// Total persistent bytes.
    pub fn total(&self) -> u64 {
        self.params + self.grads + self.optimizer
    }
}

/// Computes persistent state sizes for `param_elems` local parameter
/// elements, honoring the distributed optimizer / ZeRO stage.
///
/// `zero_stage`: 0 = none, 1 = optimizer-state sharding (Megatron's
/// distributed optimizer), 2 = +gradient sharding, 3 = +parameter
/// sharding (FSDP).
pub fn state_bytes(param_elems: u64, dp: u32, zero_stage: u8) -> StateBytes {
    let dp = dp.max(1) as u64;
    let params = if zero_stage >= 3 {
        2 * param_elems / dp
    } else {
        2 * param_elems
    };
    let grads = if zero_stage >= 2 {
        4 * param_elems / dp
    } else {
        4 * param_elems
    };
    let optimizer = if zero_stage >= 1 {
        12 * param_elems / dp
    } else {
        12 * param_elems
    };
    StateBytes {
        params,
        grads,
        optimizer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelSpec;

    fn gpt() -> TransformerConfig {
        *ModelSpec::gpt3_2_7b().transformer().unwrap()
    }

    #[test]
    fn layer_params_shard_by_tp() {
        let c = gpt();
        let full = layer_param_elems(&c, 1);
        let half = layer_param_elems(&c, 2);
        // Norms are replicated, so the shard is slightly more than half.
        assert!(half > full / 2);
        assert!(half < full * 11 / 20);
    }

    #[test]
    fn total_params_consistent_with_model_count() {
        let c = gpt();
        let total = layer_param_elems(&c, 1) * c.layers as u64 + embedding_param_elems(&c, 1);
        let reported = ModelSpec::gpt3_2_7b().num_params();
        let ratio = total as f64 / reported as f64;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn activation_formula_matches_korthikanti() {
        let c = gpt();
        let p = ParallelConfig {
            tp: 2,
            ..Default::default()
        };
        let b = 4u32;
        let got = act_bytes_per_layer(&c, b, &p);
        let (s, bb, h, a, t) = (
            c.seq_len as f64,
            b as f64,
            c.hidden as f64,
            c.heads as f64,
            2.0f64,
        );
        let want = s * bb * h * (10.0 + 24.0 / t + 5.0 * a * s / (h * t));
        assert!((got as f64 - want).abs() / want < 1e-6);
    }

    #[test]
    fn sequence_parallel_reduces_activations() {
        let c = gpt();
        let base = ParallelConfig {
            tp: 4,
            ..Default::default()
        };
        let sp = ParallelConfig {
            tp: 4,
            sequence_parallel: true,
            ..Default::default()
        };
        assert!(act_bytes_per_layer(&c, 4, &sp) < act_bytes_per_layer(&c, 4, &base));
    }

    #[test]
    fn recompute_stores_only_inputs() {
        let c = gpt();
        let rc = ParallelConfig {
            tp: 1,
            activation_recompute: true,
            ..Default::default()
        };
        let got = act_bytes_per_layer(&c, 4, &rc);
        let want = 2 * 4 * c.seq_len as u64 * c.hidden as u64;
        assert_eq!(got, want);
        let full = act_bytes_per_layer(&c, 4, &ParallelConfig::default());
        assert!(
            got * 10 < full,
            "recompute should drop >10x activation memory"
        );
    }

    #[test]
    fn zero_stages_shard_progressively() {
        let n = 1_000_000u64;
        let none = state_bytes(n, 8, 0);
        let z1 = state_bytes(n, 8, 1);
        let z2 = state_bytes(n, 8, 2);
        let z3 = state_bytes(n, 8, 3);
        assert_eq!(none.total(), 18 * n);
        assert!(z1.optimizer == none.optimizer / 8 && z1.params == none.params);
        assert!(z2.grads == none.grads / 8 && z2.optimizer == z1.optimizer);
        assert!(z3.params == none.params / 8);
        assert!(none.total() > z1.total() && z1.total() > z2.total() && z2.total() > z3.total());
    }

    #[test]
    fn logits_dominated_by_vocab_shard() {
        let c = gpt();
        let full = logits_bytes(&c, 1, 1);
        let shard = logits_bytes(&c, 1, 8);
        assert_eq!(full / 8, shard);
        // ~2048 tokens * 51200 vocab * 6B ≈ 600 MiB.
        assert!(
            full > 500 * 1024 * 1024 && full < 800 * 1024 * 1024,
            "{full}"
        );
    }
}
