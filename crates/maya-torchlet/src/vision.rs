//! CNN (ResNet) kernel emission for the vision experiments (Figure 10).
//!
//! Emits the cuDNN descriptor/convolution call sequences, batch-norm and
//! pooling kernels of a ResNet bottleneck stack, plus DDP gradient
//! all-reduce — the workload shape of the paper's 8×A40 ResNet152 study.

use maya_cuda::{CudaContext, CudaResult, CudaStream, CudnnConvDesc, CudnnHandle, NcclComm};
use maya_trace::{Dtype, KernelKind, MemcpyKind, SimTime};

use crate::models::ResNetConfig;

/// One convolution site in the network, with its cached descriptor.
struct ConvSite {
    desc: CudnnConvDesc,
    /// Output elements (for BN/ReLU sizing).
    out_numel: u64,
    /// Activation bytes to hold for backward.
    act_bytes: u64,
}

/// Emits ResNet forward/backward iterations.
pub struct ResNetEmitter {
    cfg: ResNetConfig,
    batch: u64,
    dtype: Dtype,
    compiled: bool,
    cudnn: CudnnHandle,
    sites: Vec<ConvSite>,
    compute: CudaStream,
}

impl ResNetEmitter {
    /// Builds the emitter, creating all cuDNN descriptors up front (as
    /// PyTorch's cuDNN heuristics cache does on the first iteration).
    pub fn new(
        ctx: &mut CudaContext,
        cfg: ResNetConfig,
        batch: u64,
        dtype: Dtype,
        compiled: bool,
    ) -> CudaResult<Self> {
        let cudnn = ctx.cudnn_create();
        let compute = CudaStream::DEFAULT;
        ctx.cudnn_set_stream(cudnn, compute)?;
        let mut sites = Vec::new();
        let e = dtype.size_bytes();

        let mut push = |ctx: &mut CudaContext,
                        n: u64,
                        c: u64,
                        h: u64,
                        w: u64,
                        k: u64,
                        r: u64,
                        stride: u64|
         -> CudaResult<()> {
            let desc = ctx.cudnn_create_conv_descriptor(n, c, h, w, k, r, stride, dtype)?;
            let (oh, ow) = (h / stride, w / stride);
            let out_numel = n * k * oh * ow;
            sites.push(ConvSite {
                desc,
                out_numel,
                act_bytes: out_numel * e,
            });
            Ok(())
        };

        // Stem: 7x7/2 conv on 224x224 input.
        let img = cfg.image_size as u64;
        push(ctx, batch, 3, img, img, 64, 7, 2)?;
        let widths = [64u64, 128, 256, 512];
        let mut ch_in = 64u64;
        let mut res = img / 4; // after stem stride + maxpool
        for (stage, &nblocks) in cfg.blocks.iter().enumerate() {
            let w = widths[stage];
            let out = w * 4;
            for b in 0..nblocks as u64 {
                let stride = if b == 0 && stage > 0 { 2 } else { 1 };
                if b == 0 {
                    // Downsample shortcut.
                    push(ctx, batch, ch_in, res, res, out, 1, stride)?;
                }
                push(ctx, batch, ch_in, res, res, w, 1, stride)?; // 1x1 reduce
                if stride == 2 {
                    res /= 2;
                }
                push(ctx, batch, w, res, res, w, 3, 1)?; // 3x3
                push(ctx, batch, w, res, res, out, 1, 1)?; // 1x1 expand
                ch_in = out;
            }
        }
        Ok(ResNetEmitter {
            cfg,
            batch,
            dtype,
            compiled,
            cudnn,
            sites,
            compute,
        })
    }

    /// Approximate parameter elements (for optimizer/DDP sizing).
    pub fn param_elems(&self) -> u64 {
        self.cfg.num_params()
    }

    /// Bytes of stored activations for one forward pass.
    pub fn act_bytes(&self) -> u64 {
        self.sites.iter().map(|s| s.act_bytes * 2).sum()
    }

    /// One forward pass; returns the activation buffer to free after the
    /// backward pass.
    pub fn forward(&self, ctx: &mut CudaContext) -> CudaResult<maya_cuda::DevicePtr> {
        // Input batch upload.
        let img = self.cfg.image_size as u64;
        ctx.host_work(SimTime::from_us(180.0)); // dataloader + transforms
        ctx.memcpy_async(
            self.batch * 3 * img * img * self.dtype.size_bytes(),
            MemcpyKind::HostToDevice,
            self.compute,
        )?;
        let buf = ctx.malloc(self.act_bytes().max(512))?;
        for site in &self.sites {
            ctx.cudnn_convolution_forward(self.cudnn, site.desc)?;
            if self.compiled {
                ctx.launch_kernel(
                    KernelKind::FusedTriton {
                        numel: site.out_numel,
                        num_instrs: 9,
                        dtype: self.dtype,
                    },
                    self.compute,
                )?;
            } else {
                ctx.launch_kernel(
                    KernelKind::BatchNorm {
                        numel: site.out_numel,
                        channels: 64,
                        forward: true,
                    },
                    self.compute,
                )?;
                ctx.launch_kernel(
                    KernelKind::VectorizedElementwise {
                        numel: site.out_numel,
                        dtype: self.dtype,
                    },
                    self.compute,
                )?;
            }
        }
        // Max-pool after the stem is folded here; global avg pool + FC head.
        ctx.launch_kernel(
            KernelKind::Pool {
                numel: self.batch * 64 * 56 * 56,
                window: 3,
                forward: true,
            },
            self.compute,
        )?;
        ctx.launch_kernel(
            KernelKind::Reduce {
                numel: self.batch * 2048 * 49,
                dtype: self.dtype,
            },
            self.compute,
        )?;
        let blas = ctx.cublas_create();
        ctx.cublas_set_stream(blas, self.compute)?;
        ctx.cublas_gemm_ex(blas, self.batch, self.cfg.classes as u64, 2048, self.dtype)?;
        ctx.launch_kernel(
            KernelKind::CrossEntropyForward {
                tokens: self.batch,
                vocab: self.cfg.classes as u64,
            },
            self.compute,
        )?;
        Ok(buf)
    }

    /// One backward pass; frees `act_buf` at the end.
    pub fn backward(&self, ctx: &mut CudaContext, act_buf: maya_cuda::DevicePtr) -> CudaResult<()> {
        ctx.launch_kernel(
            KernelKind::CrossEntropyBackward {
                tokens: self.batch,
                vocab: self.cfg.classes as u64,
            },
            self.compute,
        )?;
        let blas = ctx.cublas_create();
        ctx.cublas_set_stream(blas, self.compute)?;
        ctx.cublas_gemm_ex(blas, self.batch, 2048, self.cfg.classes as u64, self.dtype)?;
        ctx.launch_kernel(
            KernelKind::Pool {
                numel: self.batch * 64 * 56 * 56,
                window: 3,
                forward: false,
            },
            self.compute,
        )?;
        for site in self.sites.iter().rev() {
            if self.compiled {
                ctx.launch_kernel(
                    KernelKind::FusedTriton {
                        numel: site.out_numel,
                        num_instrs: 8,
                        dtype: self.dtype,
                    },
                    self.compute,
                )?;
            } else {
                ctx.launch_kernel(
                    KernelKind::VectorizedElementwise {
                        numel: site.out_numel,
                        dtype: self.dtype,
                    },
                    self.compute,
                )?;
                ctx.launch_kernel(
                    KernelKind::BatchNorm {
                        numel: site.out_numel,
                        channels: 64,
                        forward: false,
                    },
                    self.compute,
                )?;
            }
            ctx.cudnn_convolution_backward_data(self.cudnn, site.desc)?;
            ctx.cudnn_convolution_backward_filter(self.cudnn, site.desc)?;
        }
        ctx.free(act_buf)
    }

    /// DDP gradient all-reduce + SGD/Adam update.
    pub fn optimizer_step(
        &self,
        ctx: &mut CudaContext,
        dp_comm: Option<NcclComm>,
        dp_stream: CudaStream,
    ) -> CudaResult<()> {
        let params = self.param_elems();
        if let Some(comm) = dp_comm {
            let evt = ctx.event_create();
            ctx.event_record(evt, self.compute)?;
            ctx.stream_wait_event(dp_stream, evt)?;
            ctx.nccl_all_reduce(comm, params * 4, dp_stream)?;
            let evt2 = ctx.event_create();
            ctx.event_record(evt2, dp_stream)?;
            ctx.stream_wait_event(self.compute, evt2)?;
        }
        ctx.launch_kernel(
            KernelKind::MultiTensorApply {
                numel: params,
                ops_per_elem: 4,
            },
            self.compute,
        )?;
        ctx.memcpy(8, MemcpyKind::DeviceToHost)?; // loss.item()
        ctx.device_synchronize();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_hw::GpuSpec;

    #[test]
    fn resnet152_has_all_conv_sites() {
        let mut ctx = CudaContext::new(0, GpuSpec::a40());
        let e = ResNetEmitter::new(&mut ctx, ResNetConfig::resnet152(), 32, Dtype::Fp32, false)
            .unwrap();
        // 1 stem + sum(blocks)*3 bottleneck convs + 4 downsample shortcuts.
        let expected = 1 + (3 + 8 + 36 + 3) * 3 + 4;
        assert_eq!(e.sites.len(), expected);
    }

    #[test]
    fn forward_backward_roundtrip_frees_activations() {
        let mut ctx = CudaContext::new(0, GpuSpec::a40());
        let e =
            ResNetEmitter::new(&mut ctx, ResNetConfig::resnet50(), 16, Dtype::Fp32, false).unwrap();
        let used0 = ctx.mem_used();
        let buf = e.forward(&mut ctx).unwrap();
        assert!(ctx.mem_used() > used0);
        e.backward(&mut ctx, buf).unwrap();
        assert_eq!(ctx.mem_used(), used0);
        let t = ctx.into_trace();
        let names: Vec<&str> = t.events.iter().map(|ev| ev.op.name()).collect();
        assert!(names.contains(&"cudnnConvolutionForward"));
        assert!(names.contains(&"cudnnConvolutionBackwardFilter"));
        assert!(names.contains(&"cudnnConvolutionBackwardData"));
    }

    #[test]
    fn compiled_mode_emits_triton_not_batchnorm() {
        let mut ctx = CudaContext::new(0, GpuSpec::a40());
        let e =
            ResNetEmitter::new(&mut ctx, ResNetConfig::resnet50(), 16, Dtype::Fp32, true).unwrap();
        let buf = e.forward(&mut ctx).unwrap();
        e.backward(&mut ctx, buf).unwrap();
        let t = ctx.into_trace();
        let names: Vec<&str> = t.events.iter().map(|ev| ev.op.name()).collect();
        assert!(names.contains(&"triton"));
        assert!(!names.contains(&"cudnnBatchNormalizationForwardTraining"));
    }

    #[test]
    fn optimizer_step_allreduces_once() {
        let mut ctx = CudaContext::new(0, GpuSpec::a40());
        let e =
            ResNetEmitter::new(&mut ctx, ResNetConfig::resnet50(), 16, Dtype::Fp32, false).unwrap();
        let uid = maya_cuda::NcclUniqueId::from_members(&[0, 1]);
        let comm = ctx.nccl_comm_init_rank(uid, 2, 0).unwrap();
        let dp_stream = ctx.stream_create();
        e.optimizer_step(&mut ctx, Some(comm), dp_stream).unwrap();
        let t = ctx.into_trace();
        assert_eq!(t.summary.num_collectives, 1);
        assert!(t
            .events
            .iter()
            .any(|ev| ev.op.name() == "multi_tensor_apply_kernel"));
    }
}
