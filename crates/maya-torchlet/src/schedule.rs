//! Pipeline-parallel schedules: 1F1B and interleaved 1F1B.
//!
//! The interleaved variant follows Megatron-LM's
//! `forward_backward_pipelining_with_interleaving`: model layers are
//! split into `pp * chunks` blocks assigned round-robin, microbatches
//! advance in groups of `pp`, and the warmup depth is
//! `(pp - stage - 1) * 2 + (chunks - 1) * pp`.

/// Whether a step runs a forward or backward pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// Forward pass of one microbatch through one model chunk.
    Forward,
    /// Backward pass.
    Backward,
}

/// One step of a per-rank pipeline schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PipelineStep {
    /// Microbatch index.
    pub mb: u32,
    /// Model-chunk index on this rank (0 unless interleaved).
    pub chunk: u32,
    /// Forward or backward.
    pub kind: StepKind,
}

/// Global block index of `(stage, chunk)` in the round-robin layout.
pub fn block_of(stage: u32, chunk: u32, pp: u32) -> u32 {
    chunk * pp + stage
}

/// Owner stage of a block.
pub fn owner_of(block: u32, pp: u32) -> u32 {
    block % pp
}

/// Chunk index of a block on its owner.
pub fn chunk_of(block: u32, pp: u32) -> u32 {
    block / pp
}

/// Classic non-interleaved 1F1B for one stage.
pub fn schedule_1f1b(pp: u32, stage: u32, num_mb: u32) -> Vec<PipelineStep> {
    let warmup = num_mb.min(pp - stage - 1);
    let remaining = num_mb - warmup;
    let mut steps = Vec::with_capacity(2 * num_mb as usize);
    for i in 0..warmup {
        steps.push(PipelineStep {
            mb: i,
            chunk: 0,
            kind: StepKind::Forward,
        });
    }
    for j in 0..remaining {
        steps.push(PipelineStep {
            mb: warmup + j,
            chunk: 0,
            kind: StepKind::Forward,
        });
        steps.push(PipelineStep {
            mb: j,
            chunk: 0,
            kind: StepKind::Backward,
        });
    }
    for i in remaining..num_mb {
        steps.push(PipelineStep {
            mb: i,
            chunk: 0,
            kind: StepKind::Backward,
        });
    }
    steps
}

/// Chunk id of the `k`-th virtual microbatch (Megatron's
/// `get_model_chunk_id`).
fn vmb_chunk(k: u32, pp: u32, chunks: u32, forward: bool) -> u32 {
    let in_group = k % (pp * chunks);
    let c = in_group / pp;
    if forward {
        c
    } else {
        chunks - 1 - c
    }
}

/// Actual microbatch number of the `k`-th virtual microbatch.
fn vmb_microbatch(k: u32, pp: u32, chunks: u32) -> u32 {
    (k / (pp * chunks)) * pp + k % pp
}

/// Interleaved 1F1B for one stage with `chunks` model chunks per rank.
///
/// Requires `num_mb % pp == 0` (Megatron's constraint).
pub fn schedule_interleaved(pp: u32, stage: u32, num_mb: u32, chunks: u32) -> Vec<PipelineStep> {
    debug_assert!(num_mb % pp == 0, "interleaving requires num_mb % pp == 0");
    let total = num_mb * chunks;
    let warmup = if num_mb == pp {
        total
    } else {
        ((pp - stage - 1) * 2 + (chunks - 1) * pp).min(total)
    };
    let mut steps = Vec::with_capacity(2 * total as usize);
    for k in 0..warmup {
        steps.push(PipelineStep {
            mb: vmb_microbatch(k, pp, chunks),
            chunk: vmb_chunk(k, pp, chunks, true),
            kind: StepKind::Forward,
        });
    }
    for k in 0..(total - warmup) {
        steps.push(PipelineStep {
            mb: vmb_microbatch(warmup + k, pp, chunks),
            chunk: vmb_chunk(warmup + k, pp, chunks, true),
            kind: StepKind::Forward,
        });
        steps.push(PipelineStep {
            mb: vmb_microbatch(k, pp, chunks),
            chunk: vmb_chunk(k, pp, chunks, false),
            kind: StepKind::Backward,
        });
    }
    for k in (total - warmup)..total {
        steps.push(PipelineStep {
            mb: vmb_microbatch(k, pp, chunks),
            chunk: vmb_chunk(k, pp, chunks, false),
            kind: StepKind::Backward,
        });
    }
    steps
}

/// Builds the per-stage schedule, choosing the interleaved variant when
/// `chunks > 1`.
pub fn build_schedule(pp: u32, stage: u32, num_mb: u32, chunks: u32) -> Vec<PipelineStep> {
    if pp == 1 {
        // No pipeline: plain gradient-accumulation loop.
        let mut steps = Vec::with_capacity(2 * num_mb as usize);
        for mb in 0..num_mb {
            steps.push(PipelineStep {
                mb,
                chunk: 0,
                kind: StepKind::Forward,
            });
            steps.push(PipelineStep {
                mb,
                chunk: 0,
                kind: StepKind::Backward,
            });
        }
        steps
    } else if chunks > 1 {
        schedule_interleaved(pp, stage, num_mb, chunks)
    } else {
        schedule_1f1b(pp, stage, num_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Every (mb, chunk) appears exactly once forward and once backward,
    /// with the forward first.
    fn check_schedule_invariants(steps: &[PipelineStep], num_mb: u32, chunks: u32) {
        let mut fwd_seen: HashSet<(u32, u32)> = HashSet::new();
        let mut bwd_seen: HashSet<(u32, u32)> = HashSet::new();
        for s in steps {
            match s.kind {
                StepKind::Forward => {
                    assert!(fwd_seen.insert((s.mb, s.chunk)), "dup fwd {s:?}");
                }
                StepKind::Backward => {
                    assert!(fwd_seen.contains(&(s.mb, s.chunk)), "bwd before fwd {s:?}");
                    assert!(bwd_seen.insert((s.mb, s.chunk)), "dup bwd {s:?}");
                }
            }
        }
        assert_eq!(fwd_seen.len() as u32, num_mb * chunks);
        assert_eq!(bwd_seen.len() as u32, num_mb * chunks);
    }

    #[test]
    fn one_f_one_b_invariants() {
        for pp in [2u32, 4, 8] {
            for stage in 0..pp {
                for num_mb in [pp, 2 * pp, 4 * pp] {
                    let s = schedule_1f1b(pp, stage, num_mb);
                    check_schedule_invariants(&s, num_mb, 1);
                }
            }
        }
    }

    #[test]
    fn one_f_one_b_last_stage_alternates() {
        let s = schedule_1f1b(4, 3, 8);
        // Stage pp-1 has no warmup: strict F,B,F,B...
        for (i, step) in s.iter().enumerate() {
            let expect = if i % 2 == 0 {
                StepKind::Forward
            } else {
                StepKind::Backward
            };
            assert_eq!(step.kind, expect, "step {i}");
        }
    }

    #[test]
    fn one_f_one_b_first_stage_warmup_depth() {
        let pp = 4;
        let s = schedule_1f1b(pp, 0, 8);
        let leading_fwd = s.iter().take_while(|x| x.kind == StepKind::Forward).count();
        // warmup forwards plus the first steady-state forward.
        assert_eq!(leading_fwd as u32, (pp - 1) + 1);
    }

    #[test]
    fn interleaved_invariants() {
        for pp in [2u32, 4] {
            for chunks in [2u32, 4] {
                for stage in 0..pp {
                    for mult in [1u32, 2, 4] {
                        let num_mb = mult * pp;
                        let s = schedule_interleaved(pp, stage, num_mb, chunks);
                        check_schedule_invariants(&s, num_mb, chunks);
                    }
                }
            }
        }
    }

    #[test]
    fn interleaved_in_flight_bounded() {
        let pp = 4;
        let chunks = 2;
        let num_mb = 8;
        for stage in 0..pp {
            let s = schedule_interleaved(pp, stage, num_mb, chunks);
            let mut inflight: i64 = 0;
            let mut peak: i64 = 0;
            for step in &s {
                match step.kind {
                    StepKind::Forward => inflight += 1,
                    StepKind::Backward => inflight -= 1,
                }
                peak = peak.max(inflight);
            }
            assert_eq!(inflight, 0);
            let warmup = ((pp - stage - 1) * 2 + (chunks - 1) * pp) as i64;
            assert!(
                peak <= warmup + 1,
                "stage {stage}: peak {peak} warmup {warmup}"
            );
        }
    }

    #[test]
    fn block_arithmetic() {
        let pp = 4;
        assert_eq!(block_of(2, 0, pp), 2);
        assert_eq!(block_of(2, 1, pp), 6);
        assert_eq!(owner_of(6, pp), 2);
        assert_eq!(chunk_of(6, pp), 1);
        for b in 0..12 {
            assert_eq!(block_of(owner_of(b, pp), chunk_of(b, pp), pp), b);
        }
    }

    #[test]
    fn no_pipeline_schedule_is_fb_loop() {
        let s = build_schedule(1, 0, 4, 1);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0].kind, StepKind::Forward);
        assert_eq!(s[1].kind, StepKind::Backward);
        assert_eq!(s[0].mb, s[1].mb);
    }

    /// The per-link message sequences produced by adjacent stages must
    /// match: sender's n-th send on a link pairs with receiver's n-th
    /// recv. This is the NCCL-ordering property the executor's rendezvous
    /// relies on.
    #[test]
    fn adjacent_stage_message_sequences_match() {
        for (pp, chunks, mult) in [
            (2u32, 1u32, 2u32),
            (4, 1, 2),
            (4, 1, 1),
            (2, 2, 1),
            (2, 2, 2),
            (4, 2, 2),
            (4, 4, 1),
        ] {
            let num_mb = mult * pp;
            let total_blocks = pp * chunks;
            let sched: Vec<Vec<PipelineStep>> = (0..pp)
                .map(|s| build_schedule(pp, s, num_mb, chunks))
                .collect();

            // For each directed link, collect (mb, boundary-block) message
            // lists from the sender's and receiver's perspectives.
            use std::collections::HashMap;
            let mut sends: HashMap<(u32, u32, bool), Vec<(u32, u32)>> = HashMap::new();
            let mut recvs: HashMap<(u32, u32, bool), Vec<(u32, u32)>> = HashMap::new();
            for stage in 0..pp {
                for step in &sched[stage as usize] {
                    let block = block_of(stage, step.chunk, pp);
                    match step.kind {
                        StepKind::Forward => {
                            if block > 0 {
                                let from = owner_of(block - 1, pp);
                                recvs
                                    .entry((from, stage, true))
                                    .or_default()
                                    .push((step.mb, block - 1));
                            }
                            if block + 1 < total_blocks {
                                let to = owner_of(block + 1, pp);
                                sends
                                    .entry((stage, to, true))
                                    .or_default()
                                    .push((step.mb, block));
                            }
                        }
                        StepKind::Backward => {
                            if block + 1 < total_blocks {
                                let from = owner_of(block + 1, pp);
                                recvs
                                    .entry((from, stage, false))
                                    .or_default()
                                    .push((step.mb, block + 1));
                            }
                            if block > 0 {
                                let to = owner_of(block - 1, pp);
                                sends
                                    .entry((stage, to, false))
                                    .or_default()
                                    .push((step.mb, block));
                            }
                        }
                    }
                }
            }
            for (link, s) in &sends {
                let r = recvs
                    .get(link)
                    .unwrap_or_else(|| panic!("missing recvs for {link:?}"));
                // Sender tags messages with the produced block, receiver
                // with the consumed block: fwd consumed = produced; bwd
                // consumed block B means producer ran bwd of B.
                assert_eq!(
                    s, r,
                    "pp={pp} chunks={chunks} mult={mult} link {link:?} order mismatch"
                );
            }
        }
    }
}
