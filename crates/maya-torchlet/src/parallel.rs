//! Parallelism configuration (the paper's Table 5 knob space) and
//! Megatron-style rank topology.

use std::fmt;

/// The training-recipe knobs Maya-Search explores (Table 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ParallelConfig {
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Pipeline-parallel degree.
    pub pp: u32,
    /// Microbatch multiplier: `num_microbatches = multiplier * pp`.
    pub microbatch_multiplier: u32,
    /// Number of virtual pipeline stages per device (interleaved 1F1B).
    pub virtual_stages: u32,
    /// Full activation recomputation.
    pub activation_recompute: bool,
    /// Megatron sequence parallelism.
    pub sequence_parallel: bool,
    /// Distributed optimizer (ZeRO-1 style sharding of optimizer state).
    pub distributed_optimizer: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            tp: 1,
            pp: 1,
            microbatch_multiplier: 1,
            virtual_stages: 1,
            activation_recompute: false,
            sequence_parallel: false,
            distributed_optimizer: false,
        }
    }
}

impl ParallelConfig {
    /// Number of microbatches per iteration.
    pub fn num_microbatches(&self) -> u32 {
        self.microbatch_multiplier * self.pp
    }

    /// Data-parallel degree for a given world size.
    pub fn dp(&self, world: u32) -> u32 {
        world / (self.tp * self.pp)
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp{} pp{} mb×{} vs{}{}{}{}",
            self.tp,
            self.pp,
            self.microbatch_multiplier,
            self.virtual_stages,
            if self.activation_recompute {
                " +recomp"
            } else {
                ""
            },
            if self.sequence_parallel {
                " +seqpar"
            } else {
                ""
            },
            if self.distributed_optimizer {
                " +distopt"
            } else {
                ""
            },
        )
    }
}

/// Reasons a configuration cannot run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// `tp * pp` does not divide the world size.
    WorldNotDivisible {
        /// World size.
        world: u32,
        /// tp*pp product.
        model_parallel: u32,
    },
    /// Global batch is not divisible by `dp * num_microbatches`.
    BatchNotDivisible {
        /// Global batch size.
        global_batch: u32,
        /// Required divisor.
        divisor: u32,
    },
    /// Layer count is not divisible by `pp * virtual_stages`.
    LayersNotDivisible {
        /// Layer count.
        layers: u32,
        /// Required divisor.
        divisor: u32,
    },
    /// TP degree exceeds attention heads or does not divide them.
    HeadsNotDivisible {
        /// Attention heads.
        heads: u32,
        /// Tensor-parallel degree.
        tp: u32,
    },
    /// Sequence parallelism requires tensor parallelism.
    SeqParallelNeedsTp,
    /// Interleaving requires pipeline parallelism.
    InterleaveNeedsPp,
    /// TP groups should not span nodes in this topology.
    TpSpansNodes {
        /// Tensor-parallel degree.
        tp: u32,
        /// GPUs per node.
        gpus_per_node: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::WorldNotDivisible {
                world,
                model_parallel,
            } => {
                write!(
                    f,
                    "world size {world} not divisible by tp*pp={model_parallel}"
                )
            }
            ConfigError::BatchNotDivisible {
                global_batch,
                divisor,
            } => {
                write!(
                    f,
                    "global batch {global_batch} not divisible by dp*microbatches={divisor}"
                )
            }
            ConfigError::LayersNotDivisible { layers, divisor } => {
                write!(
                    f,
                    "{layers} layers not divisible by pp*virtual_stages={divisor}"
                )
            }
            ConfigError::HeadsNotDivisible { heads, tp } => {
                write!(f, "{heads} attention heads not divisible by tp={tp}")
            }
            ConfigError::SeqParallelNeedsTp => write!(f, "sequence parallelism requires tp > 1"),
            ConfigError::InterleaveNeedsPp => {
                write!(f, "virtual stages require pp > 1")
            }
            ConfigError::TpSpansNodes { tp, gpus_per_node } => {
                write!(f, "tp={tp} spans nodes of {gpus_per_node} GPUs")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Megatron rank topology: tp varies fastest, then dp, then pp.
///
/// Global rank `r` decomposes as
/// `r = pp_rank * (tp * dp) + dp_rank * tp + tp_rank`.
#[derive(Clone, Copy, Debug)]
pub struct RankTopology {
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Data-parallel degree.
    pub dp: u32,
    /// Pipeline-parallel degree.
    pub pp: u32,
}

impl RankTopology {
    /// Builds the topology for a world size and config.
    pub fn new(config: &ParallelConfig, world: u32) -> Self {
        RankTopology {
            tp: config.tp,
            dp: config.dp(world),
            pp: config.pp,
        }
    }

    /// World size.
    pub fn world(&self) -> u32 {
        self.tp * self.dp * self.pp
    }

    /// Tensor-parallel rank of a global rank.
    pub fn tp_rank(&self, rank: u32) -> u32 {
        rank % self.tp
    }

    /// Data-parallel rank of a global rank.
    pub fn dp_rank(&self, rank: u32) -> u32 {
        (rank / self.tp) % self.dp
    }

    /// Pipeline-stage of a global rank.
    pub fn pp_rank(&self, rank: u32) -> u32 {
        rank / (self.tp * self.dp)
    }

    /// Reassembles a global rank from coordinates.
    pub fn global_rank(&self, tp_rank: u32, dp_rank: u32, pp_rank: u32) -> u32 {
        pp_rank * (self.tp * self.dp) + dp_rank * self.tp + tp_rank
    }

    /// Members of the tensor-parallel group containing `rank`.
    pub fn tp_group(&self, rank: u32) -> Vec<u32> {
        let (d, p) = (self.dp_rank(rank), self.pp_rank(rank));
        (0..self.tp).map(|t| self.global_rank(t, d, p)).collect()
    }

    /// Members of the data-parallel group containing `rank`.
    pub fn dp_group(&self, rank: u32) -> Vec<u32> {
        let (t, p) = (self.tp_rank(rank), self.pp_rank(rank));
        (0..self.dp).map(|d| self.global_rank(t, d, p)).collect()
    }

    /// Members of the pipeline group containing `rank` (stage order).
    pub fn pp_group(&self, rank: u32) -> Vec<u32> {
        let (t, d) = (self.tp_rank(rank), self.dp_rank(rank));
        (0..self.pp).map(|p| self.global_rank(t, d, p)).collect()
    }

    /// The embedding group (first and last pipeline stage) for `rank`.
    pub fn embedding_group(&self, rank: u32) -> Vec<u32> {
        let (t, d) = (self.tp_rank(rank), self.dp_rank(rank));
        if self.pp == 1 {
            vec![self.global_rank(t, d, 0)]
        } else {
            vec![
                self.global_rank(t, d, 0),
                self.global_rank(t, d, self.pp - 1),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn megatron_rank_order() {
        // 2-way tp, 2-way dp, 2-way pp over 8 ranks.
        let t = RankTopology {
            tp: 2,
            dp: 2,
            pp: 2,
        };
        assert_eq!(t.world(), 8);
        assert_eq!(t.tp_rank(5), 1);
        assert_eq!(t.dp_rank(5), 0);
        assert_eq!(t.pp_rank(5), 1);
        assert_eq!(t.global_rank(1, 0, 1), 5);
        assert_eq!(t.tp_group(0), vec![0, 1]);
        assert_eq!(t.dp_group(0), vec![0, 2]);
        assert_eq!(t.pp_group(0), vec![0, 4]);
        assert_eq!(t.pp_group(3), vec![3, 7]);
    }

    #[test]
    fn groups_partition_the_world() {
        let t = RankTopology {
            tp: 4,
            dp: 2,
            pp: 2,
        };
        let mut seen = [false; 16];
        for leader in 0..16 {
            for r in t.tp_group(leader) {
                if t.tp_rank(leader) == 0 {
                    seen[r as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b), "tp groups cover all ranks");
        // Every rank belongs to exactly one tp group of size 4.
        for r in 0..16 {
            assert_eq!(t.tp_group(r).len(), 4);
            assert!(t.tp_group(r).contains(&r));
        }
    }

    #[test]
    fn embedding_group_endpoints() {
        let t = RankTopology {
            tp: 2,
            dp: 1,
            pp: 4,
        };
        assert_eq!(t.embedding_group(0), vec![0, 6]);
        assert_eq!(t.embedding_group(3), vec![1, 7]);
        let single = RankTopology {
            tp: 1,
            dp: 2,
            pp: 1,
        };
        assert_eq!(single.embedding_group(1), vec![1]);
    }

    #[test]
    fn config_accessors() {
        let c = ParallelConfig {
            tp: 2,
            pp: 4,
            microbatch_multiplier: 2,
            ..Default::default()
        };
        assert_eq!(c.num_microbatches(), 8);
        assert_eq!(c.dp(32), 4);
        let s = c.to_string();
        assert!(s.contains("tp2") && s.contains("pp4"), "{s}");
    }

    #[test]
    fn roundtrip_rank_decomposition() {
        let t = RankTopology {
            tp: 2,
            dp: 4,
            pp: 2,
        };
        for r in 0..t.world() {
            let (tp, dp, pp) = (t.tp_rank(r), t.dp_rank(r), t.pp_rank(r));
            assert_eq!(t.global_rank(tp, dp, pp), r);
        }
    }
}
