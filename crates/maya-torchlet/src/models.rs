//! Model zoo: the architectures evaluated in the paper.
//!
//! GPT-3 variants (2.7B / 18.4B / 145.6B plus 1.3B for Table 3), Llama-2
//! 7B, and the Table 4 generality set (ResNet, BERT, ViT, T5, ...). The
//! transformer configs carry exact layer/hidden/head counts so kernel
//! shapes match what Megatron-LM would launch.

use maya_hw::ModelFlopsSpec;

/// A decoder/encoder transformer configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TransformerConfig {
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden size.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// Feed-forward inner size (4h for GPT, 8/3·h for SwiGLU models).
    pub ffn: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// Maximum (and emitted) sequence length.
    pub seq_len: u32,
    /// Whether attention is causal (decoder) — affects softmax masking.
    pub causal: bool,
    /// Whether the MLP is gated (SwiGLU: three matmuls instead of two).
    pub gated_mlp: bool,
}

impl TransformerConfig {
    /// Approximate parameter count.
    pub fn num_params(&self) -> u64 {
        let h = self.hidden as u64;
        let l = self.layers as u64;
        let v = self.vocab as u64;
        let ffn = self.ffn as u64;
        let attn = 4 * h * h;
        let mlp = if self.gated_mlp {
            3 * h * ffn
        } else {
            2 * h * ffn
        };
        let norms = 4 * h;
        l * (attn + mlp + norms) + v * h + self.seq_len as u64 * h
    }

    /// FLOPs-accounting spec for a given global batch.
    pub fn flops_spec(&self, global_batch: u32, activation_recompute: bool) -> ModelFlopsSpec {
        ModelFlopsSpec {
            layers: self.layers as u64,
            hidden: self.hidden as u64,
            vocab: self.vocab as u64,
            seq_len: self.seq_len as u64,
            global_batch: global_batch as u64,
            activation_recompute,
        }
    }
}

/// A ResNet-style vision configuration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ResNetConfig {
    /// Bottleneck blocks per stage (ResNet-152: `[3, 8, 36, 3]`).
    pub blocks: [u32; 4],
    /// Input image resolution (square).
    pub image_size: u32,
    /// Number of classes.
    pub classes: u32,
}

impl ResNetConfig {
    /// ResNet-152.
    pub fn resnet152() -> Self {
        ResNetConfig {
            blocks: [3, 8, 36, 3],
            image_size: 224,
            classes: 1000,
        }
    }

    /// ResNet-50.
    pub fn resnet50() -> Self {
        ResNetConfig {
            blocks: [3, 4, 6, 3],
            image_size: 224,
            classes: 1000,
        }
    }

    /// Approximate parameter count (ResNet-152 ≈ 60M).
    pub fn num_params(&self) -> u64 {
        let mut p: u64 = 64 * 3 * 49 + 64; // stem
        let widths = [64u64, 128, 256, 512];
        for (i, &n) in self.blocks.iter().enumerate() {
            let w = widths[i];
            let inner = w;
            let out = 4 * w;
            // Bottleneck: 1x1 reduce, 3x3, 1x1 expand.
            let per = inner * out + inner * inner * 9 + inner * out + 3 * out;
            p += n as u64 * per;
        }
        p + 2048 * self.classes as u64
    }
}

/// The architectures supported by the torchlet model zoo.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ModelSpec {
    /// GPT-style decoder-only transformer.
    Gpt(TransformerConfig),
    /// Llama-style decoder (SwiGLU, untied embeddings).
    Llama(TransformerConfig),
    /// BERT-style encoder.
    Bert(TransformerConfig),
    /// Vision transformer (encoder over patches).
    ViT(TransformerConfig),
    /// T5-style encoder-decoder (emitted as two stacks).
    T5(TransformerConfig),
    /// ResNet-style CNN.
    ResNet(ResNetConfig),
}

impl ModelSpec {
    /// GPT-3 125M (smoke-test scale).
    pub fn gpt3_125m() -> Self {
        ModelSpec::Gpt(TransformerConfig {
            layers: 12,
            hidden: 768,
            heads: 12,
            ffn: 3072,
            vocab: 51200,
            seq_len: 1024,
            causal: true,
            gated_mlp: false,
        })
    }

    /// GPT-3 1.3B (Table 3).
    pub fn gpt3_1_3b() -> Self {
        ModelSpec::Gpt(TransformerConfig {
            layers: 24,
            hidden: 2048,
            heads: 16,
            ffn: 8192,
            vocab: 51200,
            seq_len: 2048,
            causal: true,
            gated_mlp: false,
        })
    }

    /// GPT-3 2.7B (§7.1).
    pub fn gpt3_2_7b() -> Self {
        ModelSpec::Gpt(TransformerConfig {
            layers: 32,
            hidden: 2560,
            heads: 32,
            ffn: 10240,
            vocab: 51200,
            seq_len: 2048,
            causal: true,
            gated_mlp: false,
        })
    }

    /// GPT-3 18.4B (§7.1).
    pub fn gpt3_18_4b() -> Self {
        ModelSpec::Gpt(TransformerConfig {
            layers: 40,
            hidden: 6144,
            heads: 48,
            ffn: 24576,
            vocab: 51200,
            seq_len: 2048,
            causal: true,
            gated_mlp: false,
        })
    }

    /// GPT-3 145.6B (§7.1, hyperscale experiments).
    pub fn gpt3_145_6b() -> Self {
        ModelSpec::Gpt(TransformerConfig {
            layers: 80,
            hidden: 12288,
            heads: 96,
            ffn: 49152,
            vocab: 51200,
            seq_len: 2048,
            causal: true,
            gated_mlp: false,
        })
    }

    /// Llama-2 7B (Table 3's 32-GPU rows).
    pub fn llama2_7b() -> Self {
        ModelSpec::Llama(TransformerConfig {
            layers: 32,
            hidden: 4096,
            heads: 32,
            ffn: 11008,
            vocab: 32000,
            seq_len: 4096,
            causal: true,
            gated_mlp: true,
        })
    }

    /// BERT-large (Table 4).
    pub fn bert_large() -> Self {
        ModelSpec::Bert(TransformerConfig {
            layers: 24,
            hidden: 1024,
            heads: 16,
            ffn: 4096,
            vocab: 30522,
            seq_len: 512,
            causal: false,
            gated_mlp: false,
        })
    }

    /// ViT-large (Table 4).
    pub fn vit_large() -> Self {
        ModelSpec::ViT(TransformerConfig {
            layers: 24,
            hidden: 1024,
            heads: 16,
            ffn: 4096,
            vocab: 1000,
            seq_len: 577,
            causal: false,
            gated_mlp: false,
        })
    }

    /// T5-large (Table 4); layer count covers encoder+decoder halves.
    pub fn t5_large() -> Self {
        ModelSpec::T5(TransformerConfig {
            layers: 48,
            hidden: 1024,
            heads: 16,
            ffn: 4096,
            vocab: 32128,
            seq_len: 512,
            causal: false,
            gated_mlp: false,
        })
    }

    /// ResNet-152 (Figure 10).
    pub fn resnet152() -> Self {
        ModelSpec::ResNet(ResNetConfig::resnet152())
    }

    /// The transformer config, if this is a transformer.
    pub fn transformer(&self) -> Option<&TransformerConfig> {
        match self {
            ModelSpec::Gpt(c)
            | ModelSpec::Llama(c)
            | ModelSpec::Bert(c)
            | ModelSpec::ViT(c)
            | ModelSpec::T5(c) => Some(c),
            ModelSpec::ResNet(_) => None,
        }
    }

    /// Approximate parameter count.
    pub fn num_params(&self) -> u64 {
        match self {
            ModelSpec::ResNet(c) => c.num_params(),
            other => other.transformer().map(|t| t.num_params()).unwrap_or(0),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            ModelSpec::Gpt(c) => format!("GPT3-{:.1}B", c.num_params() as f64 / 1e9),
            ModelSpec::Llama(c) => format!("Llama-{:.1}B", c.num_params() as f64 / 1e9),
            ModelSpec::Bert(_) => "BERT-large".to_string(),
            ModelSpec::ViT(_) => "ViT-large".to_string(),
            ModelSpec::T5(_) => "T5-large".to_string(),
            ModelSpec::ResNet(c) => format!("ResNet{}", 2 + c.blocks.iter().sum::<u32>() * 3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_model_names() {
        let check = |m: ModelSpec, lo: f64, hi: f64| {
            let p = m.num_params() as f64 / 1e9;
            assert!(p > lo && p < hi, "{}: {p}B not in ({lo}, {hi})", m.name());
        };
        check(ModelSpec::gpt3_1_3b(), 1.2, 1.5);
        check(ModelSpec::gpt3_2_7b(), 2.5, 2.9);
        check(ModelSpec::gpt3_18_4b(), 17.5, 19.5);
        check(ModelSpec::gpt3_145_6b(), 140.0, 152.0);
        check(ModelSpec::llama2_7b(), 6.2, 7.5);
    }

    #[test]
    fn resnet152_params_about_60m() {
        let p = ResNetConfig::resnet152().num_params() as f64 / 1e6;
        assert!(p > 45.0 && p < 75.0, "{p}M");
    }

    #[test]
    fn resnet_naming() {
        assert_eq!(ModelSpec::resnet152().name(), "ResNet152");
        assert_eq!(
            ModelSpec::ResNet(ResNetConfig::resnet50()).name(),
            "ResNet50"
        );
    }

    #[test]
    fn flops_spec_carries_recompute() {
        let t = match ModelSpec::gpt3_2_7b() {
            ModelSpec::Gpt(c) => c,
            _ => unreachable!(),
        };
        let spec = t.flops_spec(256, true);
        assert!(spec.activation_recompute);
        assert_eq!(spec.global_batch, 256);
        assert_eq!(spec.layers, 32);
    }

    #[test]
    fn transformer_accessor() {
        assert!(ModelSpec::gpt3_125m().transformer().is_some());
        assert!(ModelSpec::resnet152().transformer().is_none());
    }
}
