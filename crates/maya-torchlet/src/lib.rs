//! `torchlet`: a miniature deep-learning training framework that programs
//! against the virtual CUDA device in `maya-cuda`.
//!
//! In the paper, Maya traces *unmodified* PyTorch / Megatron-LM /
//! DeepSpeed scripts through an `LD_PRELOAD` shim. This crate is the
//! substitute training stack for that role (DESIGN.md §2): a model zoo
//! (GPT-3 family, Llama-2, BERT/ViT/T5, ResNet), a Megatron-style 3D
//! parallel engine (TP, PP with 1F1B and interleaving, sequence
//! parallelism, distributed optimizer, activation recomputation, gradient
//! accumulation), and data-parallel flavors (DDP, DeepSpeed ZeRO 1-3 with
//! activation offload, FSDP) — all of which express the workload purely
//! as device API calls, exactly the surface the emulator intercepts.

pub mod engine;
pub mod frameworks;
pub mod layers;
pub mod memory;
pub mod models;
pub mod parallel;
pub mod schedule;
pub mod serdes;
pub mod vision;
pub mod workload;

pub use models::{ModelSpec, ResNetConfig, TransformerConfig};
pub use parallel::{ConfigError, ParallelConfig, RankTopology};
pub use workload::{FrameworkFlavor, TrainingJob};
