//! Property-based tests for pipeline schedules and worker emission.

use maya_torchlet::schedule::{build_schedule, StepKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any (pp, stage, multiplier, chunks) schedule runs every
    /// (microbatch, chunk) exactly once forward and once backward, with
    /// the forward first and zero net in-flight microbatches at the end.
    #[test]
    fn schedule_invariants(
        pp_exp in 0u32..4,
        mult in 1u32..5,
        chunks in 1u32..5,
    ) {
        let pp = 1u32 << pp_exp; // 1, 2, 4, 8
        let chunks = if pp == 1 { 1 } else { chunks };
        let num_mb = mult * pp;
        for stage in 0..pp {
            let steps = build_schedule(pp, stage, num_mb, chunks);
            prop_assert_eq!(steps.len() as u32, 2 * num_mb * chunks);
            let mut fwd = std::collections::HashSet::new();
            let mut bwd = std::collections::HashSet::new();
            let mut inflight: i64 = 0;
            for s in &steps {
                match s.kind {
                    StepKind::Forward => {
                        prop_assert!(fwd.insert((s.mb, s.chunk)));
                        inflight += 1;
                    }
                    StepKind::Backward => {
                        prop_assert!(fwd.contains(&(s.mb, s.chunk)));
                        prop_assert!(bwd.insert((s.mb, s.chunk)));
                        inflight -= 1;
                    }
                }
                prop_assert!(inflight >= 0);
            }
            prop_assert_eq!(inflight, 0);
            prop_assert_eq!(fwd.len(), (num_mb * chunks) as usize);
            prop_assert_eq!(bwd.len(), (num_mb * chunks) as usize);
        }
    }

    /// Rank topology decomposition round-trips for arbitrary shapes.
    #[test]
    fn topology_roundtrip(tp_exp in 0u32..4, dp_exp in 0u32..4, pp_exp in 0u32..3) {
        let t = maya_torchlet::RankTopology {
            tp: 1 << tp_exp,
            dp: 1 << dp_exp,
            pp: 1 << pp_exp,
        };
        for r in 0..t.world() {
            prop_assert_eq!(t.global_rank(t.tp_rank(r), t.dp_rank(r), t.pp_rank(r)), r);
            prop_assert!(t.tp_group(r).contains(&r));
            prop_assert!(t.dp_group(r).contains(&r));
            prop_assert!(t.pp_group(r).contains(&r));
        }
    }

    /// Activation memory is monotone in microbatch size and never larger
    /// with sequence parallelism or recomputation enabled.
    #[test]
    fn activation_memory_monotone(micro in 1u32..32, tp_exp in 0u32..4) {
        let cfg = *maya_torchlet::ModelSpec::gpt3_2_7b().transformer().unwrap();
        let tp = 1u32 << tp_exp;
        let base = maya_torchlet::ParallelConfig { tp, ..Default::default() };
        let a = maya_torchlet::memory::act_bytes_per_layer(&cfg, micro, &base);
        let b = maya_torchlet::memory::act_bytes_per_layer(&cfg, micro + 1, &base);
        prop_assert!(b >= a);
        if tp > 1 {
            let sp = maya_torchlet::ParallelConfig { tp, sequence_parallel: true, ..base };
            prop_assert!(maya_torchlet::memory::act_bytes_per_layer(&cfg, micro, &sp) <= a);
        }
        let rc = maya_torchlet::ParallelConfig { tp, activation_recompute: true, ..base };
        prop_assert!(maya_torchlet::memory::act_bytes_per_layer(&cfg, micro, &rc) <= a);
    }
}
