//! Property tests: encode→decode == identity for every wire frame
//! type, including error and telemetry payloads.
//!
//! Values are generated from a seeded splitmix64 stream (the vendored
//! proptest supplies the seeds), so every case is reproducible. Types
//! without `PartialEq` are compared through their canonical encoding:
//! decode must re-encode to the same byte string, which is exactly the
//! property the wire needs (a relay cannot corrupt a frame).

use proptest::prelude::*;

use maya::{PredictOutcome, Prediction, StageTimings};
use maya_hw::Measurement;
use maya_search::{
    AlgorithmKind, ConfigSpace, Provenance, SearchResult, SearchStats, TrialOutcome, TrialRecord,
};
use maya_serve::{JobOptions, MeasureOutcome, Priority, Request, SearchProgress, Telemetry};
use maya_sim::SimReport;
use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
use maya_trace::{Dtype, KernelKind, SimTime};
use maya_wire::{
    frame, RemoteError, RemoteErrorKind, WireJobOutcome, WirePayload, WireResponse,
    DEFAULT_MAX_FRAME_LEN,
};
use std::time::Duration;

/// Deterministic value stream for structured generation.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // splitmix64
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn u32(&mut self, bound: u32) -> u32 {
        (self.next() % u64::from(bound.max(1))) as u32
    }

    fn pick<T: Copy>(&mut self, choices: &[T]) -> T {
        choices[(self.next() as usize) % choices.len()]
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.next()) // any bit pattern, NaN included
    }

    fn duration(&mut self) -> Duration {
        Duration::new(self.next() >> 20, self.u32(1_000_000_000))
    }

    fn string(&mut self) -> String {
        let len = (self.next() % 24) as usize;
        (0..len)
            .map(|_| {
                // Mix printable ASCII with the characters the compact
                // format must escape.
                self.pick(&[
                    'a', 'Z', '0', '%', ' ', '\t', '\n', '\r', '/', 'ü', '→', ';', 'e',
                ])
            })
            .collect()
    }

    fn sim_time(&mut self) -> SimTime {
        SimTime(self.next())
    }

    fn dtype(&mut self) -> Dtype {
        self.pick(&[
            Dtype::Fp32,
            Dtype::Fp16,
            Dtype::Bf16,
            Dtype::Tf32,
            Dtype::Int64,
            Dtype::Int32,
            Dtype::Int8,
        ])
    }

    fn job(&mut self) -> TrainingJob {
        let model = match self.next() % 7 {
            0 => ModelSpec::gpt3_125m(),
            1 => ModelSpec::gpt3_2_7b(),
            2 => ModelSpec::llama2_7b(),
            3 => ModelSpec::bert_large(),
            4 => ModelSpec::vit_large(),
            5 => ModelSpec::t5_large(),
            _ => ModelSpec::resnet152(),
        };
        let flavor = match self.next() % 4 {
            0 => FrameworkFlavor::Megatron,
            1 => FrameworkFlavor::DeepSpeedZero {
                stage: 1 + self.u32(3) as u8,
                activation_offload: self.bool(),
            },
            2 => FrameworkFlavor::Fsdp,
            _ => FrameworkFlavor::Ddp,
        };
        TrainingJob {
            model,
            parallel: self.parallel(),
            flavor,
            compile: self.bool(),
            global_batch: 1 + self.u32(4096),
            world: 1 + self.u32(512),
            gpus_per_node: 1 + self.u32(8),
            precision: self.dtype(),
            iterations: 1 + self.u32(4),
        }
    }

    fn parallel(&mut self) -> ParallelConfig {
        ParallelConfig {
            tp: 1 << self.u32(4),
            pp: 1 << self.u32(4),
            microbatch_multiplier: 1 + self.u32(8),
            virtual_stages: 1 + self.u32(4),
            activation_recompute: self.bool(),
            sequence_parallel: self.bool(),
            distributed_optimizer: self.bool(),
        }
    }

    fn trial_outcome(&mut self) -> TrialOutcome {
        match self.next() % 3 {
            0 => TrialOutcome::Invalid,
            1 => TrialOutcome::Oom,
            _ => TrialOutcome::Completed {
                iteration_time: self.sim_time(),
                mfu: self.f64(),
                cost: self.f64(),
            },
        }
    }

    fn sim_report(&mut self) -> SimReport {
        let ranks = (self.next() % 5) as usize;
        SimReport {
            total_time: self.sim_time(),
            rank_end_times: (0..ranks).map(|_| self.sim_time()).collect(),
            comm_time: self.sim_time(),
            compute_time: self.sim_time(),
            host_time: self.sim_time(),
            peak_mem_bytes: self.next(),
            events_processed: self.next(),
        }
    }

    fn prediction(&mut self) -> Prediction {
        let outcome = if self.bool() {
            PredictOutcome::Completed(self.sim_report())
        } else {
            PredictOutcome::OutOfMemory {
                rank: self.u32(1 << 16),
                peak_attempted: self.next(),
            }
        };
        Prediction {
            outcome,
            timings: StageTimings {
                emulation: self.duration(),
                collation: self.duration(),
                estimation: self.duration(),
                simulation: self.duration(),
            },
            workers_emulated: (self.next() % 4096) as usize,
            workers_simulated: (self.next() % 4096) as usize,
            trace_events: (self.next() % (1 << 32)) as usize,
        }
    }

    fn remote_error(&mut self) -> RemoteError {
        RemoteError {
            kind: self.pick(&RemoteErrorKind::all()),
            message: self.string(),
        }
    }

    /// A span tree up to `depth` levels deep (0 = leaf), with names
    /// exercising the compact format's escaping.
    fn span_node(&mut self, depth: u32) -> maya_serve::SpanNode {
        let children = if depth == 0 {
            Vec::new()
        } else {
            (0..(self.next() % 3))
                .map(|_| self.span_node(depth - 1))
                .collect()
        };
        maya_serve::SpanNode {
            name: self.string(),
            start: self.duration(),
            duration: self.duration(),
            children,
        }
    }

    fn telemetry(&mut self) -> Telemetry {
        let spans = if self.bool() {
            vec![self.span_node(2)]
        } else {
            Vec::new()
        };
        Telemetry {
            queue_wait: self.duration(),
            service_time: self.duration(),
            worker: (self.next() % 64) as usize,
            cache: maya_estimator::CacheStats {
                hits: self.next(),
                misses: self.next(),
                evictions: self.next(),
            },
            cache_delta: maya_estimator::CacheStats {
                hits: self.next(),
                misses: self.next(),
                evictions: self.next(),
            },
            stages: StageTimings {
                emulation: self.duration(),
                collation: self.duration(),
                estimation: self.duration(),
                simulation: self.duration(),
            },
            spans,
        }
    }

    fn search_result(&mut self) -> SearchResult {
        let trials = (self.next() % 6) as usize;
        SearchResult {
            best: if self.bool() {
                Some((self.parallel(), self.trial_outcome()))
            } else {
                None
            },
            trials: (0..trials)
                .map(|_| TrialRecord {
                    config: self.parallel(),
                    outcome: self.trial_outcome(),
                    provenance: self.pick(&[
                        Provenance::Executed,
                        Provenance::Cached,
                        Provenance::Skipped,
                    ]),
                })
                .collect(),
            stats: SearchStats {
                executed: (self.next() % 1000) as usize,
                cached: (self.next() % 1000) as usize,
                skipped: (self.next() % 1000) as usize,
                invalid: (self.next() % 1000) as usize,
            },
            wall: self.duration(),
            convergence: (0..(self.next() % 8)).map(|_| self.f64()).collect(),
        }
    }

    fn measurement(&mut self) -> Measurement {
        let samples = (self.next() % 4) as usize;
        Measurement {
            iteration_time: self.sim_time(),
            rank_end_times: (0..(self.next() % 4)).map(|_| self.sim_time()).collect(),
            comm_time: self.sim_time(),
            compute_time: self.sim_time(),
            peak_mem_bytes: self.next(),
            kernel_samples: (0..samples)
                .map(|_| {
                    (
                        KernelKind::Gemm {
                            m: self.next() % (1 << 16),
                            n: self.next() % (1 << 16),
                            k: self.next() % (1 << 16),
                            dtype: self.dtype(),
                        },
                        self.sim_time(),
                    )
                })
                .collect(),
        }
    }

    fn job_options(&mut self) -> JobOptions {
        let mut opts = JobOptions::new().with_priority(self.pick(&Priority::all()));
        if self.bool() {
            opts = opts.with_deadline(self.duration());
        }
        if self.bool() {
            opts = opts.with_tenant(self.string());
        }
        opts
    }

    fn request(&mut self) -> Request {
        match self.next() % 3 {
            0 => Request::Predict {
                target: self.string(),
                jobs: (0..(self.next() % 4)).map(|_| self.job()).collect(),
            },
            1 => Request::Search {
                target: self.string(),
                template: self.job(),
                space: ConfigSpace {
                    tp: vec![1, self.u32(16).max(1)],
                    pp: vec![1 + self.u32(8)],
                    microbatch_multiplier: vec![1, 2, self.u32(8).max(1)],
                    virtual_stages: vec![1],
                    activation_recompute: vec![self.bool()],
                    sequence_parallel: vec![false, true],
                    distributed_optimizer: vec![self.bool()],
                },
                algorithm: self.pick(&AlgorithmKind::all()),
                budget: (self.next() % 10_000) as usize,
                seed: self.next(),
            },
            _ => Request::Measure {
                target: self.string(),
                job: self.job(),
            },
        }
    }

    fn trial_record(&mut self) -> TrialRecord {
        TrialRecord {
            config: self.parallel(),
            outcome: self.trial_outcome(),
            provenance: self.pick(&[
                Provenance::Executed,
                Provenance::Cached,
                Provenance::Skipped,
            ]),
        }
    }

    fn search_progress(&mut self) -> SearchProgress {
        let trials = (self.next() % 5) as usize;
        SearchProgress {
            trials: (0..trials).map(|_| self.trial_record()).collect(),
            committed: (self.next() % 10_000) as usize,
            best: if self.bool() {
                Some((self.parallel(), self.trial_outcome()))
            } else {
                None
            },
            cache_delta: maya_estimator::CacheStats {
                hits: self.next(),
                misses: self.next(),
                evictions: self.next(),
            },
        }
    }

    fn job_outcome(&mut self) -> WireJobOutcome {
        match self.next() % 3 {
            0 => WireJobOutcome::Done(self.wire_response()),
            1 => WireJobOutcome::Cancelled(if self.bool() {
                Some(self.wire_response())
            } else {
                None
            }),
            _ => WireJobOutcome::Expired(if self.bool() {
                Some(self.wire_response())
            } else {
                None
            }),
        }
    }

    fn wire_response(&mut self) -> WireResponse {
        let payload = match self.next() % 3 {
            0 => WirePayload::Predict(
                (0..(self.next() % 4))
                    .map(|_| {
                        if self.bool() {
                            Ok(self.prediction())
                        } else {
                            Err(self.remote_error())
                        }
                    })
                    .collect(),
            ),
            1 => WirePayload::Search(Box::new(self.search_result())),
            _ => {
                if self.bool() {
                    WirePayload::Measure(Ok(if self.bool() {
                        MeasureOutcome::Completed(self.measurement())
                    } else {
                        MeasureOutcome::OutOfMemory {
                            peak_bytes: self.next(),
                        }
                    }))
                } else {
                    WirePayload::Measure(Err(self.remote_error()))
                }
            }
        };
        WireResponse {
            target: self.string(),
            telemetry: self.telemetry(),
            payload,
        }
    }
}

impl Gen {
    fn net_link(&mut self) -> maya_hw::NetLink {
        maya_hw::NetLink {
            bw_gbps: 1.0 + (self.u32(900) as f64) + self.u32(1000) as f64 / 1000.0,
            latency_us: self.u32(50) as f64 / 10.0,
        }
    }

    fn cluster_spec(&mut self) -> maya_hw::ClusterSpec {
        let num_nodes = 1 + self.u32(4);
        let gpus_per_node = 1 + self.u32(8);
        let mut c = match self.u32(4) {
            0 => maya_hw::ClusterSpec::v100(num_nodes, gpus_per_node),
            1 => maya_hw::ClusterSpec::a40(num_nodes, gpus_per_node),
            2 => maya_hw::ClusterSpec::a100(num_nodes, gpus_per_node),
            _ => maya_hw::ClusterSpec::h100(num_nodes, gpus_per_node),
        };
        if self.bool() {
            let intra = self.net_link();
            let inter = self.net_link();
            c = c.with_topology(maya_hw::TopologySpec::symmetric(num_nodes, intra, inter));
        }
        if self.bool() {
            let gpus = [
                maya_hw::GpuSpec::v100(),
                maya_hw::GpuSpec::a40(),
                maya_hw::GpuSpec::a100(),
                maya_hw::GpuSpec::h100(),
            ];
            let classes = (0..1 + self.u32(3))
                .map(|_| maya_hw::RankClass {
                    gpu: gpus[(self.next() as usize) % gpus.len()],
                    count: 1 + self.u32(8),
                })
                .collect();
            c = c.with_hetero(maya_hw::HeteroPool::new(classes));
        }
        c
    }

    fn fault_plan(&mut self) -> maya_net::FaultPlan {
        if self.bool() {
            maya_net::FaultPlan::generate(
                self.next(),
                1 + self.u32(64),
                SimTime::from_ns(1 + (self.next() >> 32)),
            )
        } else {
            maya_net::FaultPlan {
                seed: self.next(),
                stragglers: (0..self.u32(4))
                    .map(|_| maya_net::StragglerWindow {
                        rank: self.u32(64),
                        start: SimTime::from_ns(self.next() >> 32),
                        end: SimTime::from_ns(self.next() >> 32),
                        slowdown: 1.0 + self.u32(1000) as f64 / 100.0,
                    })
                    .collect(),
                failures: (0..self.u32(3))
                    .map(|_| maya_net::RankFailure {
                        rank: self.u32(64),
                        at: SimTime::from_ns(self.next() >> 32),
                        restart_cost: SimTime::from_ns(self.next() >> 32),
                    })
                    .collect(),
            }
        }
    }

    fn power_model(&mut self) -> maya_hw::PowerModel {
        maya_hw::PowerModel {
            dollars_per_kwh: self.u32(1000) as f64 / 1000.0,
            pue: 1.0 + self.u32(100) as f64 / 100.0,
        }
    }
}

/// decode(encode(v)) must re-encode to the same bytes.
fn assert_reencodes<T: serde::Serialize + for<'de> serde::Deserialize<'de>>(v: &T) {
    let text = serde::to_string(v);
    let back: T = serde::from_str(&text).unwrap_or_else(|e| panic!("decode {text:?}: {e}"));
    assert_eq!(serde::to_string(&back), text, "re-encode mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The binary frame layer is byte-transparent for every kind —
    /// the original three and the job-API additions (`Progress`,
    /// `Cancel`, `Expired`) — and every id/body.
    #[test]
    fn frames_round_trip(seed in any::<u64>()) {
        let mut g = Gen(seed);
        let kind = g.pick(&frame::FrameKind::all());
        let id = g.next();
        let body: String = serde::to_string(&g.string());
        let mut buf = Vec::new();
        frame::write_frame(&mut buf, kind, id, &body, DEFAULT_MAX_FRAME_LEN).unwrap();
        let decoded = frame::read_frame(&mut &buf[..], DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("one frame");
        prop_assert_eq!(decoded.kind, kind);
        prop_assert_eq!(decoded.id, id);
        prop_assert_eq!(decoded.body, body);
    }

    /// Requests (all three kinds, arbitrary jobs/spaces) are identity.
    #[test]
    fn requests_round_trip(seed in any::<u64>()) {
        let req = Gen(seed).request();
        assert_reencodes(&req);
        let back: Request = serde::from_str(&serde::to_string(&req)).unwrap();
        prop_assert_eq!(back.target(), req.target());
        prop_assert_eq!(back.kind(), req.kind());
    }

    /// Full responses — predictions (ok and error slots), search
    /// results, measurements, telemetry — are identity.
    #[test]
    fn wire_responses_round_trip(seed in any::<u64>()) {
        assert_reencodes(&Gen(seed).wire_response());
    }

    /// Error payloads are identity including kind and exact message.
    #[test]
    fn remote_errors_round_trip(seed in any::<u64>()) {
        let e = Gen(seed).remote_error();
        let back: RemoteError = serde::from_str(&serde::to_string(&e)).unwrap();
        prop_assert_eq!(back, e);
    }

    /// Telemetry payloads are identity (durations to the nanosecond,
    /// cache counters including evictions).
    #[test]
    fn telemetry_round_trips(seed in any::<u64>()) {
        let t = Gen(seed).telemetry();
        let back: Telemetry = serde::from_str(&serde::to_string(&t)).unwrap();
        prop_assert_eq!(back.queue_wait, t.queue_wait);
        prop_assert_eq!(back.service_time, t.service_time);
        prop_assert_eq!(back.worker, t.worker);
        prop_assert_eq!(back.cache, t.cache);
        prop_assert_eq!(back.cache_delta, t.cache_delta);
        assert_reencodes(&t);
    }

    /// Search results are identity, bit-exact on the float curves.
    #[test]
    fn search_results_round_trip(seed in any::<u64>()) {
        let s = Gen(seed).search_result();
        assert_reencodes(&s);
        let back: SearchResult = serde::from_str(&serde::to_string(&s)).unwrap();
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&back.convergence), bits(&s.convergence));
        prop_assert_eq!(back.trials.len(), s.trials.len());
    }

    /// Measurements (with kernel samples) are identity.
    #[test]
    fn measurements_round_trip(seed in any::<u64>()) {
        assert_reencodes(&Gen(seed).measurement());
    }

    /// `Progress` frame payloads — trial batches, best-so-far, cache
    /// deltas — are identity, bit-exact on the floats.
    #[test]
    fn search_progress_round_trips(seed in any::<u64>()) {
        let p = Gen(seed).search_progress();
        assert_reencodes(&p);
        let back: SearchProgress = serde::from_str(&serde::to_string(&p)).unwrap();
        prop_assert_eq!(back.trials, p.trials);
        prop_assert_eq!(back.committed, p.committed);
        prop_assert_eq!(back.cache_delta, p.cache_delta);
    }

    /// Job verdicts (`Done`/`Cancelled` response frames and `Expired`
    /// frames, with and without prefix responses) decode back to the
    /// exact bytes the server produced.
    #[test]
    fn job_outcome_frames_round_trip(seed in any::<u64>()) {
        let outcome = Gen(seed).job_outcome();
        let (kind, body) = outcome.encode();
        let back = match kind {
            frame::FrameKind::Response => {
                WireJobOutcome::decode_response_frame(&body, frame::VERSION)
            }
            frame::FrameKind::Expired => WireJobOutcome::decode_expired_frame(&body, frame::VERSION),
            other => panic!("unexpected outcome frame kind {other:?}"),
        }
        .expect("decode job outcome frame");
        prop_assert_eq!(back.state(), outcome.state());
        let (back_kind, back_body) = back.encode();
        prop_assert_eq!(back_kind, kind);
        prop_assert_eq!(back_body, body, "re-encode must reproduce the frame body");
    }

    /// Request envelopes (options + request) are identity — deadline
    /// to the nanosecond, priority and tenant exactly.
    #[test]
    fn job_options_round_trip(seed in any::<u64>()) {
        let opts = Gen(seed).job_options();
        let back: JobOptions = serde::from_str(&serde::to_string(&opts)).unwrap();
        prop_assert_eq!(back, opts);
    }

    /// Cluster specs — including the version-4 imperfect-cluster tail
    /// (link topology, heterogeneous rank pools) — are identity,
    /// bit-exact on every float.
    #[test]
    fn cluster_specs_round_trip(seed in any::<u64>()) {
        let c = Gen(seed).cluster_spec();
        assert_reencodes(&c);
        let back: maya_hw::ClusterSpec = serde::from_str(&serde::to_string(&c)).unwrap();
        prop_assert_eq!(back, c);
    }

    /// Fault plans (generated and hand-shaped) are identity.
    #[test]
    fn fault_plans_round_trip(seed in any::<u64>()) {
        let p = Gen(seed).fault_plan();
        assert_reencodes(&p);
        let back: maya_net::FaultPlan = serde::from_str(&serde::to_string(&p)).unwrap();
        prop_assert_eq!(back, p);
    }

    /// Power models are identity, bit-exact.
    #[test]
    fn power_models_round_trip(seed in any::<u64>()) {
        let p = Gen(seed).power_model();
        assert_reencodes(&p);
        let back: maya_hw::PowerModel = serde::from_str(&serde::to_string(&p)).unwrap();
        prop_assert_eq!(back, p);
    }

    /// Version-skew decode of a cluster spec: a v3 body — base fields
    /// only, as a version-3 peer writes them — decodes under the skew
    /// path with both tail options absent, and a full v4 body decodes
    /// in full.
    #[test]
    fn cluster_spec_survives_v3_skew(seed in any::<u64>()) {
        use maya_hw::serdes::decode_cluster_spec;
        use serde::Serialize as _;

        let mut g = Gen(seed);
        let full = g.cluster_spec();
        let mut base = full.clone();
        base.topology = None;
        base.hetero = None;

        // A v3 peer writes only the base fields, in declaration order.
        let mut w = serde::compact::Writer::new();
        base.gpu.serialize(&mut w);
        base.gpus_per_node.serialize(&mut w);
        base.num_nodes.serialize(&mut w);
        base.intra_link.serialize(&mut w);
        base.inter_link.serialize(&mut w);
        base.dollars_per_gpu_hour.serialize(&mut w);
        let body = w.finish();
        let mut r = serde::compact::Reader::new(&body);
        let decoded = decode_cluster_spec(&mut r, 3).expect("v3 decode");
        r.end().expect("v3 body fully consumed");
        prop_assert_eq!(&decoded, &base);
        prop_assert!(decoded.topology.is_none() && decoded.hetero.is_none());

        // The same peer's bytes under the v4 rules would be a truncated
        // frame; a v4 body decodes the tail in full.
        let v4 = serde::to_string(&full);
        let mut r = serde::compact::Reader::new(&v4);
        let decoded = decode_cluster_spec(&mut r, 4).expect("v4 decode");
        r.end().expect("v4 body fully consumed");
        prop_assert_eq!(decoded, full);
    }

    /// Version-skew decode of the request envelope: a v3 body decodes
    /// in full under the v3 path, and a v2 body (deadline-only
    /// envelope, as a v2 client writes it) still decodes under the
    /// same server with QoS defaults — the request itself untouched.
    #[test]
    fn request_envelope_survives_v2_v3_skew(seed in any::<u64>()) {
        use maya_wire::decode_submission;
        use serde::Serialize as _;

        let mut g = Gen(seed);
        let opts = g.job_options();
        let req = g.request();

        // v3 body: full JobOptions envelope + request.
        let mut w = serde::compact::Writer::new();
        opts.serialize(&mut w);
        req.serialize(&mut w);
        let (req3, opts3) = decode_submission(&w.finish(), 3).expect("v3 decode");
        prop_assert_eq!(&opts3, &opts);
        prop_assert_eq!(serde::to_string(&req3), serde::to_string(&req));

        // v2 body: deadline-only envelope + request, decoded under the
        // v2 rules the frame header selects.
        let mut w = serde::compact::Writer::new();
        opts.deadline.serialize(&mut w);
        req.serialize(&mut w);
        let body = w.finish();
        let (req2, opts2) = decode_submission(&body, 2).expect("v2 decode");
        prop_assert_eq!(opts2.deadline, opts.deadline);
        prop_assert_eq!(opts2.priority, Priority::Normal, "v2 defaults");
        prop_assert_eq!(opts2.tenant, None, "v2 defaults");
        prop_assert_eq!(serde::to_string(&req2), serde::to_string(&req));
    }

    /// Version-skew decode of response telemetry: a v4 body — the six
    /// pre-span fields, as a v4 server writes them — decodes under the
    /// skew path with no spans, and the canonical v5 body is exactly
    /// the v4 body plus the span tail, round-tripping the tree.
    #[test]
    fn telemetry_survives_v4_skew(seed in any::<u64>()) {
        use maya_serve::serdes::{read_telemetry_compat, write_telemetry_compat};

        let mut g = Gen(seed);
        let mut full = g.telemetry();
        full.spans = vec![g.span_node(2)];

        // A v4 server writes only the six base fields.
        let mut w = serde::compact::Writer::new();
        write_telemetry_compat(&full, &mut w, false);
        let v4 = w.finish();
        let mut r = serde::compact::Reader::new(&v4);
        let decoded = read_telemetry_compat(&mut r, false).expect("v4 decode");
        r.end().expect("v4 body fully consumed");
        prop_assert!(decoded.spans.is_empty(), "v4 body decodes spanless");
        prop_assert_eq!(decoded.queue_wait, full.queue_wait);
        prop_assert_eq!(decoded.service_time, full.service_time);
        prop_assert_eq!(decoded.cache, full.cache);
        prop_assert_eq!(decoded.cache_delta, full.cache_delta);

        // The canonical (v5) encoding appends the span tail and
        // restores the tree on decode.
        let v5 = serde::to_string(&full);
        prop_assert!(v5.starts_with(&v4), "v5 body = v4 body + span tail");
        let back: Telemetry = serde::from_str(&v5).unwrap();
        prop_assert_eq!(back.spans.len(), 1);
        prop_assert_eq!(serde::to_string(&back), v5);
    }

    /// A whole v4 `Response` frame body (done verdict, as a v4 server
    /// writes it) decodes under the version-gated client path with
    /// telemetry spans dropped; the v5 body of the same outcome
    /// restores them and re-encodes identically.
    #[test]
    fn response_frames_survive_v4_skew(seed in any::<u64>()) {
        use serde::Serialize as _;

        let mut g = Gen(seed);
        let mut resp = g.wire_response();
        resp.telemetry.spans = vec![g.span_node(1)];

        // Hand-build the body a v4 server writes: done tag, target,
        // spanless telemetry, payload.
        let mut w = serde::compact::Writer::new();
        w.tag("done");
        resp.target.serialize(&mut w);
        maya_serve::serdes::write_telemetry_compat(&resp.telemetry, &mut w, false);
        resp.payload.serialize(&mut w);
        let v4_body = w.finish();
        let back = WireJobOutcome::decode_response_frame(&v4_body, 4).expect("v4 decode");
        let v4_resp = back.response().expect("done verdict");
        prop_assert!(v4_resp.telemetry.spans.is_empty());
        prop_assert_eq!(&v4_resp.target, &resp.target);

        let outcome = WireJobOutcome::Done(resp);
        let (kind, v5_body) = outcome.encode();
        prop_assert_eq!(kind, frame::FrameKind::Response);
        let back = WireJobOutcome::decode_response_frame(&v5_body, 5).expect("v5 decode");
        prop_assert_eq!(back.response().unwrap().telemetry.spans.len(), 1);
        prop_assert_eq!(back.encode().1, v5_body);
    }
}
