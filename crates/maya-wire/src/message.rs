//! The client-side view of a served response.
//!
//! A server encodes a `maya_serve::Response` straight onto the wire
//! (via its `Serialize` impl); the client decodes the same bytes into a
//! [`WireResponse`]. The two differ in exactly one way: error slots.
//! `Response` holds real [`maya::MayaError`] trees, which cannot cross
//! a process boundary, so the wire carries their kind code + message
//! and the client sees a typed [`RemoteError`] in each error slot.
//! Everything else — [`Telemetry`], [`maya::Prediction`]s,
//! [`maya_search::SearchResult`]s, [`MeasureOutcome`]s — round-trips
//! exactly, and [`WireResponse`]'s own `Serialize` re-produces the
//! server's bytes verbatim (property-tested), which is what makes
//! "byte-identical to a direct `MayaService` call" checkable end to
//! end.

use serde::{compact, Deserialize, Serialize};

use maya::Prediction;
use maya_search::SearchResult;
use maya_serve::{JobOptions, JobState, MeasureOutcome, Request, Telemetry};

use crate::error::RemoteError;
use crate::frame::FrameKind;

/// Decodes a request frame body — the leading [`JobOptions`] envelope
/// followed by the [`Request`] — under the peer's protocol `version`
/// (from the frame header).
///
/// Version 2 envelopes carry only the deadline; the QoS fields added
/// in version 3 (priority, tenant) decode to their defaults, so a v2
/// client keeps working against a v3 server unchanged. Version 3
/// envelopes decode in full.
pub fn decode_submission(
    body: &str,
    version: u16,
) -> Result<(Request, JobOptions), compact::Error> {
    let mut r = compact::Reader::new(body);
    let opts = if version <= 2 {
        JobOptions {
            deadline: Deserialize::deserialize(&mut r)?,
            ..JobOptions::default()
        }
    } else {
        JobOptions::deserialize(&mut r)?
    };
    let req = Request::deserialize(&mut r)?;
    r.end()?;
    Ok((req, opts))
}

/// The result body of a [`WireResponse`], mirroring
/// `maya_serve::Payload` with wire-safe error slots.
#[derive(Debug)]
pub enum WirePayload {
    /// Per-job outcomes of a `Predict`, positionally aligned with the
    /// request's `jobs`.
    Predict(Vec<Result<Prediction, RemoteError>>),
    /// Outcome of a `Search`.
    Search(Box<SearchResult>),
    /// Outcome of a `Measure`.
    Measure(Result<MeasureOutcome, RemoteError>),
}

/// A served request as seen by a wire client: payload plus telemetry.
#[derive(Debug)]
pub struct WireResponse {
    /// The cluster target that served the request.
    pub target: String,
    /// Service telemetry (queue wait, cache deltas, stage timings),
    /// measured on the server.
    pub telemetry: Telemetry,
    /// The result body.
    pub payload: WirePayload,
}

impl WireResponse {
    /// Request kind label ("predict" / "search" / "measure").
    pub fn kind(&self) -> &'static str {
        match self.payload {
            WirePayload::Predict(_) => "predict",
            WirePayload::Search(_) => "search",
            WirePayload::Measure(_) => "measure",
        }
    }

    /// The predict results, when this response answers a `Predict`.
    pub fn predictions(&self) -> Option<&[Result<Prediction, RemoteError>]> {
        match &self.payload {
            WirePayload::Predict(p) => Some(p),
            _ => None,
        }
    }

    /// The search result, when this response answers a `Search`.
    pub fn search(&self) -> Option<&SearchResult> {
        match &self.payload {
            WirePayload::Search(s) => Some(s),
            _ => None,
        }
    }

    /// The measurement outcome, when this response answers a `Measure`.
    pub fn measurement(&self) -> Option<&Result<MeasureOutcome, RemoteError>> {
        match &self.payload {
            WirePayload::Measure(m) => Some(m),
            _ => None,
        }
    }

    /// Renders the response as a human-readable JSON object (riding on
    /// `Prediction::to_json` / `SearchResult::to_json`) so wire clients
    /// can dump results without a JSON dependency.
    pub fn to_json(&self) -> String {
        use maya_trace::json::json_string;
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"target\":{},\"kind\":{},\"telemetry\":{{\"queue_wait_us\":{},\
             \"service_time_us\":{},\"worker\":{},\"cache\":{{\"hits\":{},\"misses\":{},\
             \"evictions\":{}}},\"cache_delta\":{{\"hits\":{},\"misses\":{},\
             \"evictions\":{}}}}},\"payload\":",
            json_string(&self.target),
            json_string(self.kind()),
            self.telemetry.queue_wait.as_micros(),
            self.telemetry.service_time.as_micros(),
            self.telemetry.worker,
            self.telemetry.cache.hits,
            self.telemetry.cache.misses,
            self.telemetry.cache.evictions,
            self.telemetry.cache_delta.hits,
            self.telemetry.cache_delta.misses,
            self.telemetry.cache_delta.evictions,
        );
        fn error_json(e: &RemoteError) -> String {
            format!(
                "{{\"error\":{},\"message\":{}}}",
                maya_trace::json::json_string(e.kind.code()),
                maya_trace::json::json_string(&e.message)
            )
        }
        match &self.payload {
            WirePayload::Predict(results) => {
                out.push('[');
                for (i, r) in results.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match r {
                        Ok(p) => out.push_str(&p.to_json()),
                        Err(e) => out.push_str(&error_json(e)),
                    }
                }
                out.push(']');
            }
            WirePayload::Search(s) => out.push_str(&s.to_json()),
            WirePayload::Measure(m) => match m {
                Ok(MeasureOutcome::Completed(meas)) => {
                    let _ = write!(
                        out,
                        "{{\"iteration_time_ns\":{},\"comm_time_ns\":{},\
                         \"compute_time_ns\":{},\"peak_mem_bytes\":{}}}",
                        meas.iteration_time.as_ns(),
                        meas.comm_time.as_ns(),
                        meas.compute_time.as_ns(),
                        meas.peak_mem_bytes,
                    );
                }
                Ok(MeasureOutcome::OutOfMemory { peak_bytes }) => {
                    let _ = write!(out, "{{\"oom\":{{\"peak_bytes\":{peak_bytes}}}}}");
                }
                Err(e) => out.push_str(&error_json(e)),
            },
        }
        out.push('}');
        out
    }
}

/// The client-side view of a job's terminal verdict — the wire twin of
/// `maya_serve::JobOutcome`.
///
/// `Done` and `Cancelled` travel in a `Response` frame (distinguished
/// by a leading tag), `Expired` in its own
/// [`FrameKind::Expired`] frame. The optional responses of the
/// non-`Done` verdicts carry the deterministic committed prefix a
/// search produced before it was stopped.
#[derive(Debug)]
pub enum WireJobOutcome {
    /// Ran to completion.
    Done(WireResponse),
    /// Cancelled; `Some` carries a mid-run search's committed prefix.
    Cancelled(Option<WireResponse>),
    /// Deadline elapsed; `None` = shed while queued, `Some` = stopped
    /// at a wave boundary with the committed prefix.
    Expired(Option<WireResponse>),
}

fn write_opt_response<T: Serialize>(w: &mut compact::Writer, resp: &Option<T>) {
    match resp {
        None => w.tag("none"),
        Some(r) => {
            w.tag("some");
            r.serialize(w);
        }
    }
}

/// Decodes a `WireResponse` whose telemetry was written with or
/// without the span-tree tail (protocol v5 vs older) — the read-side
/// twin of `maya_serve::serdes::write_response_compat`.
fn read_wire_response(
    r: &mut compact::Reader<'_>,
    with_spans: bool,
) -> Result<WireResponse, compact::Error> {
    Ok(WireResponse {
        target: Deserialize::deserialize(r)?,
        telemetry: maya_serve::serdes::read_telemetry_compat(r, with_spans)?,
        payload: Deserialize::deserialize(r)?,
    })
}

fn read_opt_response(
    r: &mut compact::Reader<'_>,
    with_spans: bool,
) -> Result<Option<WireResponse>, compact::Error> {
    Ok(match r.raw_token()? {
        "none" => None,
        "some" => Some(read_wire_response(r, with_spans)?),
        t => return Err(compact::Error::parse(t, "option tag (none|some)")),
    })
}

impl WireJobOutcome {
    /// The terminal [`JobState`] this verdict lands the job in.
    pub fn state(&self) -> JobState {
        match self {
            WireJobOutcome::Done(_) => JobState::Done,
            WireJobOutcome::Cancelled(_) => JobState::Cancelled,
            WireJobOutcome::Expired(_) => JobState::Expired,
        }
    }

    /// The response, for verdicts that carry one.
    pub fn response(&self) -> Option<&WireResponse> {
        match self {
            WireJobOutcome::Done(r) => Some(r),
            WireJobOutcome::Cancelled(r) | WireJobOutcome::Expired(r) => r.as_ref(),
        }
    }

    /// Consumes the verdict, yielding the response if it carries one.
    pub fn into_response(self) -> Option<WireResponse> {
        match self {
            WireJobOutcome::Done(r) => Some(r),
            WireJobOutcome::Cancelled(r) | WireJobOutcome::Expired(r) => r,
        }
    }

    /// Encodes the verdict as its (frame kind, body) wire form — the
    /// exact layout the server produces from a `maya_serve::JobOutcome`.
    pub fn encode(&self) -> (FrameKind, String) {
        let mut w = compact::Writer::new();
        match self {
            WireJobOutcome::Done(resp) => {
                w.tag("done");
                resp.serialize(&mut w);
                (FrameKind::Response, w.finish())
            }
            WireJobOutcome::Cancelled(resp) => {
                w.tag("cancelled");
                write_opt_response(&mut w, resp);
                (FrameKind::Response, w.finish())
            }
            WireJobOutcome::Expired(resp) => {
                write_opt_response(&mut w, resp);
                (FrameKind::Expired, w.finish())
            }
        }
    }

    /// Decodes the body of a `Response` frame (`done` / `cancelled`)
    /// written under the peer's protocol `version` (from the frame
    /// header): v5 bodies carry the telemetry span tree, older ones
    /// decode with `telemetry.spans` empty.
    pub fn decode_response_frame(body: &str, version: u16) -> Result<Self, compact::Error> {
        let with_spans = version >= 5;
        let mut r = compact::Reader::new(body);
        let out = match r.raw_token()? {
            "done" => WireJobOutcome::Done(read_wire_response(&mut r, with_spans)?),
            "cancelled" => WireJobOutcome::Cancelled(read_opt_response(&mut r, with_spans)?),
            t => return Err(compact::Error::parse(t, "job outcome tag (done|cancelled)")),
        };
        r.end()?;
        Ok(out)
    }

    /// Decodes the body of an [`FrameKind::Expired`] frame written
    /// under the peer's protocol `version` (see
    /// [`WireJobOutcome::decode_response_frame`]).
    pub fn decode_expired_frame(body: &str, version: u16) -> Result<Self, compact::Error> {
        let mut r = compact::Reader::new(body);
        let out = WireJobOutcome::Expired(read_opt_response(&mut r, version >= 5)?);
        r.end()?;
        Ok(out)
    }
}

impl Serialize for WirePayload {
    fn serialize(&self, w: &mut compact::Writer) {
        match self {
            WirePayload::Predict(results) => {
                w.tag("predict");
                results.serialize(w);
            }
            WirePayload::Search(result) => {
                w.tag("search");
                result.as_ref().serialize(w);
            }
            WirePayload::Measure(outcome) => {
                w.tag("measure");
                outcome.serialize(w);
            }
        }
    }
}

impl<'de> Deserialize<'de> for WirePayload {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        Ok(match r.raw_token()? {
            "predict" => WirePayload::Predict(Deserialize::deserialize(r)?),
            "search" => WirePayload::Search(Box::new(Deserialize::deserialize(r)?)),
            "measure" => WirePayload::Measure(Deserialize::deserialize(r)?),
            t => return Err(compact::Error::parse(t, "payload kind")),
        })
    }
}

impl Serialize for WireResponse {
    fn serialize(&self, w: &mut compact::Writer) {
        self.target.serialize(w);
        self.telemetry.serialize(w);
        self.payload.serialize(w);
    }
}

impl<'de> Deserialize<'de> for WireResponse {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        read_wire_response(r, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maya_serve::{MayaService, Request};

    #[test]
    fn server_encoding_decodes_as_wire_response_and_reencodes_identically() {
        use maya::EmulationSpec;
        use maya_hw::ClusterSpec;
        use maya_torchlet::TrainingJob;

        let service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        let resp = service
            .call(Request::Predict {
                target: "h100-1".into(),
                jobs: vec![TrainingJob::smoke()],
            })
            .unwrap();
        let bytes = serde::to_string(&resp);
        let wire: WireResponse = serde::from_str(&bytes).expect("decode server bytes");
        assert_eq!(wire.target, "h100-1");
        assert_eq!(wire.kind(), "predict");
        assert_eq!(
            serde::to_string(&wire),
            bytes,
            "client re-encoding must reproduce the server bytes"
        );
        let direct = wire.predictions().unwrap()[0].as_ref().unwrap();
        assert!(direct.report().is_some());
    }

    #[test]
    fn to_json_is_balanced_and_carries_the_result() {
        use maya::EmulationSpec;
        use maya_hw::ClusterSpec;
        use maya_torchlet::TrainingJob;

        let service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        let resp = service
            .call(Request::Predict {
                target: "h100-1".into(),
                jobs: vec![TrainingJob::smoke()],
            })
            .unwrap();
        let wire: WireResponse = serde::from_str(&serde::to_string(&resp)).unwrap();
        let json = wire.to_json();
        for key in [
            "\"target\":\"h100-1\"",
            "\"kind\":\"predict\"",
            "\"total_time_ns\":",
            "\"cache_delta\"",
            "\"evictions\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
    }

    #[test]
    fn error_slots_decode_as_typed_remote_errors() {
        use maya::EmulationSpec;
        use maya_hw::ClusterSpec;
        use maya_torchlet::TrainingJob;

        let service = MayaService::builder()
            .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
            .build()
            .unwrap();
        let mut bad = TrainingJob::smoke();
        bad.world = 4; // cluster has 1 GPU
        let resp = service
            .call(Request::Predict {
                target: "h100-1".into(),
                jobs: vec![bad],
            })
            .unwrap();
        let wire: WireResponse = serde::from_str(&serde::to_string(&resp)).unwrap();
        let err = wire.predictions().unwrap()[0].as_ref().unwrap_err();
        assert_eq!(err.kind, crate::RemoteErrorKind::WorldMismatch);
        assert!(err.message.contains("4 ranks"), "{}", err.message);
    }
}
