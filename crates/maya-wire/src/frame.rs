//! The binary framing layer: length-prefixed, versioned frames whose
//! bodies are `serde::compact` token streams.
//!
//! Every frame is a fixed 20-byte header followed by a UTF-8 body:
//!
//! ```text
//! offset  size  field
//!      0     4  magic   b"MAYW"
//!      4     2  version u16 BE (this build writes VERSION and reads
//!                       MIN_VERSION..=VERSION)
//!      6     1  kind    1 = request, 2 = response, 3 = error,
//!                       4 = progress, 5 = cancel, 6 = expired,
//!                       7 = scrape
//!      7     1  reserved (must be 0)
//!      8     8  id      u64 BE request id, echoed in the reply
//!                       (must be non-zero in requests: 0 marks
//!                       connection-scoped error frames)
//!     16     4  len     u32 BE body length in bytes
//!     20   len  body    compact token stream (UTF-8)
//! ```
//!
//! Version 2 added the job-oriented frame kinds: `progress` streams a
//! running search's incremental results to the client (many per id,
//! all before the terminal frame), `cancel` is the one client→server
//! frame besides `request` (it asks the server to cooperatively stop
//! the in-flight job with that id; its body is empty), and `expired`
//! is the terminal frame of a job whose deadline elapsed.
//!
//! Version 3 grew the request body's `JobOptions` envelope from the
//! deadline alone to deadline + priority + tenant (the per-tenant QoS
//! vocabulary). The frame layout is unchanged; only the body differs,
//! which is why readers accept the [`MIN_VERSION`]..=[`VERSION`] range
//! and surface the peer's version on each [`Frame`] — a v2 body still
//! decodes, with QoS defaults (see
//! [`decode_submission`](crate::message::decode_submission)).
//!
//! Version 5 added observability: the `scrape` frame (a client pulls
//! the server's point-in-time metrics snapshot; the server echoes the
//! id back with the serialized `maya_serve::ObsSnapshot` as the body)
//! and the telemetry span tree appended to response bodies. Replies to
//! v4-and-older peers omit the span tail, so their readers — which
//! consume exactly the pre-v5 layout — keep working unchanged.
//!
//! The header is self-validating: wrong magic, an unknown version or
//! kind, a non-zero reserved byte, or a length over the reader's
//! max-frame guard are typed [`ProtocolError`]s — never panics and
//! never unbounded allocations. A stream that ends cleanly *between*
//! frames reads as end-of-stream ([`read_frame`] returns `None`); one
//! that ends inside a frame is [`ProtocolError::Truncated`].

use std::io::{ErrorKind, Read, Write};

/// Leading magic of every frame.
pub const MAGIC: [u8; 4] = *b"MAYW";

/// Protocol version this build writes (header field). Version 2
/// introduced the job-oriented vocabulary: the request body gained a
/// leading `JobOptions` (deadline), and the `Progress` / `Cancel` /
/// `Expired` frame kinds joined the original three. Version 3 extended
/// the `JobOptions` envelope with the QoS fields (priority, tenant).
/// Version 4 extended cluster specs with the imperfect-cluster tail
/// (link topology, heterogeneous rank pools — see
/// `maya_hw::serdes::SPEC_TAIL_VERSION`); v3 bodies decode with both
/// absent. Version 5 added the `Scrape` frame kind (pull the server's
/// metrics snapshot) and the span-tree tail on response telemetry;
/// replies to v4-and-older peers omit the tail.
pub const VERSION: u16 = 5;

/// Oldest protocol version this build still reads. Version-2 peers
/// differ only in the request-body envelope, so their frames are
/// accepted and decoded with QoS defaults.
pub const MIN_VERSION: u16 = 2;

/// Header size in bytes.
pub const HEADER_LEN: usize = 20;

/// Default max-frame guard: 32 MiB.
///
/// Both sides refuse to *read* a frame longer than their guard (the
/// length is attacker-controlled input — it must bound allocation) and
/// refuse to *write* one (the peer would just drop it).
pub const DEFAULT_MAX_FRAME_LEN: u32 = 32 << 20;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: a serialized `maya_serve::JobOptions` followed
    /// by a serialized `maya_serve::Request`.
    Request,
    /// Server → client: the terminal verdict for the echoed id — a job
    /// outcome tag (`done` / `cancelled`) plus the serialized response
    /// (see [`WireJobOutcome`](crate::WireJobOutcome)).
    Response,
    /// Server → client: a serialized [`RemoteError`](crate::RemoteError)
    /// for the echoed id (id 0 = connection-fatal, not tied to one
    /// request).
    Error,
    /// Server → client: one serialized `maya_serve::SearchProgress`
    /// increment of the running job with the echoed id. Zero or more
    /// of these precede the job's single terminal frame.
    Progress,
    /// Client → server: cooperatively cancel the in-flight job with
    /// the echoed id. Empty body; no direct acknowledgement — the
    /// job's terminal frame reflects the verdict.
    Cancel,
    /// Server → client: terminal — the job's deadline elapsed. The
    /// body is `none` (shed while queued, never executed) or `some`
    /// plus the committed-prefix response of a search whose budget ran
    /// out mid-run.
    Expired,
    /// Both directions: a client sends an empty-body `Scrape` to pull
    /// the server's point-in-time observability snapshot; the server
    /// echoes the id back in a `Scrape` frame whose body is the
    /// serialized `maya_serve::ObsSnapshot`. Added in version 5.
    Scrape,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Error => 3,
            FrameKind::Progress => 4,
            FrameKind::Cancel => 5,
            FrameKind::Expired => 6,
            FrameKind::Scrape => 7,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => FrameKind::Request,
            2 => FrameKind::Response,
            3 => FrameKind::Error,
            4 => FrameKind::Progress,
            5 => FrameKind::Cancel,
            6 => FrameKind::Expired,
            7 => FrameKind::Scrape,
            _ => return None,
        })
    }

    /// Every kind (for exhaustive tests).
    pub fn all() -> [FrameKind; 7] {
        [
            FrameKind::Request,
            FrameKind::Response,
            FrameKind::Error,
            FrameKind::Progress,
            FrameKind::Cancel,
            FrameKind::Expired,
            FrameKind::Scrape,
        ]
    }
}

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The protocol version the peer wrote this frame under (within
    /// [`MIN_VERSION`]..=[`VERSION`]; governs how the body decodes).
    pub version: u16,
    /// What the body is.
    pub kind: FrameKind,
    /// Request id (echoed by the server; 0 = connection-scoped).
    pub id: u64,
    /// The compact token stream.
    pub body: String,
}

/// A malformed, oversized, truncated or version-skewed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The stream did not start a frame with the `MAYW` magic —
    /// not a maya-wire peer (or a desynchronized stream).
    BadMagic([u8; 4]),
    /// The peer speaks an unsupported protocol version.
    Version(u16),
    /// The header's kind byte is not a known frame kind.
    UnknownKind(u8),
    /// The header's reserved byte was non-zero.
    Reserved(u8),
    /// The frame length exceeds the local max-frame guard.
    Oversized {
        /// Length the header declared.
        len: u32,
        /// This side's guard.
        max: u32,
    },
    /// The stream ended inside a frame (header or body).
    Truncated,
    /// The body is not valid UTF-8.
    BodyNotUtf8,
    /// The body's token stream failed to decode as the expected type.
    Malformed(serde::Error),
    /// The peer sent a frame kind that makes no sense in this direction
    /// (e.g. a server received a response frame).
    UnexpectedFrame(FrameKind),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            ProtocolError::Version(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks \
                     {MIN_VERSION}..={VERSION})"
                )
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Reserved(b) => write!(f, "non-zero reserved header byte {b}"),
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte guard")
            }
            ProtocolError::Truncated => write!(f, "stream ended mid-frame"),
            ProtocolError::BodyNotUtf8 => write!(f, "frame body is not UTF-8"),
            ProtocolError::Malformed(e) => write!(f, "malformed frame body: {e}"),
            ProtocolError::UnexpectedFrame(k) => write!(f, "unexpected {k:?} frame"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Failure while reading one frame.
#[derive(Debug)]
pub enum ReadError {
    /// Transport failure.
    Io(std::io::Error),
    /// The bytes arrived but do not form a valid frame.
    Protocol(ProtocolError),
}

/// Writes one frame under this build's own [`VERSION`]. Fails with
/// [`ProtocolError::Oversized`] (as `InvalidData` io error) when the
/// body exceeds `max_len`.
pub fn write_frame<W: Write>(
    w: &mut W,
    kind: FrameKind,
    id: u64,
    body: &str,
    max_len: u32,
) -> std::io::Result<()> {
    write_frame_with_version(w, VERSION, kind, id, body, max_len)
}

/// [`write_frame`] with an explicit header version — how a server
/// echoes a down-level peer's version on its reply frames. The reply
/// bodies are identical across the supported range (only the
/// *request* envelope changed in v3), so a v2 peer, whose reader
/// rejects any version but its own, can consume a v3 server's frames.
pub fn write_frame_with_version<W: Write>(
    w: &mut W,
    version: u16,
    kind: FrameKind,
    id: u64,
    body: &str,
    max_len: u32,
) -> std::io::Result<()> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= max_len)
        .ok_or_else(|| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                ProtocolError::Oversized {
                    len: body.len().min(u32::MAX as usize) as u32,
                    max: max_len,
                },
            )
        })?;
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&version.to_be_bytes());
    header[6] = kind.code();
    header[7] = 0;
    header[8..16].copy_from_slice(&id.to_be_bytes());
    header[16..20].copy_from_slice(&len.to_be_bytes());
    w.write_all(&header)?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads exactly `buf.len()` bytes. `Ok(false)` means the stream ended
/// cleanly *before the first byte*; EOF anywhere later is
/// [`ProtocolError::Truncated`].
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, ReadError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(ReadError::Protocol(ProtocolError::Truncated))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame; `Ok(None)` is a clean end-of-stream at a frame
/// boundary. `max_len` bounds the body allocation *before* it happens.
pub fn read_frame<R: Read>(r: &mut R, max_len: u32) -> Result<Option<Frame>, ReadError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    // Destructure the fixed-size header once: every field extraction
    // below is infallible by construction (no slice-length expects on
    // the per-frame hot path).
    let [m0, m1, m2, m3, v0, v1, kind_code, reserved, i0, i1, i2, i3, i4, i5, i6, i7, l0, l1, l2, l3] =
        header;
    let magic = [m0, m1, m2, m3];
    if magic != MAGIC {
        return Err(ReadError::Protocol(ProtocolError::BadMagic(magic)));
    }
    let version = u16::from_be_bytes([v0, v1]);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ReadError::Protocol(ProtocolError::Version(version)));
    }
    let kind = FrameKind::from_code(kind_code)
        .ok_or(ReadError::Protocol(ProtocolError::UnknownKind(kind_code)))?;
    if reserved != 0 {
        return Err(ReadError::Protocol(ProtocolError::Reserved(reserved)));
    }
    let id = u64::from_be_bytes([i0, i1, i2, i3, i4, i5, i6, i7]);
    let len = u32::from_be_bytes([l0, l1, l2, l3]);
    if len > max_len {
        return Err(ReadError::Protocol(ProtocolError::Oversized {
            len,
            max: max_len,
        }));
    }
    let mut body = vec![0u8; len as usize];
    if !read_exact_or_eof(r, &mut body)? && len > 0 {
        return Err(ReadError::Protocol(ProtocolError::Truncated));
    }
    let body =
        String::from_utf8(body).map_err(|_| ReadError::Protocol(ProtocolError::BodyNotUtf8))?;
    Ok(Some(Frame {
        version,
        kind,
        id,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(kind: FrameKind, id: u64, body: &str) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, id, body, DEFAULT_MAX_FRAME_LEN).unwrap();
        let mut cursor = &buf[..];
        let frame = read_frame(&mut cursor, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("one frame");
        assert!(cursor.is_empty(), "frame consumed exactly");
        frame
    }

    #[test]
    fn frames_round_trip() {
        for (kind, id, body) in [
            (FrameKind::Request, 1, "predict h100 1 ..."),
            (FrameKind::Response, u64::MAX, ""),
            (FrameKind::Error, 0, "overloaded admission%squeue%sfull"),
        ] {
            let f = round_trip(kind, id, body);
            assert_eq!(f.kind, kind);
            assert_eq!(f.id, id);
            assert_eq!(f.body, body);
        }
    }

    #[test]
    fn back_to_back_frames_parse_individually() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 1, "a", 64).unwrap();
        write_frame(&mut buf, FrameKind::Request, 2, "bb", 64).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap().id, 1);
        assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap().body, "bb");
        assert!(read_frame(&mut cursor, 64).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 1, "x", 64).unwrap();
        buf[0] = b'Z';
        assert!(matches!(
            read_frame(&mut &buf[..], 64),
            Err(ReadError::Protocol(ProtocolError::BadMagic(_)))
        ));
    }

    #[test]
    fn version_skew_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 1, "x", 64).unwrap();
        buf[5] = 99;
        assert!(matches!(
            read_frame(&mut &buf[..], 64),
            Err(ReadError::Protocol(ProtocolError::Version(99)))
        ));
    }

    #[test]
    fn supported_version_range_is_accepted_and_reported() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 1, "x", 64).unwrap();
        // This build writes VERSION...
        let frame = read_frame(&mut &buf[..], 64).unwrap().unwrap();
        assert_eq!(frame.version, VERSION);
        // ...and still reads every version down to MIN_VERSION, so a
        // v2 peer's frames decode (with QoS defaults in the body).
        for version in MIN_VERSION..=VERSION {
            buf[4..6].copy_from_slice(&version.to_be_bytes());
            let frame = read_frame(&mut &buf[..], 64).unwrap().unwrap();
            assert_eq!(frame.version, version);
            assert_eq!(frame.body, "x");
        }
        // Anything older is refused.
        buf[4..6].copy_from_slice(&(MIN_VERSION - 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..], 64),
            Err(ReadError::Protocol(ProtocolError::Version(_)))
        ));
    }

    #[test]
    fn oversized_frames_rejected_before_allocation() {
        // A header declaring 4 GiB-ish must not allocate the body.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 1, "x", 64).unwrap();
        buf[16..20].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..], 64),
            Err(ReadError::Protocol(ProtocolError::Oversized { .. }))
        ));
        // And the writer refuses to produce one.
        let body = "y".repeat(65);
        assert!(write_frame(&mut Vec::new(), FrameKind::Request, 1, &body, 64).is_err());
    }

    #[test]
    fn truncated_frames_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 7, "hello", 64).unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 2] {
            assert!(
                matches!(
                    read_frame(&mut &buf[..cut], 64),
                    Err(ReadError::Protocol(ProtocolError::Truncated))
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn unknown_kind_and_reserved_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 1, "", 64).unwrap();
        let mut bad_kind = buf.clone();
        bad_kind[6] = 9;
        assert!(matches!(
            read_frame(&mut &bad_kind[..], 64),
            Err(ReadError::Protocol(ProtocolError::UnknownKind(9)))
        ));
        buf[7] = 1;
        assert!(matches!(
            read_frame(&mut &buf[..], 64),
            Err(ReadError::Protocol(ProtocolError::Reserved(1)))
        ));
    }

    #[test]
    fn non_utf8_body_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Request, 1, "ab", 64).unwrap();
        let n = buf.len();
        buf[n - 1] = 0xFF;
        assert!(matches!(
            read_frame(&mut &buf[..], 64),
            Err(ReadError::Protocol(ProtocolError::BodyNotUtf8))
        ));
    }
}
