//! [`WireServer`]: a blocking TCP front end wrapping any
//! [`MayaService`].
//!
//! One OS thread accepts connections; each connection gets a *reader*
//! thread, a *writer* thread, and one lightweight *pump* thread per
//! in-flight job, all over `std::net::TcpStream`:
//!
//! - the *reader* parses request frames and admits them through
//!   [`MayaService::try_submit_with`] — the service's bounded admission
//!   queue is mapped straight onto the wire, so a full queue becomes a
//!   typed [`RemoteErrorKind::Overloaded`](crate::RemoteErrorKind)
//!   error frame (the connection stays up and later requests are
//!   served), never a dropped connection. A `Cancel` frame resolves
//!   the echoed id against the connection's in-flight jobs and fires
//!   that job's cooperative cancel;
//! - each admitted job's *pump* forwards its progress events as
//!   `Progress` frames and then its terminal verdict (a `Response`,
//!   `Expired` or `Error` frame) into the shared writer channel, so a
//!   long search streams increments while other pipelined jobs
//!   complete around it — frames of one job stay ordered (progress
//!   before terminal), frames of different jobs interleave by id;
//! - the *writer* serializes frames onto the socket in arrival order.
//!
//! Malformed input degrades proportionally: an undecodable request
//! *body* earns a per-request `protocol` error frame and the connection
//! keeps serving; a corrupt frame *header* (bad magic, version skew,
//! oversized length) means the stream itself can no longer be trusted,
//! so the server sends a connection-scoped error frame (id 0) and
//! closes that one connection. The server itself never dies on client
//! input.
//!
//! [`WireServer::shutdown`] is graceful: stop accepting, half-close
//! every connection's read side, let every job pump drain its progress
//! and verdict, then join all threads.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use serde::{compact, Serialize};

use maya_serve::{JobControl, JobHandle, JobOutcome, MayaService, ServeError, SpanNode};

use crate::error::RemoteError;
use crate::frame::{
    read_frame, write_frame_with_version, FrameKind, ProtocolError, ReadError, VERSION,
};
use crate::message::decode_submission;

/// One outbound frame, queued for the connection writer.
struct OutFrame {
    kind: FrameKind,
    id: u64,
    body: String,
}

/// Counters for one [`WireServer`] (all cumulative).
#[derive(Clone, Copy, Debug, Default)]
pub struct WireServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames admitted into the service queue.
    pub admitted: u64,
    /// Requests shed with a typed `overloaded` error frame.
    pub overloaded: u64,
    /// Frames answered with a `protocol` error (malformed body or
    /// desynchronized stream).
    pub protocol_errors: u64,
    /// `Cancel` frames that resolved to an in-flight job (late cancels
    /// for already-finished ids are ignored and not counted).
    pub cancels: u64,
    /// `Scrape` frames answered with an observability snapshot.
    ///
    /// Deliberately a server-side counter rather than a metric in the
    /// scraped registry: a snapshot must not change by the act of
    /// taking it (two back-to-back scrapes of an idle server are
    /// byte-identical).
    pub scrapes: u64,
}

struct ServerShared {
    service: Arc<MayaService>,
    max_frame_len: u32,
    stopping: AtomicBool,
    /// Live connections' stream clones (keyed by connection id), used
    /// to half-close readers at shutdown; each connection thread
    /// removes its own entry on exit.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    connections: AtomicU64,
    admitted: AtomicU64,
    overloaded: AtomicU64,
    protocol_errors: AtomicU64,
    cancels: AtomicU64,
    scrapes: AtomicU64,
}

/// Configures a [`WireServer`] before binding.
pub struct WireServerBuilder {
    service: Arc<MayaService>,
    max_frame_len: u32,
}

impl WireServerBuilder {
    /// Overrides the max-frame guard (default
    /// [`crate::frame::DEFAULT_MAX_FRAME_LEN`]). Frames longer than
    /// this — in either direction — are refused.
    pub fn max_frame_len(mut self, bytes: u32) -> Self {
        self.max_frame_len = bytes;
        self
    }

    /// Binds the listener and starts the accept thread.
    pub fn bind(self, addr: impl ToSocketAddrs) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service: self.service,
            max_frame_len: self.max_frame_len,
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            connections: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            cancels: AtomicU64::new(0),
            scrapes: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("maya-wire-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        Ok(WireServer {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// The blocking TCP serving front end (see module docs).
pub struct WireServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Starts configuring a server over `service`.
    pub fn builder(service: Arc<MayaService>) -> WireServerBuilder {
        WireServerBuilder {
            service,
            max_frame_len: crate::frame::DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// Binds with defaults: `WireServer::builder(service).bind(addr)`.
    /// Bind to port 0 to let the OS pick (see [`WireServer::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<MayaService>) -> std::io::Result<Self> {
        WireServer::builder(service).bind(addr)
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<MayaService> {
        &self.shared.service
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> WireServerStats {
        WireServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            overloaded: self.shared.overloaded.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
            cancels: self.shared.cancels.load(Ordering::Relaxed),
            scrapes: self.shared.scrapes.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, half-close every connection's
    /// read side (no new requests), drain and deliver every in-flight
    /// response and progress stream, join all threads. Idempotent; also
    /// runs on drop.
    ///
    /// The wrapped [`MayaService`] is *not* stopped — it may be shared
    /// with in-process callers or another front end.
    pub fn shutdown(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Readers stop at EOF; job pumps then drain into the writers.
        let conns =
            std::mem::take(&mut *self.shared.conns.lock().unwrap_or_else(|p| p.into_inner()));
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let threads = std::mem::take(
            &mut *self
                .shared
                .conn_threads
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        );
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept failures (EMFILE under fd
                // pressure, ENOBUFS, ...) would otherwise hot-loop
                // this thread at 100% CPU exactly when the machine is
                // struggling; back off briefly instead.
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return; // the wake-up connection (or a late client)
        }
        // Response frames are latency-sensitive and already coalesced
        // by the writer's BufWriter; Nagle would add delayed-ACK
        // stalls (~40ms) to pipelined bursts.
        stream.set_nodelay(true).ok();
        let conn_id = shared.connections.fetch_add(1, Ordering::Relaxed);
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        shared
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(conn_id, clone);
        let shared_for_conn = Arc::clone(shared);
        let conn = std::thread::Builder::new()
            .name("maya-wire-conn".into())
            .spawn(move || connection_loop(conn_id, stream, &shared_for_conn))
            .expect("spawn connection thread");
        // Reap finished connections here rather than only at shutdown,
        // so a long-running server's handle list tracks *concurrent*
        // connections, not every connection ever served. Partition
        // under the lock but join() outside it: is_finished() means
        // the join cannot block for long, but "cannot block for long"
        // held across a Mutex is exactly the discipline maya-lint's
        // guard-across-blocking-call rule forbids — a descheduled
        // exiting thread would stall every other conn_threads user.
        let finished: Vec<std::thread::JoinHandle<()>> = {
            let mut threads = shared
                .conn_threads
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            let mut alive = Vec::with_capacity(threads.len() + 1);
            let mut done = Vec::new();
            for handle in threads.drain(..) {
                if handle.is_finished() {
                    done.push(handle);
                } else {
                    alive.push(handle);
                }
            }
            alive.push(conn);
            *threads = alive;
            done
        };
        for handle in finished {
            let _ = handle.join();
        }
    }
}

/// Encodes a job's terminal verdict as its wire frame, under the
/// peer's protocol `version`: v5 response bodies carry the telemetry
/// span tree, replies to older peers omit it (their readers consume
/// exactly the pre-v5 layout). The layout is mirrored by
/// `WireJobOutcome::decode_*` on the client.
fn outcome_frame(id: u64, outcome: &JobOutcome, version: u16) -> OutFrame {
    let with_spans = version >= 5;
    fn opt_response(
        w: &mut compact::Writer,
        resp: &Option<maya_serve::Response>,
        with_spans: bool,
    ) {
        match resp {
            None => w.tag("none"),
            Some(r) => {
                w.tag("some");
                maya_serve::serdes::write_response_compat(r, w, with_spans);
            }
        }
    }
    let mut w = compact::Writer::new();
    let kind = match outcome {
        JobOutcome::Done(resp) => {
            w.tag("done");
            maya_serve::serdes::write_response_compat(resp, &mut w, with_spans);
            FrameKind::Response
        }
        JobOutcome::Cancelled(resp) => {
            w.tag("cancelled");
            opt_response(&mut w, resp, with_spans);
            FrameKind::Response
        }
        JobOutcome::Expired(resp) => {
            opt_response(&mut w, resp, with_spans);
            FrameKind::Expired
        }
    };
    OutFrame {
        kind,
        id,
        body: w.finish(),
    }
}

/// Streams one admitted job's progress and verdict into the writer.
fn pump_job(
    id: u64,
    handle: JobHandle,
    out: &mpsc::Sender<OutFrame>,
    jobs: &Mutex<HashMap<u64, JobControl>>,
    service: &MayaService,
    peer_version: &AtomicU16,
) {
    // The service-side job id, under which the worker recorded the
    // job's span tree (the frame id is the client's request id).
    let sid = handle.id();
    for event in handle.progress() {
        let mut w = compact::Writer::new();
        event.serialize(&mut w);
        if out
            .send(OutFrame {
                kind: FrameKind::Progress,
                id,
                body: w.finish(),
            })
            .is_err()
        {
            // Writer gone (client stopped reading): stop forwarding
            // progress but still drain the outcome below so the
            // service-side job is fully consumed.
            break;
        }
    }
    let verdict = handle.wait_outcome();
    // lint:allow(wall-clock-in-output): reply-latency telemetry anchor — timing is observability, not payload
    let reply_started = std::time::Instant::now();
    let frame = match &verdict {
        Ok(outcome) => outcome_frame(id, outcome, peer_version.load(Ordering::Relaxed)),
        // The worker died mid-request (panic): typed Stopped.
        Err(e) => OutFrame {
            kind: FrameKind::Error,
            id,
            body: serde::to_string(&RemoteError::from(e)),
        },
    };
    let _ = out.send(frame);
    // Extend the worker's span tree with the reply phase (encode +
    // hand-off to the connection writer), so a scraped tree accounts
    // for the job's full server-side wall clock.
    if let Ok(outcome) = &verdict {
        if let Some(root) = outcome.response().and_then(|r| r.telemetry.spans.first()) {
            let reply = reply_started.elapsed();
            let mut tree = root.clone();
            tree.children
                .push(SpanNode::leaf("reply", tree.duration, reply));
            tree.duration += reply;
            service.record_job_tree(sid, tree);
        }
    }
    jobs.lock().unwrap_or_else(|p| p.into_inner()).remove(&id);
}

/// Reader half of one connection; owns the writer thread and spawns a
/// pump per admitted job.
fn connection_loop(conn_id: u64, stream: TcpStream, shared: &Arc<ServerShared>) {
    let Ok(write_half) = stream.try_clone() else {
        shared
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&conn_id);
        return;
    };
    let (tx, rx) = mpsc::channel::<OutFrame>();
    let max_len = shared.max_frame_len;
    // The peer's protocol version, observed from its request frames
    // and echoed on every reply frame: a v2 client's reader rejects
    // any version but its own, and the reply bodies are identical
    // across the supported range, so echoing is what keeps a
    // down-level peer working. Until the first frame arrives the
    // server's own version is used (only connection-fatal errors can
    // be written that early).
    let peer_version = Arc::new(AtomicU16::new(VERSION));
    // This connection's in-flight jobs, shared with the pumps (each
    // removes its own entry at terminal) so `Cancel` frames — and the
    // writer's orphan cleanup — can reach them.
    let jobs: Arc<Mutex<HashMap<u64, JobControl>>> = Arc::new(Mutex::new(HashMap::new()));
    let writer = {
        let jobs = Arc::clone(&jobs);
        let peer_version = Arc::clone(&peer_version);
        std::thread::Builder::new()
            .name("maya-wire-write".into())
            .spawn(move || writer_loop(write_half, &rx, max_len, &jobs, &peer_version))
            .expect("spawn connection writer")
    };
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();

    let mut reader = std::io::BufReader::new(stream);
    loop {
        match read_frame(&mut reader, shared.max_frame_len) {
            Ok(None) => break, // client closed its write half
            Ok(Some(frame)) => {
                peer_version.store(frame.version, Ordering::Relaxed);
                // Id 0 is reserved for connection-scoped errors: a
                // request carrying it could never be answered
                // unambiguously (an id-0 error frame means "the
                // stream is dead", and a service rejection like
                // Overloaded would be misread as fatal). A conforming
                // client starts at 1, so reject the stream outright.
                if frame.id == 0 {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(OutFrame {
                        kind: FrameKind::Error,
                        id: 0,
                        body: serde::to_string(&RemoteError {
                            kind: crate::error::RemoteErrorKind::Protocol,
                            message: "frame id 0 is reserved for connection-scoped errors"
                                .to_string(),
                        }),
                    });
                    break;
                }
                match frame.kind {
                    // The frame's own header version governs the body
                    // decode: v2 peers send deadline-only JobOptions
                    // envelopes, which land with QoS defaults.
                    FrameKind::Request => match decode_submission(&frame.body, frame.version) {
                        Ok((req, opts)) => match shared.service.try_submit_with(req, opts) {
                            Ok(handle) => {
                                shared.admitted.fetch_add(1, Ordering::Relaxed);
                                jobs.lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .insert(frame.id, handle.control());
                                let out = tx.clone();
                                let jobs = Arc::clone(&jobs);
                                let service = Arc::clone(&shared.service);
                                let peer_version = Arc::clone(&peer_version);
                                let id = frame.id;
                                // Reap finished pumps here rather than
                                // only at connection close, so a
                                // long-lived pipelined connection's
                                // handle list tracks *in-flight* jobs,
                                // not every job ever served.
                                let mut alive = Vec::with_capacity(pumps.len() + 1);
                                for pump in pumps.drain(..) {
                                    if pump.is_finished() {
                                        let _ = pump.join();
                                    } else {
                                        alive.push(pump);
                                    }
                                }
                                pumps = alive;
                                pumps.push(
                                    std::thread::Builder::new()
                                        .name("maya-wire-job".into())
                                        .spawn(move || {
                                            pump_job(
                                                id,
                                                handle,
                                                &out,
                                                &jobs,
                                                &service,
                                                &peer_version,
                                            )
                                        })
                                        .expect("spawn job pump"),
                                );
                            }
                            Err(e) => {
                                if matches!(e, ServeError::Overloaded) {
                                    shared.overloaded.fetch_add(1, Ordering::Relaxed);
                                }
                                let _ = tx.send(OutFrame {
                                    kind: FrameKind::Error,
                                    id: frame.id,
                                    body: serde::to_string(&RemoteError::from(&e)),
                                });
                            }
                        },
                        Err(e) => {
                            // The frame parsed but its body did not:
                            // this request fails, the stream is intact.
                            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = tx.send(OutFrame {
                                kind: FrameKind::Error,
                                id: frame.id,
                                body: serde::to_string(&RemoteError::protocol(
                                    &ProtocolError::Malformed(e),
                                )),
                            });
                        }
                    },
                    FrameKind::Cancel => {
                        // Resolve against this connection's in-flight
                        // jobs. A miss is a benign race (the job
                        // already reached its terminal frame) and is
                        // ignored — the client sees the real verdict.
                        let control = jobs
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .get(&frame.id)
                            .cloned();
                        if let Some(control) = control {
                            shared.cancels.fetch_add(1, Ordering::Relaxed);
                            control.cancel();
                        }
                    }
                    FrameKind::Scrape => {
                        // Observability pull (v5): answer on the echoed
                        // id with the service's deterministic
                        // point-in-time snapshot. Request body is
                        // ignored (empty by convention).
                        shared.scrapes.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(OutFrame {
                            kind: FrameKind::Scrape,
                            id: frame.id,
                            body: serde::to_string(&shared.service.obs_snapshot()),
                        });
                    }
                    other => {
                        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(OutFrame {
                            kind: FrameKind::Error,
                            id: frame.id,
                            body: serde::to_string(&RemoteError::protocol(
                                &ProtocolError::UnexpectedFrame(other),
                            )),
                        });
                    }
                }
            }
            Err(ReadError::Protocol(p)) => {
                // The framing itself broke: report once on id 0 and
                // close this connection. Other connections — and the
                // service — are untouched.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(OutFrame {
                    kind: FrameKind::Error,
                    id: 0,
                    body: serde::to_string(&RemoteError::protocol(&p)),
                });
                break;
            }
            Err(ReadError::Io(_)) => break,
        }
    }
    // Dropping the reader's sender (after the pumps finish and drop
    // theirs) lets the writer drain in-flight frames and exit — this
    // is what makes shutdown (and client close) drain rather than
    // abort. The pumps finish on their own once the service answers
    // their jobs; the wrapped service keeps running throughout.
    for pump in pumps {
        let _ = pump.join();
    }
    drop(tx);
    let _ = writer.join();
    // Close the socket at the OS level and deregister. The explicit
    // shutdown matters: the registry (or a client) may still hold FD
    // clones, and the peer must see EOF now, not when the last clone
    // drops.
    let stream = reader.into_inner();
    let _ = stream.shutdown(Shutdown::Both);
    shared
        .conns
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&conn_id);
}

/// Writer half: serializes queued frames onto the socket in arrival
/// order. An id-0 error frame is connection-fatal: written, then the
/// writer stops.
///
/// When the writer exits with jobs still in flight, no frame of theirs
/// can ever reach the client — the peer is gone (write failure) or the
/// stream is condemned (id-0 error) — so it cancels them on the way
/// out. Workers stop burning on orphaned searches promptly, and the
/// pumps (blocked in `wait_outcome`) unwind. A *graceful* drain — the
/// client half-closing its writes, or [`WireServer::shutdown`] — never
/// takes this path: the writer outlives the pumps there, and in-flight
/// jobs deliver normally.
fn writer_loop(
    stream: TcpStream,
    rx: &mpsc::Receiver<OutFrame>,
    max_len: u32,
    jobs: &Mutex<HashMap<u64, JobControl>>,
    peer_version: &AtomicU16,
) {
    let mut w = std::io::BufWriter::new(stream);
    while let Ok(frame) = rx.recv() {
        let fatal = frame.kind == FrameKind::Error && frame.id == 0;
        let version = peer_version.load(Ordering::Relaxed);
        if write_frame_with_version(&mut w, version, frame.kind, frame.id, &frame.body, max_len)
            .is_err()
        {
            break; // peer gone; reader will notice on its next read
        }
        if fatal {
            break; // connection-fatal: stop after reporting
        }
    }
    for control in jobs.lock().unwrap_or_else(|p| p.into_inner()).values() {
        control.cancel();
    }
}
