//! [`WireServer`]: a blocking TCP front end wrapping any
//! [`MayaService`].
//!
//! One OS thread accepts connections; each connection gets a
//! **reader/writer thread pair** over `std::net::TcpStream`:
//!
//! - the *reader* parses request frames and admits them through
//!   [`MayaService::try_submit`] — the service's bounded admission
//!   queue is mapped straight onto the wire, so a full queue becomes a
//!   typed [`RemoteErrorKind::Overloaded`](crate::RemoteErrorKind)
//!   error frame (the connection stays up and later requests are
//!   served), never a dropped connection;
//! - the *writer* redeems the pending [`ResponseHandle`]s in admission
//!   order and streams response frames back, echoing each request's id
//!   — a client may pipeline any number of requests without waiting.
//!
//! Malformed input degrades proportionally: an undecodable request
//! *body* earns a per-request `protocol` error frame and the connection
//! keeps serving; a corrupt frame *header* (bad magic, version skew,
//! oversized length) means the stream itself can no longer be trusted,
//! so the server sends a connection-scoped error frame (id 0) and
//! closes that one connection. The server itself never dies on client
//! input.
//!
//! [`WireServer::shutdown`] is graceful: stop accepting, half-close
//! every connection's read side, let writers drain every in-flight
//! response, then join all threads.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use maya_serve::{MayaService, Request, ResponseHandle, ServeError};

use crate::error::RemoteError;
use crate::frame::{read_frame, write_frame, FrameKind, ProtocolError, ReadError};

/// What the connection reader hands its writer, in admission order.
enum WriterMsg {
    /// A pending service response for request `id`.
    Reply(u64, ResponseHandle),
    /// An immediate typed error for request `id` (id 0 =
    /// connection-scoped, the writer closes after sending it).
    Error(u64, RemoteError),
}

/// Counters for one [`WireServer`] (all cumulative).
#[derive(Clone, Copy, Debug, Default)]
pub struct WireServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request frames admitted into the service queue.
    pub admitted: u64,
    /// Requests shed with a typed `overloaded` error frame.
    pub overloaded: u64,
    /// Frames answered with a `protocol` error (malformed body or
    /// desynchronized stream).
    pub protocol_errors: u64,
}

struct ServerShared {
    service: Arc<MayaService>,
    max_frame_len: u32,
    stopping: AtomicBool,
    /// Live connections' stream clones (keyed by connection id), used
    /// to half-close readers at shutdown; each connection thread
    /// removes its own entry on exit.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    connections: AtomicU64,
    admitted: AtomicU64,
    overloaded: AtomicU64,
    protocol_errors: AtomicU64,
}

/// Configures a [`WireServer`] before binding.
pub struct WireServerBuilder {
    service: Arc<MayaService>,
    max_frame_len: u32,
}

impl WireServerBuilder {
    /// Overrides the max-frame guard (default
    /// [`crate::frame::DEFAULT_MAX_FRAME_LEN`]). Frames longer than
    /// this — in either direction — are refused.
    pub fn max_frame_len(mut self, bytes: u32) -> Self {
        self.max_frame_len = bytes;
        self
    }

    /// Binds the listener and starts the accept thread.
    pub fn bind(self, addr: impl ToSocketAddrs) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service: self.service,
            max_frame_len: self.max_frame_len,
            stopping: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            connections: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("maya-wire-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn accept thread")
        };
        Ok(WireServer {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// The blocking TCP serving front end (see module docs).
pub struct WireServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Starts configuring a server over `service`.
    pub fn builder(service: Arc<MayaService>) -> WireServerBuilder {
        WireServerBuilder {
            service,
            max_frame_len: crate::frame::DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// Binds with defaults: `WireServer::builder(service).bind(addr)`.
    /// Bind to port 0 to let the OS pick (see [`WireServer::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<MayaService>) -> std::io::Result<Self> {
        WireServer::builder(service).bind(addr)
    }

    /// The bound address (the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<MayaService> {
        &self.shared.service
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> WireServerStats {
        WireServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            overloaded: self.shared.overloaded.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, half-close every connection's
    /// read side (no new requests), drain and deliver every in-flight
    /// response, join all threads. Idempotent; also runs on drop.
    ///
    /// The wrapped [`MayaService`] is *not* stopped — it may be shared
    /// with in-process callers or another front end.
    pub fn shutdown(&mut self) {
        if self.shared.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Readers stop at EOF; writers then drain their queues.
        let conns =
            std::mem::take(&mut *self.shared.conns.lock().unwrap_or_else(|p| p.into_inner()));
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let threads = std::mem::take(
            &mut *self
                .shared
                .conn_threads
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        );
        for handle in threads {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept failures (EMFILE under fd
                // pressure, ENOBUFS, ...) would otherwise hot-loop
                // this thread at 100% CPU exactly when the machine is
                // struggling; back off briefly instead.
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        if shared.stopping.load(Ordering::SeqCst) {
            return; // the wake-up connection (or a late client)
        }
        // Response frames are latency-sensitive and already coalesced
        // by the writer's BufWriter; Nagle would add delayed-ACK
        // stalls (~40ms) to pipelined bursts.
        stream.set_nodelay(true).ok();
        let conn_id = shared.connections.fetch_add(1, Ordering::Relaxed);
        let Ok(clone) = stream.try_clone() else {
            continue;
        };
        shared
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(conn_id, clone);
        let shared_for_conn = Arc::clone(shared);
        let conn = std::thread::Builder::new()
            .name("maya-wire-conn".into())
            .spawn(move || connection_loop(conn_id, stream, &shared_for_conn))
            .expect("spawn connection thread");
        let mut threads = shared
            .conn_threads
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        // Reap finished connections here rather than only at shutdown,
        // so a long-running server's handle list tracks *concurrent*
        // connections, not every connection ever served.
        let mut alive = Vec::with_capacity(threads.len() + 1);
        for handle in threads.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                alive.push(handle);
            }
        }
        alive.push(conn);
        *threads = alive;
    }
}

/// Reader half of one connection; owns the writer thread.
fn connection_loop(conn_id: u64, stream: TcpStream, shared: &Arc<ServerShared>) {
    let Ok(write_half) = stream.try_clone() else {
        shared
            .conns
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&conn_id);
        return;
    };
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let max_len = shared.max_frame_len;
    let writer = std::thread::Builder::new()
        .name("maya-wire-write".into())
        .spawn(move || writer_loop(write_half, &rx, max_len))
        .expect("spawn connection writer");

    let mut reader = std::io::BufReader::new(stream);
    loop {
        match read_frame(&mut reader, shared.max_frame_len) {
            Ok(None) => break, // client closed its write half
            Ok(Some(frame)) => {
                // Id 0 is reserved for connection-scoped errors: a
                // request carrying it could never be answered
                // unambiguously (an id-0 error frame means "the
                // stream is dead", and a service rejection like
                // Overloaded would be misread as fatal). A conforming
                // client starts at 1, so reject the stream outright.
                if frame.id == 0 {
                    shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(WriterMsg::Error(
                        0,
                        RemoteError {
                            kind: crate::error::RemoteErrorKind::Protocol,
                            message: "frame id 0 is reserved for connection-scoped errors"
                                .to_string(),
                        },
                    ));
                    break;
                }
                let msg = match frame.kind {
                    FrameKind::Request => match serde::from_str::<Request>(&frame.body) {
                        Ok(req) => match shared.service.try_submit(req) {
                            Ok(handle) => {
                                shared.admitted.fetch_add(1, Ordering::Relaxed);
                                WriterMsg::Reply(frame.id, handle)
                            }
                            Err(e) => {
                                if matches!(e, ServeError::Overloaded) {
                                    shared.overloaded.fetch_add(1, Ordering::Relaxed);
                                }
                                WriterMsg::Error(frame.id, RemoteError::from(&e))
                            }
                        },
                        Err(e) => {
                            // The frame parsed but its body did not:
                            // this request fails, the stream is intact.
                            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            WriterMsg::Error(
                                frame.id,
                                RemoteError::protocol(&ProtocolError::Malformed(e)),
                            )
                        }
                    },
                    other => {
                        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        WriterMsg::Error(
                            frame.id,
                            RemoteError::protocol(&ProtocolError::UnexpectedFrame(other)),
                        )
                    }
                };
                if tx.send(msg).is_err() {
                    break; // writer died (client stopped reading)
                }
            }
            Err(ReadError::Protocol(p)) => {
                // The framing itself broke: report once on id 0 and
                // close this connection. Other connections — and the
                // service — are untouched.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(WriterMsg::Error(0, RemoteError::protocol(&p)));
                break;
            }
            Err(ReadError::Io(_)) => break,
        }
    }
    // Dropping the sender lets the writer drain in-flight responses
    // and exit — this is what makes shutdown (and client close) drain
    // rather than abort.
    drop(tx);
    let _ = writer.join();
    // Close the socket at the OS level and deregister. The explicit
    // shutdown matters: the registry (or a client) may still hold FD
    // clones, and the peer must see EOF now, not when the last clone
    // drops.
    let stream = reader.into_inner();
    let _ = stream.shutdown(Shutdown::Both);
    shared
        .conns
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .remove(&conn_id);
}

/// Writer half: redeems handles in admission order, one frame per
/// response, echoing request ids.
fn writer_loop(stream: TcpStream, rx: &mpsc::Receiver<WriterMsg>, max_len: u32) {
    let mut w = std::io::BufWriter::new(stream);
    while let Ok(msg) = rx.recv() {
        let result = match msg {
            WriterMsg::Reply(id, handle) => match handle.wait() {
                Ok(response) => write_frame(
                    &mut w,
                    FrameKind::Response,
                    id,
                    &serde::to_string(&response),
                    max_len,
                ),
                // The worker died mid-request (panic): typed Stopped.
                Err(e) => write_frame(
                    &mut w,
                    FrameKind::Error,
                    id,
                    &serde::to_string(&RemoteError::from(&e)),
                    max_len,
                ),
            },
            WriterMsg::Error(id, remote) => {
                let r = write_frame(
                    &mut w,
                    FrameKind::Error,
                    id,
                    &serde::to_string(&remote),
                    max_len,
                );
                if id == 0 {
                    break; // connection-fatal: stop after reporting
                }
                r
            }
        };
        if result.is_err() {
            break; // peer gone; reader will notice on its next read
        }
    }
}
