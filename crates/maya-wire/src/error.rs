//! Typed errors crossing (and reported by) the wire.
//!
//! [`RemoteError`] is the wire form of everything that can go wrong on
//! the serving side: service-boundary failures
//! ([`maya_serve::ServeError`] — `Overloaded`, `UnknownTarget`, ...),
//! pipeline failures inside a payload ([`maya::MayaError`]), and
//! protocol failures the server detected in the client's own frames.
//! The original error trees hold process-local state (`std::io::Error`,
//! estimator internals), so the wire carries a **stable kind code plus
//! the rendered message** — enough for a client to branch on the kind
//! (retry on [`RemoteErrorKind::Overloaded`], fix the request on
//! [`RemoteErrorKind::UnknownTarget`]) and log the rest.
//!
//! [`WireError`] is the client-facing sum: local I/O, local protocol
//! violations, a typed remote error, or a connection that died with the
//! request in flight.

use serde::{compact, Deserialize, Serialize};

use crate::frame::ProtocolError;

/// Stable category of a [`RemoteError`]. The wire codes line up with
/// `maya_serve::serdes::error_code` and `maya::serdes::error_code`; the
/// two namespaces are disjoint and `protocol` is wire-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoteErrorKind {
    /// `ServeError::UnknownTarget`: the request named an unregistered
    /// cluster target.
    UnknownTarget,
    /// `ServeError::Overloaded`: the service's bounded admission queue
    /// was full. The request was *not* executed; retry later.
    Overloaded,
    /// `ServeError::QuotaExceeded`: the submission's tenant is over
    /// its per-tenant admission quota. The request was *not* executed;
    /// unlike `Overloaded`, blind retry does not help until this
    /// tenant's own queued jobs drain.
    QuotaExceeded,
    /// `ServeError::Stopped`: the service is shutting down (or the
    /// request's worker died mid-execution).
    Stopped,
    /// `ServeError::DuplicateTarget` (build-time; not normally seen
    /// over the wire).
    DuplicateTarget,
    /// `ServeError::NoTargets` (build-time).
    NoTargets,
    /// `ServeError::Cancelled` / `MayaError::Cancelled`: the job (or
    /// one prediction slot of it) was cooperatively cancelled before
    /// completing.
    Cancelled,
    /// `ServeError::Expired`: the job's deadline elapsed.
    Expired,
    /// `ServeError::CustomEstimatorSpansClusters` (build-time).
    CustomEstimatorSpansClusters,
    /// A memo-snapshot failure (`ServeError::Snapshot` /
    /// `MayaError::Snapshot`).
    Snapshot,
    /// `MayaError::Config`: the job violates divisibility/topology
    /// rules.
    Config,
    /// `MayaError::Device`: a virtual device call failed.
    Device,
    /// `MayaError::Collate`: trace collation failed.
    Collate,
    /// `MayaError::Sim`: simulation failed.
    Sim,
    /// `MayaError::Exec`: ground-truth execution failed.
    Exec,
    /// `MayaError::WorldMismatch`: the job's world size disagrees with
    /// the target cluster.
    WorldMismatch,
    /// The server could not parse a frame the client sent (the echoed
    /// id tells which request; id 0 means the stream is desynchronized
    /// and the server is closing the connection).
    Protocol,
}

impl RemoteErrorKind {
    /// The stable wire code.
    pub fn code(self) -> &'static str {
        match self {
            RemoteErrorKind::UnknownTarget => "unknown_target",
            RemoteErrorKind::Overloaded => "overloaded",
            RemoteErrorKind::QuotaExceeded => "quota_exceeded",
            RemoteErrorKind::Stopped => "stopped",
            RemoteErrorKind::DuplicateTarget => "duplicate_target",
            RemoteErrorKind::NoTargets => "no_targets",
            RemoteErrorKind::Cancelled => "cancelled",
            RemoteErrorKind::Expired => "expired",
            RemoteErrorKind::CustomEstimatorSpansClusters => "custom_estimator_spans_clusters",
            RemoteErrorKind::Snapshot => "snapshot",
            RemoteErrorKind::Config => "config",
            RemoteErrorKind::Device => "device",
            RemoteErrorKind::Collate => "collate",
            RemoteErrorKind::Sim => "sim",
            RemoteErrorKind::Exec => "exec",
            RemoteErrorKind::WorldMismatch => "world_mismatch",
            RemoteErrorKind::Protocol => "protocol",
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: &str) -> Option<Self> {
        Some(match code {
            "unknown_target" => RemoteErrorKind::UnknownTarget,
            "overloaded" => RemoteErrorKind::Overloaded,
            "quota_exceeded" => RemoteErrorKind::QuotaExceeded,
            "stopped" => RemoteErrorKind::Stopped,
            "duplicate_target" => RemoteErrorKind::DuplicateTarget,
            "no_targets" => RemoteErrorKind::NoTargets,
            "cancelled" => RemoteErrorKind::Cancelled,
            "expired" => RemoteErrorKind::Expired,
            "custom_estimator_spans_clusters" => RemoteErrorKind::CustomEstimatorSpansClusters,
            "snapshot" => RemoteErrorKind::Snapshot,
            "config" => RemoteErrorKind::Config,
            "device" => RemoteErrorKind::Device,
            "collate" => RemoteErrorKind::Collate,
            "sim" => RemoteErrorKind::Sim,
            "exec" => RemoteErrorKind::Exec,
            "world_mismatch" => RemoteErrorKind::WorldMismatch,
            "protocol" => RemoteErrorKind::Protocol,
            _ => return None,
        })
    }

    /// Every kind (for exhaustive tests).
    pub fn all() -> [RemoteErrorKind; 17] {
        [
            RemoteErrorKind::UnknownTarget,
            RemoteErrorKind::Overloaded,
            RemoteErrorKind::QuotaExceeded,
            RemoteErrorKind::Stopped,
            RemoteErrorKind::DuplicateTarget,
            RemoteErrorKind::NoTargets,
            RemoteErrorKind::Cancelled,
            RemoteErrorKind::Expired,
            RemoteErrorKind::CustomEstimatorSpansClusters,
            RemoteErrorKind::Snapshot,
            RemoteErrorKind::Config,
            RemoteErrorKind::Device,
            RemoteErrorKind::Collate,
            RemoteErrorKind::Sim,
            RemoteErrorKind::Exec,
            RemoteErrorKind::WorldMismatch,
            RemoteErrorKind::Protocol,
        ]
    }
}

/// A typed error reported by the serving side (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteError {
    /// Stable category; branch on this.
    pub kind: RemoteErrorKind,
    /// The server-side rendered message (diagnostic, not stable).
    pub message: String,
}

impl RemoteError {
    /// Builds a protocol-kind error from a local [`ProtocolError`] (the
    /// server reports the client's malformed frames this way).
    pub fn protocol(e: &ProtocolError) -> Self {
        RemoteError {
            kind: RemoteErrorKind::Protocol,
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "remote {}: {}", self.kind.code(), self.message)
    }
}

impl std::error::Error for RemoteError {}

impl From<&maya_serve::ServeError> for RemoteError {
    fn from(e: &maya_serve::ServeError) -> Self {
        RemoteError {
            kind: RemoteErrorKind::from_code(maya_serve::serdes::error_code(e))
                .expect("every ServeError code is a RemoteErrorKind"),
            message: e.to_string(),
        }
    }
}

impl From<&maya::MayaError> for RemoteError {
    fn from(e: &maya::MayaError) -> Self {
        RemoteError {
            kind: RemoteErrorKind::from_code(maya::serdes::error_code(e))
                .expect("every MayaError code is a RemoteErrorKind"),
            message: e.to_string(),
        }
    }
}

/// Same layout `ServeError`/`MayaError` serialize with: code + message.
impl Serialize for RemoteError {
    fn serialize(&self, w: &mut compact::Writer) {
        w.tag(self.kind.code());
        w.str_token(&self.message);
    }
}

impl<'de> Deserialize<'de> for RemoteError {
    fn deserialize(r: &mut compact::Reader<'de>) -> Result<Self, compact::Error> {
        let t = r.raw_token()?;
        let kind =
            RemoteErrorKind::from_code(t).ok_or_else(|| compact::Error::parse(t, "error code"))?;
        Ok(RemoteError {
            kind,
            message: r.str_token()?,
        })
    }
}

/// A wire client call failed (see module docs).
#[derive(Debug)]
pub enum WireError {
    /// Local transport failure.
    Io(std::io::Error),
    /// The *peer's* bytes violated the protocol (bad magic, version
    /// skew, oversized frame, undecodable body...).
    Protocol(ProtocolError),
    /// The server answered with a typed error instead of a response.
    Remote(RemoteError),
    /// The connection closed (or the client was shut down) before this
    /// request's response arrived. The request may or may not have
    /// executed on the server.
    ConnectionClosed,
}

impl WireError {
    /// Whether this is the server's typed load-shed signal — the one
    /// failure that is always safe to retry after backoff (the request
    /// never entered the admission queue).
    pub fn is_overloaded(&self) -> bool {
        matches!(
            self,
            WireError::Remote(RemoteError {
                kind: RemoteErrorKind::Overloaded,
                ..
            })
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Protocol(e) => write!(f, "wire protocol error: {e}"),
            WireError::Remote(e) => write!(f, "{e}"),
            WireError::ConnectionClosed => write!(f, "connection closed before the response"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<ProtocolError> for WireError {
    fn from(e: ProtocolError) -> Self {
        WireError::Protocol(e)
    }
}

impl From<crate::frame::ReadError> for WireError {
    fn from(e: crate::frame::ReadError) -> Self {
        match e {
            crate::frame::ReadError::Io(io) => WireError::Io(io),
            crate::frame::ReadError::Protocol(p) => WireError::Protocol(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for kind in RemoteErrorKind::all() {
            assert_eq!(RemoteErrorKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(RemoteErrorKind::from_code("nonsense"), None);
    }

    #[test]
    fn remote_errors_round_trip_identity() {
        for kind in RemoteErrorKind::all() {
            let e = RemoteError {
                kind,
                message: format!("m sg\nwith {} specials %", kind.code()),
            };
            let back: RemoteError = serde::from_str(&serde::to_string(&e)).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn serve_errors_decode_as_remote_errors() {
        use maya_serve::ServeError;
        for e in [
            ServeError::UnknownTarget("eu/h100".into()),
            ServeError::Overloaded,
            ServeError::QuotaExceeded {
                tenant: "burst".into(),
            },
            ServeError::Stopped,
            ServeError::DuplicateTarget("x".into()),
            ServeError::NoTargets,
            ServeError::Cancelled,
            ServeError::Expired,
            ServeError::CustomEstimatorSpansClusters,
        ] {
            let text = serde::to_string(&e);
            let remote: RemoteError = serde::from_str(&text).expect("decode");
            assert_eq!(remote, RemoteError::from(&e), "{e}");
        }
    }

    #[test]
    fn maya_errors_decode_as_remote_errors() {
        let e = maya::MayaError::WorldMismatch { job: 8, cluster: 2 };
        let remote: RemoteError = serde::from_str(&serde::to_string(&e)).unwrap();
        assert_eq!(remote.kind, RemoteErrorKind::WorldMismatch);
        assert_eq!(remote.message, e.to_string());
        assert_eq!(remote, RemoteError::from(&e));
    }

    #[test]
    fn overload_detection() {
        let overloaded = WireError::Remote(RemoteError::from(&maya_serve::ServeError::Overloaded));
        assert!(overloaded.is_overloaded());
        assert!(!WireError::ConnectionClosed.is_overloaded());
    }
}
