//! Maya-Wire: the framed TCP serving front end for
//! [`maya_serve::MayaService`].
//!
//! `maya-serve` deliberately kept the service transport-agnostic; this
//! crate puts it on a real socket. Three layers:
//!
//! - **[`frame`]** — a length-prefixed, versioned binary frame header
//!   (magic, version, kind, request id, length) around bodies encoded
//!   in the vendored serde's compact token format, with a max-frame
//!   guard and typed [`ProtocolError`]s for malformed/oversized/
//!   truncated input;
//! - **[`server::WireServer`]** — a blocking `std::net` server wrapping
//!   any [`MayaService`]: pipelined request ids, the service's bounded
//!   admission queue mapped to typed `overloaded` error frames, the
//!   full job vocabulary (per-job deadlines, `Progress` streaming for
//!   long searches, cooperative `Cancel`, `Expired` shedding), and
//!   graceful shutdown that drains in-flight requests;
//! - **[`client::WireClient`]** — a typed client with connection reuse
//!   and pipelining whose [`client::WireJob`] handle mirrors the
//!   in-process `maya_serve::JobHandle` (poll / cancel / progress /
//!   wait); responses carry the full per-request
//!   [`maya_serve::Telemetry`] and payloads byte-identical to a direct
//!   in-process `MayaService` call.
//!
//! ```no_run
//! use std::sync::Arc;
//! use maya::EmulationSpec;
//! use maya_hw::ClusterSpec;
//! use maya_serve::{MayaService, Request};
//! use maya_torchlet::TrainingJob;
//! use maya_wire::{WireClient, WireServer};
//!
//! let service = Arc::new(
//!     MayaService::builder()
//!         .target("h100-1", EmulationSpec::new(ClusterSpec::h100(1, 1)))
//!         .build()
//!         .unwrap(),
//! );
//! let server = WireServer::bind("127.0.0.1:0", service).unwrap();
//! let client = WireClient::connect(server.local_addr()).unwrap();
//! let response = client
//!     .call(&Request::Predict {
//!         target: "h100-1".into(),
//!         jobs: vec![TrainingJob::smoke()],
//!     })
//!     .unwrap();
//! assert!(response.predictions().unwrap()[0].is_ok());
//! ```
//!
//! The request vocabulary is re-exported, so a pure client binary can
//! depend on `maya-wire` alone and still build jobs and spaces:
//! [`Request`], [`TrainingJob`], [`ModelSpec`], [`ParallelConfig`],
//! [`ConfigSpace`], [`AlgorithmKind`].

pub mod client;
pub mod error;
pub mod frame;
pub mod message;
pub mod server;

pub use client::{Backoff, WireClient, WireJob};
pub use error::{RemoteError, RemoteErrorKind, WireError};
pub use frame::{Frame, FrameKind, ProtocolError, DEFAULT_MAX_FRAME_LEN, MIN_VERSION, VERSION};
pub use message::{decode_submission, WireJobOutcome, WirePayload, WireResponse};
pub use server::{WireServer, WireServerBuilder, WireServerStats};

/// The pre-job-API name for the client-side ticket, kept for one
/// release.
#[deprecated(
    since = "0.3.0",
    note = "renamed to WireJob; submit() now returns a remote job handle \
            (poll/cancel/progress/deadline); `wait()` behaves as before"
)]
pub type PendingResponse = WireJob;

// Client-side request-construction vocabulary, re-exported so remote
// callers need only this crate.
pub use maya_search::{AlgorithmKind, ConfigSpace};
pub use maya_serve::{
    JobOptions, JobState, MayaService, MeasureOutcome, ObsConfig, ObsSnapshot, Priority, Request,
    SearchProgress, SpanNode, Telemetry, TenantStats,
};
pub use maya_torchlet::{FrameworkFlavor, ModelSpec, ParallelConfig, TrainingJob};
