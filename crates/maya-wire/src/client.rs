//! [`WireClient`]: a typed, pipelined client exposing the job-handle
//! API of `maya-serve` over a [`WireServer`](crate::WireServer)
//! connection.
//!
//! One TCP connection is **reused for everything**: the client is
//! `Sync`, any number of threads may [`WireClient::submit`]
//! concurrently, and each submission gets a fresh request id. A
//! background reader thread demultiplexes incoming frames back to their
//! [`WireJob`]s by echoed id — `Progress` frames stream into
//! [`WireJob::next_progress`], the terminal `Response` / `Expired` /
//! `Error` frame resolves [`WireJob::wait_outcome`] — so N jobs can be
//! in flight on one socket while a long search streams increments.
//!
//! The handle mirrors the in-process `maya_serve::JobHandle`:
//! [`WireJob::poll`], [`WireJob::cancel`] (sent as a `Cancel` frame),
//! progress iteration, and blocking [`WireJob::wait`] /
//! [`WireJob::wait_outcome`]; [`WireClient::submit_with`] carries a
//! per-job deadline the server enforces (queue wait counts against
//! it).
//!
//! Failure is typed end to end: a full server queue surfaces as
//! [`WireError::Remote`] with
//! [`RemoteErrorKind::Overloaded`](crate::RemoteErrorKind) — the retry
//! signal [`WireClient::submit_with_retry`] backs off on — per-request
//! pipeline errors arrive inside the payload as
//! [`crate::RemoteError`]s, and a torn connection resolves every
//! in-flight request with [`WireError::ConnectionClosed`].

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{compact, Serialize};

use maya_serve::{JobOptions, JobState, Request, SearchProgress};

use crate::error::{RemoteError, RemoteErrorKind, WireError};
use crate::frame::{read_frame, write_frame, FrameKind, ProtocolError, ReadError};
use crate::message::{WireJobOutcome, WireResponse};

/// What the demux reader delivers to one job's channel.
enum JobEvent {
    Progress(SearchProgress),
    Terminal(Result<WireJobOutcome, RemoteError>),
    /// The raw body of a `Scrape` reply (terminal for its id; only
    /// ever delivered to [`WireClient::scrape_raw`]'s waiter).
    Scrape(String),
}

type PendingMap = HashMap<u64, mpsc::Sender<JobEvent>>;

struct ClientShared {
    writer: Mutex<TcpStream>,
    /// `None` once the connection is known dead — late submitters get
    /// [`WireError::ConnectionClosed`] instead of hanging.
    pending: Mutex<Option<PendingMap>>,
    next_id: AtomicU64,
    max_frame_len: u32,
}

impl ClientShared {
    /// Tears down the pending map; every waiter resolves with
    /// `ConnectionClosed` (their senders drop here).
    fn poison(&self) {
        let _ = self
            .pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
    }

    /// Writes one frame on the shared connection, mapping local
    /// protocol violations out of the io error.
    fn write(&self, kind: FrameKind, id: u64, body: &str) -> Result<(), WireError> {
        let result = {
            let mut w = self.writer.lock().unwrap_or_else(|p| p.into_inner());
            write_frame(&mut *w, kind, id, body, self.max_frame_len)
        };
        result.map_err(|e| {
            match e
                .get_ref()
                .and_then(|inner| inner.downcast_ref::<ProtocolError>().cloned())
            {
                Some(p) => WireError::Protocol(p),
                None => WireError::Io(e),
            }
        })
    }
}

/// Retry policy for [`WireClient::submit_with_retry`]: bounded
/// exponential backoff on the server's typed `overloaded` signal.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// Total attempts (the first try included; min 1).
    pub attempts: u32,
    /// Sleep before the first retry.
    pub initial: Duration,
    /// Delay multiplier per retry (min 1).
    pub factor: u32,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
}

impl Default for Backoff {
    /// 6 attempts: 2ms, 4ms, 8ms, 16ms, 32ms between them.
    fn default() -> Self {
        Backoff {
            attempts: 6,
            initial: Duration::from_millis(2),
            factor: 2,
            max_delay: Duration::from_millis(250),
        }
    }
}

/// The remote job handle returned by [`WireClient::submit`] (see
/// module docs). Dropping it abandons the job client-side: the server
/// still runs it, later frames for its id are discarded by the demux.
pub struct WireJob {
    id: u64,
    shared: Arc<ClientShared>,
    rx: mpsc::Receiver<JobEvent>,
    /// Terminal verdict observed while iterating progress, buffered
    /// for the eventual `wait_outcome`.
    terminal: Option<Result<WireJobOutcome, RemoteError>>,
    /// Whether the connection died before a terminal frame.
    closed: bool,
    /// Whether any progress frame has arrived (drives `poll`).
    progressed: bool,
}

impl WireJob {
    /// The request id this job travels under.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Best-effort remote state, without blocking. A wire client sees
    /// only frames: `Queued` until the first progress frame, `Running`
    /// after it, and the true terminal state once the verdict arrives.
    /// A job that ended in a remote *error* — or whose connection tore
    /// before a verdict — reads as `Failed` here; redeem
    /// [`WireJob::wait_outcome`] for the typed error.
    pub fn poll(&mut self) -> JobState {
        while self.terminal.is_none() && !self.closed {
            match self.rx.try_recv() {
                Ok(event) => self.absorb(event),
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => self.closed = true,
            }
        }
        match &self.terminal {
            Some(Ok(outcome)) => outcome.state(),
            Some(Err(_)) => JobState::Failed,
            None if self.closed => JobState::Failed,
            None if self.progressed => JobState::Running,
            None => JobState::Queued,
        }
    }

    /// Asks the server to cooperatively cancel this job. No direct
    /// acknowledgement: the terminal verdict ([`WireJob::wait_outcome`])
    /// reports `Cancelled` — with any committed-prefix response — or
    /// `Done` if the job beat the cancellation.
    pub fn cancel(&self) -> Result<(), WireError> {
        self.shared.write(FrameKind::Cancel, self.id, "")
    }

    fn absorb(&mut self, event: JobEvent) {
        match event {
            JobEvent::Progress(_) => self.progressed = true,
            JobEvent::Terminal(t) => self.terminal = Some(t),
            // Scrape replies only ever target scrape waiters' ids.
            JobEvent::Scrape(_) => {}
        }
    }

    /// Blocks for the next `Progress` event. `None` once the job's
    /// terminal frame (buffered for [`WireJob::wait_outcome`]) or a
    /// connection loss has been seen — the progress stream is over.
    pub fn next_progress(&mut self) -> Option<SearchProgress> {
        if self.terminal.is_some() || self.closed {
            return None;
        }
        match self.rx.recv() {
            Ok(JobEvent::Progress(p)) => {
                self.progressed = true;
                Some(p)
            }
            Ok(JobEvent::Terminal(t)) => {
                self.terminal = Some(t);
                None
            }
            // Never routed to a job id; skip defensively.
            Ok(JobEvent::Scrape(_)) => self.next_progress(),
            Err(_) => {
                self.closed = true;
                None
            }
        }
    }

    /// A blocking iterator over the remaining progress events.
    pub fn progress(&mut self) -> impl Iterator<Item = SearchProgress> + '_ {
        std::iter::from_fn(move || self.next_progress())
    }

    /// Blocks until the job's terminal frame arrives and returns the
    /// full verdict. Progress events not consumed through
    /// [`WireJob::next_progress`] are discarded here.
    pub fn wait_outcome(mut self) -> Result<WireJobOutcome, WireError> {
        loop {
            if let Some(terminal) = self.terminal.take() {
                return terminal.map_err(WireError::Remote);
            }
            if self.closed {
                return Err(WireError::ConnectionClosed);
            }
            match self.rx.recv() {
                Ok(event) => self.absorb(event),
                Err(_) => self.closed = true,
            }
        }
    }

    /// Blocks until done and returns the response — the pre-job-API
    /// blocking call. `Cancelled` and `Expired` verdicts surface as
    /// typed [`WireError::Remote`] errors
    /// ([`RemoteErrorKind::Cancelled`] / [`RemoteErrorKind::Expired`]);
    /// use [`WireJob::wait_outcome`] to also receive the
    /// committed-prefix response those verdicts may carry.
    pub fn wait(self) -> Result<WireResponse, WireError> {
        match self.wait_outcome()? {
            WireJobOutcome::Done(resp) => Ok(resp),
            WireJobOutcome::Cancelled(_) => Err(WireError::Remote(RemoteError {
                kind: RemoteErrorKind::Cancelled,
                message: "job cancelled".to_string(),
            })),
            WireJobOutcome::Expired(_) => Err(WireError::Remote(RemoteError {
                kind: RemoteErrorKind::Expired,
                message: "job deadline expired".to_string(),
            })),
        }
    }
}

/// The typed TCP client (see module docs).
pub struct WireClient {
    shared: Arc<ClientShared>,
    local_addr: Option<SocketAddr>,
    reader: Option<JoinHandle<()>>,
}

impl WireClient {
    /// Connects with the default max-frame guard.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        WireClient::connect_with(addr, crate::frame::DEFAULT_MAX_FRAME_LEN)
    }

    /// Connects with an explicit max-frame guard (must admit the
    /// largest response the workload can produce; the server's guard
    /// governs requests).
    pub fn connect_with(addr: impl ToSocketAddrs, max_frame_len: u32) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let local_addr = stream.local_addr().ok();
        let read_half = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(stream),
            pending: Mutex::new(Some(HashMap::new())),
            next_id: AtomicU64::new(1),
            max_frame_len,
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("maya-wire-client".into())
                .spawn(move || reader_loop(read_half, &shared))
                .expect("spawn client reader")
        };
        Ok(WireClient {
            shared,
            local_addr,
            reader: Some(reader),
        })
    }

    /// This end's socket address.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Sends one request without waiting; any number of jobs may be in
    /// flight while their responses (and progress streams) are
    /// redeemed in any order.
    pub fn submit(&self, request: &Request) -> Result<WireJob, WireError> {
        self.submit_with(request, JobOptions::default())
    }

    /// [`WireClient::submit`] with per-job options. The deadline is
    /// enforced on the server: queue wait counts against it, a job
    /// expiring in the queue is shed without running, and a search
    /// outliving it stops at a wave boundary with its committed
    /// prefix.
    pub fn submit_with(&self, request: &Request, opts: JobOptions) -> Result<WireJob, WireError> {
        let mut w = compact::Writer::new();
        opts.serialize(&mut w);
        request.serialize(&mut w);
        let body = w.finish();
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            let mut pending = self
                .shared
                .pending
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            pending
                .as_mut()
                .ok_or(WireError::ConnectionClosed)?
                .insert(id, tx);
        }
        if let Err(e) = self.shared.write(FrameKind::Request, id, &body) {
            // Unregister so the map does not leak a dead sender.
            if let Some(pending) = self
                .shared
                .pending
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .as_mut()
            {
                pending.remove(&id);
            }
            return Err(e);
        }
        Ok(WireJob {
            id,
            shared: Arc::clone(&self.shared),
            rx,
            terminal: None,
            closed: false,
            progressed: false,
        })
    }

    /// Submit + wait in one call.
    pub fn call(&self, request: &Request) -> Result<WireResponse, WireError> {
        self.submit(request)?.wait()
    }

    /// Pulls the server's point-in-time observability snapshot
    /// (protocol v5): every registered counter, gauge and histogram,
    /// plus the recent job span trees when the server records spans.
    /// Blocks until the `Scrape` reply arrives; jobs pipelined on the
    /// same connection keep streaming around it.
    pub fn scrape(&self) -> Result<maya_serve::ObsSnapshot, WireError> {
        let body = self.scrape_raw()?;
        serde::from_str(&body).map_err(|e| WireError::Protocol(ProtocolError::Malformed(e)))
    }

    /// [`WireClient::scrape`] without decoding: the exact snapshot
    /// bytes the server wrote. Two scrapes of a quiesced server are
    /// byte-identical to each other and to an in-process
    /// `MayaService::obs_snapshot()` serialization — the property the
    /// integration tests pin.
    pub fn scrape_raw(&self) -> Result<String, WireError> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            let mut pending = self
                .shared
                .pending
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            pending
                .as_mut()
                .ok_or(WireError::ConnectionClosed)?
                .insert(id, tx);
        }
        if let Err(e) = self.shared.write(FrameKind::Scrape, id, "") {
            if let Some(pending) = self
                .shared
                .pending
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .as_mut()
            {
                pending.remove(&id);
            }
            return Err(e);
        }
        loop {
            match rx.recv() {
                Ok(JobEvent::Scrape(body)) => return Ok(body),
                Ok(JobEvent::Terminal(Err(remote))) => return Err(WireError::Remote(remote)),
                // A server answers a scrape id with a scrape or an
                // error frame only; ignore anything else defensively.
                Ok(_) => {}
                Err(_) => return Err(WireError::ConnectionClosed),
            }
        }
    }

    /// Submit + wait, retrying with bounded exponential backoff while
    /// the server sheds load ([`WireError::is_overloaded`] — the one
    /// failure that is always safe to retry, since a shed request
    /// never entered the admission queue). Any other error, and any
    /// response, returns immediately. Blocks for up to the sum of the
    /// policy's delays plus the winning attempt's service time.
    pub fn submit_with_retry(
        &self,
        request: &Request,
        backoff: Backoff,
    ) -> Result<WireResponse, WireError> {
        self.submit_with_retry_opts(request, JobOptions::default(), backoff)
    }

    /// [`WireClient::submit_with_retry`] with per-job options. The
    /// options' deadline budget spans the *whole* retry loop, measured
    /// from this call: total backoff is capped at the remaining
    /// budget, each attempt carries only what is left of it (so the
    /// server's deadline enforcement matches the client's clock), and
    /// once the budget is gone the typed expired error
    /// ([`RemoteErrorKind::Expired`]) is returned client-side instead
    /// of sleeping on — or submitting — a job the service would only
    /// shed as `Expired` on arrival.
    pub fn submit_with_retry_opts(
        &self,
        request: &Request,
        opts: JobOptions,
        backoff: Backoff,
    ) -> Result<WireResponse, WireError> {
        fn budget_exhausted() -> WireError {
            WireError::Remote(RemoteError {
                kind: RemoteErrorKind::Expired,
                message: "job deadline expired before the service admitted the request".to_string(),
            })
        }
        // lint:allow(wall-clock-in-output): client-side retry budget deadline — local scheduling, never serialized
        let expires = opts.deadline.map(|d| std::time::Instant::now() + d);
        let attempts = backoff.attempts.max(1);
        let mut delay = backoff.initial;
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let mut sleep = delay.min(backoff.max_delay);
                if let Some(expires) = expires {
                    // Never sleep past the deadline: the remainder of
                    // the budget caps this delay, and a budget that is
                    // already gone ends the loop with the typed
                    // expired verdict.
                    // lint:allow(wall-clock-in-output): retry budget bookkeeping — caps the backoff sleep
                    let remaining = expires.saturating_duration_since(std::time::Instant::now());
                    if remaining.is_zero() {
                        return Err(budget_exhausted());
                    }
                    sleep = sleep.min(remaining);
                }
                std::thread::sleep(sleep);
                delay = delay
                    .saturating_mul(backoff.factor.max(1))
                    .min(backoff.max_delay);
            }
            let attempt_opts = match expires {
                Some(expires) => {
                    // lint:allow(wall-clock-in-output): remaining deadline forwarded to the server — deadlines are wall-clock by contract
                    let remaining = expires.saturating_duration_since(std::time::Instant::now());
                    if remaining.is_zero() {
                        return Err(budget_exhausted());
                    }
                    JobOptions {
                        deadline: Some(remaining),
                        ..opts.clone()
                    }
                }
                None => opts.clone(),
            };
            match self.submit_with(request, attempt_opts)?.wait() {
                Err(e) if e.is_overloaded() => last = Some(e),
                verdict => return verdict,
            }
        }
        // `attempts >= 1`, and the only way out of the loop without
        // returning is an overloaded verdict stored in `last`; the
        // fallback covers the unreachable None without a panic path.
        Err(last.unwrap_or_else(budget_exhausted))
    }

    /// Half-closes the write side: the server sees end-of-requests,
    /// drains what is in flight, and responses already pipelined can
    /// still be redeemed. Dropping the client closes both directions.
    pub fn finish_writes(&self) {
        let w = self.shared.writer.lock().unwrap_or_else(|p| p.into_inner());
        let _ = w.shutdown(Shutdown::Write);
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        {
            let w = self.shared.writer.lock().unwrap_or_else(|p| p.into_inner());
            let _ = w.shutdown(Shutdown::Both);
        }
        self.shared.poison();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Demultiplexes incoming frames to pending jobs by echoed id.
fn reader_loop(stream: TcpStream, shared: &Arc<ClientShared>) {
    let mut r = std::io::BufReader::new(stream);
    loop {
        match read_frame(&mut r, shared.max_frame_len) {
            Ok(Some(frame)) => {
                let malformed = |e| {
                    JobEvent::Terminal(Err(RemoteError::protocol(&ProtocolError::Malformed(e))))
                };
                // `Some(event)`: deliver to the job and, for terminal
                // events, retire its pending entry. `None`: a frame
                // kind a server never sends this way; ignore.
                let event: Option<JobEvent> = match frame.kind {
                    // The frame's own header version governs the body
                    // decode: a v4 server's responses carry no span
                    // tree, a v5 server's do.
                    FrameKind::Response => Some(
                        match WireJobOutcome::decode_response_frame(&frame.body, frame.version) {
                            Ok(outcome) => JobEvent::Terminal(Ok(outcome)),
                            Err(e) => malformed(e),
                        },
                    ),
                    FrameKind::Expired => Some(
                        match WireJobOutcome::decode_expired_frame(&frame.body, frame.version) {
                            Ok(outcome) => JobEvent::Terminal(Ok(outcome)),
                            Err(e) => malformed(e),
                        },
                    ),
                    FrameKind::Scrape => Some(JobEvent::Scrape(frame.body)),
                    FrameKind::Progress => {
                        Some(match serde::from_str::<SearchProgress>(&frame.body) {
                            Ok(progress) => JobEvent::Progress(progress),
                            Err(e) => malformed(e),
                        })
                    }
                    FrameKind::Error => Some(match serde::from_str::<RemoteError>(&frame.body) {
                        Ok(remote) => JobEvent::Terminal(Err(remote)),
                        Err(e) => malformed(e),
                    }),
                    // A server never sends these; the stream framing is
                    // still intact, keep serving the rest.
                    FrameKind::Request | FrameKind::Cancel => None,
                };
                match (frame.id, event) {
                    (0, Some(JobEvent::Terminal(Err(fatal)))) => {
                        // Connection-scoped error: deliver to everyone
                        // still waiting, then stop reading.
                        let waiters = shared
                            .pending
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .take();
                        if let Some(map) = waiters {
                            for (_, tx) in map {
                                let _ = tx.send(JobEvent::Terminal(Err(fatal.clone())));
                            }
                        }
                        return;
                    }
                    (id, Some(event)) => {
                        let terminal = !matches!(event, JobEvent::Progress(_));
                        let mut pending = shared.pending.lock().unwrap_or_else(|p| p.into_inner());
                        match pending.as_mut() {
                            Some(map) if terminal => {
                                // Unknown id: a frame for a caller that
                                // went away (dropped WireJob); ignore.
                                if let Some(tx) = map.remove(&id) {
                                    let _ = tx.send(event);
                                }
                            }
                            Some(map) => {
                                if let Some(tx) = map.get(&id) {
                                    let _ = tx.send(event);
                                }
                            }
                            None => {}
                        }
                    }
                    (_, None) => {}
                }
            }
            Ok(None) | Err(ReadError::Io(_)) => break,
            Err(ReadError::Protocol(_)) => break, // desynced: give up
        }
    }
    shared.poison();
}
