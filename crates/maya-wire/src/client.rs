//! [`WireClient`]: a typed, pipelined client for a
//! [`WireServer`](crate::WireServer).
//!
//! One TCP connection is **reused for everything**: the client is
//! `Sync`, any number of threads may [`WireClient::submit`]
//! concurrently, and each submission gets a fresh request id. A
//! background reader thread demultiplexes response frames back to their
//! [`PendingResponse`]s by echoed id, so N requests can be in flight on
//! one socket — the server executes them concurrently on its worker
//! pool and streams results back in admission order.
//!
//! Failure is typed end to end: a full server queue surfaces as
//! [`WireError::Remote`] with
//! [`RemoteErrorKind::Overloaded`](crate::RemoteErrorKind) (retry
//! later; the connection is fine), the server's per-request pipeline
//! errors arrive inside the payload as [`crate::RemoteError`]s, and a
//! torn connection resolves every in-flight request with
//! [`WireError::ConnectionClosed`].

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use maya_serve::Request;

use crate::error::{RemoteError, WireError};
use crate::frame::{read_frame, write_frame, FrameKind, ProtocolError, ReadError};
use crate::message::WireResponse;

type PendingMap = HashMap<u64, mpsc::Sender<Result<WireResponse, RemoteError>>>;

struct ClientShared {
    writer: Mutex<TcpStream>,
    /// `None` once the connection is known dead — late submitters get
    /// [`WireError::ConnectionClosed`] instead of hanging.
    pending: Mutex<Option<PendingMap>>,
    next_id: AtomicU64,
    max_frame_len: u32,
}

impl ClientShared {
    /// Tears down the pending map; every waiter resolves with
    /// `ConnectionClosed` (their senders drop here).
    fn poison(&self) {
        let _ = self
            .pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take();
    }
}

/// A pending pipelined request; redeem it with [`PendingResponse::wait`].
pub struct PendingResponse {
    id: u64,
    rx: mpsc::Receiver<Result<WireResponse, RemoteError>>,
}

impl PendingResponse {
    /// The request id this response answers.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the server answers (or the connection dies).
    pub fn wait(self) -> Result<WireResponse, WireError> {
        match self.rx.recv() {
            Ok(Ok(response)) => Ok(response),
            Ok(Err(remote)) => Err(WireError::Remote(remote)),
            Err(_) => Err(WireError::ConnectionClosed),
        }
    }
}

/// The typed TCP client (see module docs).
pub struct WireClient {
    shared: Arc<ClientShared>,
    local_addr: Option<SocketAddr>,
    reader: Option<JoinHandle<()>>,
}

impl WireClient {
    /// Connects with the default max-frame guard.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        WireClient::connect_with(addr, crate::frame::DEFAULT_MAX_FRAME_LEN)
    }

    /// Connects with an explicit max-frame guard (must admit the
    /// largest response the workload can produce; the server's guard
    /// governs requests).
    pub fn connect_with(addr: impl ToSocketAddrs, max_frame_len: u32) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let local_addr = stream.local_addr().ok();
        let read_half = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(stream),
            pending: Mutex::new(Some(HashMap::new())),
            next_id: AtomicU64::new(1),
            max_frame_len,
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("maya-wire-client".into())
                .spawn(move || reader_loop(read_half, &shared))
                .expect("spawn client reader")
        };
        Ok(WireClient {
            shared,
            local_addr,
            reader: Some(reader),
        })
    }

    /// This end's socket address.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Sends one request without waiting; responses may be redeemed in
    /// any order while more requests pipeline behind them.
    pub fn submit(&self, request: &Request) -> Result<PendingResponse, WireError> {
        let body = serde::to_string(request);
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        {
            let mut pending = self
                .shared
                .pending
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            pending
                .as_mut()
                .ok_or(WireError::ConnectionClosed)?
                .insert(id, tx);
        }
        let write = {
            let mut w = self.shared.writer.lock().unwrap_or_else(|p| p.into_inner());
            write_frame(
                &mut *w,
                FrameKind::Request,
                id,
                &body,
                self.shared.max_frame_len,
            )
        };
        if let Err(e) = write {
            // Unregister so the map does not leak a dead sender.
            if let Some(pending) = self
                .shared
                .pending
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .as_mut()
            {
                pending.remove(&id);
            }
            return Err(
                match e
                    .get_ref()
                    .and_then(|inner| inner.downcast_ref::<ProtocolError>().cloned())
                {
                    Some(p) => WireError::Protocol(p),
                    None => WireError::Io(e),
                },
            );
        }
        Ok(PendingResponse { id, rx })
    }

    /// Submit + wait in one call.
    pub fn call(&self, request: &Request) -> Result<WireResponse, WireError> {
        self.submit(request)?.wait()
    }

    /// Half-closes the write side: the server sees end-of-requests,
    /// drains what is in flight, and responses already pipelined can
    /// still be redeemed. Dropping the client closes both directions.
    pub fn finish_writes(&self) {
        let w = self.shared.writer.lock().unwrap_or_else(|p| p.into_inner());
        let _ = w.shutdown(Shutdown::Write);
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        {
            let w = self.shared.writer.lock().unwrap_or_else(|p| p.into_inner());
            let _ = w.shutdown(Shutdown::Both);
        }
        self.shared.poison();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Demultiplexes incoming frames to pending requests by echoed id.
fn reader_loop(stream: TcpStream, shared: &Arc<ClientShared>) {
    let mut r = std::io::BufReader::new(stream);
    loop {
        match read_frame(&mut r, shared.max_frame_len) {
            Ok(Some(frame)) => {
                let verdict: Option<Result<WireResponse, RemoteError>> = match frame.kind {
                    FrameKind::Response => match serde::from_str::<WireResponse>(&frame.body) {
                        Ok(response) => Some(Ok(response)),
                        Err(e) => Some(Err(RemoteError::protocol(&ProtocolError::Malformed(e)))),
                    },
                    FrameKind::Error => match serde::from_str::<RemoteError>(&frame.body) {
                        Ok(remote) => Some(Err(remote)),
                        Err(e) => Some(Err(RemoteError::protocol(&ProtocolError::Malformed(e)))),
                    },
                    FrameKind::Request => None, // a server never sends these
                };
                match (frame.id, verdict) {
                    (0, Some(Err(fatal))) => {
                        // Connection-scoped error: deliver to everyone
                        // still waiting, then stop reading.
                        let waiters = shared
                            .pending
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .take();
                        if let Some(map) = waiters {
                            for (_, tx) in map {
                                let _ = tx.send(Err(fatal.clone()));
                            }
                        }
                        return;
                    }
                    (id, Some(result)) => {
                        let tx = shared
                            .pending
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .as_mut()
                            .and_then(|map| map.remove(&id));
                        if let Some(tx) = tx {
                            let _ = tx.send(result);
                        }
                        // Unknown id: a response for a caller that went
                        // away (dropped PendingResponse); ignore.
                    }
                    (_, None) => {
                        // Nonsense frame direction; the stream framing
                        // is still intact, keep serving the rest.
                    }
                }
            }
            Ok(None) | Err(ReadError::Io(_)) => break,
            Err(ReadError::Protocol(_)) => break, // desynced: give up
        }
    }
    shared.poison();
}
